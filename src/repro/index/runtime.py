"""Runtime access to a stored document's persistent indexes.

:class:`DocumentIndexes` is the object the engine and the optimizer
see.  It owns a dedicated ``kind="index"`` buffer manager over the
index region of the page file, decodes the catalog record eagerly and
everything else lazily:

* posting lists are fetched and decoded on first use per name and then
  cached (they are immutable for the life of the open store),
* subtree extents are read as fixed-width 4-byte records straight out
  of the page buffer — one record per containment probe, no decode of
  the node itself.

The :meth:`signature` (the structural fingerprint, hex) keys compiled
plans in the session plan cache: two targets with the same signature
can share an index-routed plan, and a target whose store bytes changed
gets a different signature and therefore different plans.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from typing import BinaryIO, Dict, List, Tuple

from repro.errors import StorageError
from repro.index.persist import (
    EXTENT_WIDTH,
    IndexCatalog,
    find_index_region,
    read_index_catalog,
)
from repro.index.synopsis import PathSynopsis
from repro.storage.encoding import decode_id_list
from repro.storage.pages import BufferManager, PageFile

_EMPTY: Tuple[int, ...] = ()


class DocumentIndexes:
    """Lazily materialized view over a store's on-disk index region."""

    def __init__(self, buffer: BufferManager, catalog: IndexCatalog,
                 payload_start: int):
        self.buffer = buffer
        self.catalog = catalog
        self._payload_start = payload_start
        self._element_cache: Dict[str, Tuple[int, ...]] = {}
        self._attribute_cache: Dict[str, Tuple[int, ...]] = {}
        self._extent_cache: Dict[int, int] = {}

    @classmethod
    def load(cls, handle: BinaryIO, file_end: int, page_size: int,
             buffer_pages: int) -> "DocumentIndexes":
        """Open the index region of a page file.

        Raises :class:`~repro.errors.IndexRegionMissing` when the file
        carries no index footer — the caller treats that as "no
        indexes", not as corruption — and plain
        :class:`~repro.errors.StorageError` when a region exists but
        cannot be decoded (truncated trailer, garbage catalog bytes):
        whatever low-level exception the decoders hit is wrapped, so
        callers never see a raw ``struct.error`` escape an open.  The
        catalog record is read through the index buffer manager so even
        catalog I/O shows up in the index-page counters.
        """
        region_start, region_length = find_index_region(handle, file_end)
        page_file = PageFile(handle, region_start, region_length, page_size)
        buffer = BufferManager(page_file, buffer_pages, kind="index")
        head = buffer.read_record(0, min(region_length, page_size))
        try:
            try:
                catalog, payload_start = read_index_catalog(head)
            except Exception:
                # Catalog larger than one page: pull the whole region.
                catalog, payload_start = read_index_catalog(
                    buffer.read_record(0, region_length)
                )
        except StorageError:
            raise
        except Exception as error:
            # decode_varint/decode_string/struct.unpack on garbage bytes
            # raise IndexError/UnicodeDecodeError/struct.error — a
            # corrupt region, not a programming error.
            raise StorageError(
                f"corrupt index region: {error!r}"
            ) from error
        return cls(buffer, catalog, payload_start)

    # ------------------------------------------------------------------

    @property
    def signature(self) -> str:
        """Hex structural fingerprint; part of plan-cache keys."""
        return self.catalog.fingerprint.hex()

    @property
    def synopsis(self) -> PathSynopsis:
        return self.catalog.synopsis

    @property
    def node_count(self) -> int:
        return self.catalog.node_count

    def has_element_index(self, name: str) -> bool:
        return name in self.catalog.element_refs

    def element_count(self, name: str) -> int:
        """Exact posting-list length, straight from the catalog."""
        ref = self.catalog.element_refs.get(name)
        return ref.count if ref is not None else 0

    def attribute_count(self, name: str) -> int:
        ref = self.catalog.attribute_refs.get(name)
        return ref.count if ref is not None else 0

    # ------------------------------------------------------------------

    def element_ids(self, name: str) -> Tuple[int, ...]:
        """All ids of elements named ``name``, ascending."""
        cached = self._element_cache.get(name)
        if cached is None:
            cached = self._decode_posting(
                self.catalog.element_refs.get(name)
            )
            self._element_cache[name] = cached
        return cached

    def attribute_owner_ids(self, name: str) -> Tuple[int, ...]:
        """Ids of elements carrying an attribute named ``name``."""
        cached = self._attribute_cache.get(name)
        if cached is None:
            cached = self._decode_posting(
                self.catalog.attribute_refs.get(name)
            )
            self._attribute_cache[name] = cached
        return cached

    def _decode_posting(self, ref) -> Tuple[int, ...]:
        if ref is None or ref.length == 0:
            return _EMPTY
        record = self.buffer.read_record(
            self._payload_start + ref.offset, ref.length
        )
        ids, _ = decode_id_list(record, 0)
        return tuple(ids)

    # ------------------------------------------------------------------

    def extent(self, node_id: int) -> int:
        """Id of the last node in ``node_id``'s subtree.

        One fixed-width record read through the page buffer; cached per
        node so repeated probes on the same context are free.
        """
        cached = self._extent_cache.get(node_id)
        if cached is not None:
            return cached
        record = self.buffer.read_record(
            self._payload_start
            + self.catalog.extent_offset
            + node_id * EXTENT_WIDTH,
            EXTENT_WIDTH,
        )
        (value,) = struct.unpack(">I", record)
        self._extent_cache[node_id] = value
        return value

    def is_descendant(self, candidate: int, ancestor: int) -> bool:
        """(pre, post)-interval containment in O(1)."""
        return ancestor < candidate <= self.extent(ancestor)

    def element_ids_in_subtree(self, name: str, context_id: int,
                               include_self: bool = False) -> List[int]:
        """Ids of ``name`` elements inside ``context_id``'s subtree.

        A binary-search slice of the posting list over the context's
        (pre, post) interval — this is the probe behind
        ``IndexDescendantScan``.  Results are ascending node ids, i.e.
        document order, so downstream order/duplicate properties hold
        without sorting.
        """
        posting = self.element_ids(name)
        if not posting:
            return []
        low = context_id if include_self else context_id + 1
        start = bisect_left(posting, low)
        end = bisect_right(posting, self.extent(context_id))
        return list(posting[start:end])

    # ------------------------------------------------------------------

    def buffer_stats(self) -> dict:
        stats = self.buffer.stats
        return {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "cached_pages": self.buffer.cached_pages,
            "capacity": self.buffer.capacity,
        }
