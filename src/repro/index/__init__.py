"""Persistent structural indexes for stored documents.

The paper's evaluation feeds location steps "directly from the
persistent representation in the Natix page buffer" (section 5.2.2); a
scan is still a scan, though.  This package adds the structural indexes
native XML stores build their headline numbers on:

* **name index** — QName → document-ordered posting list of element ids
  (and attribute name → owner-element ids),
* **path synopsis** — DataGuide-style tree of distinct root-to-node
  label paths with cardinalities, used by the optimizer to estimate
  selectivity before routing a step onto an index,
* **rank (interval) index** — per-node subtree extents equivalent to
  (pre, post) ranks, giving O(1) ancestor/descendant containment tests
  and turning "descendants of *c* named *n*" into a binary search over
  a posting list.

Indexes are serialized into the store's page file as an appended
index region (catalog record + page-aligned payload, see
:mod:`repro.index.persist`) and read back lazily through a dedicated
``kind="index"`` :class:`~repro.storage.pages.BufferManager`, so index
I/O is attributed separately from data-page I/O.  A structural
fingerprint in the catalog invalidates stale indexes: a re-stored
document whose structure no longer matches falls back to scans instead
of answering from a stale index.
"""

from repro.index.build import IndexData, build_index_data
from repro.index.persist import (
    INDEX_FOOTER_MAGIC,
    append_index_blob,
    read_index_catalog,
    serialize_index_blob,
    structural_fingerprint,
)
from repro.index.runtime import DocumentIndexes
from repro.index.synopsis import PathSynopsis, SynopsisEntry

__all__ = [
    "DocumentIndexes",
    "IndexData",
    "INDEX_FOOTER_MAGIC",
    "PathSynopsis",
    "SynopsisEntry",
    "append_index_blob",
    "build_index_data",
    "read_index_catalog",
    "serialize_index_blob",
    "structural_fingerprint",
]
