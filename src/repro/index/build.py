"""Building the structural indexes from a document.

The builder walks a document once in pre-order (node ids *are*
pre-order ranks, see :mod:`repro.storage.store`) and produces the three
structures the subsystem persists:

* posting lists — element name → ascending element ids, attribute
  name → ascending owner-element ids,
* subtree extents — ``extent[i]`` is the id of the last node in the
  subtree rooted at node ``i``; the pair ``(i, extent[i])`` is the
  node's (pre, post)-style interval, so *d* is a descendant of *a* iff
  ``a < d <= extent[a]``,
* the path synopsis (:class:`~repro.index.synopsis.PathSynopsis`).

The walk works on both in-memory documents and already-stored ones
(``build_index_data(stored)`` decodes every node once), which is what
lets :func:`repro.api.build_indexes` retrofit indexes onto an existing
page file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.dom.node import NodeKind
from repro.index.synopsis import (
    KIND_ATTRIBUTE,
    KIND_ELEMENT,
    PathSynopsis,
    SynopsisEntry,
)


@dataclass
class IndexData:
    """The in-memory form of a document's structural indexes."""

    #: element QName -> ascending ids of elements with that name
    element_postings: Dict[str, List[int]] = field(default_factory=dict)
    #: attribute QName -> ascending ids of the *owner* elements
    attribute_postings: Dict[str, List[int]] = field(default_factory=dict)
    #: extent[i] = id of the last node in node i's subtree
    extents: List[int] = field(default_factory=list)
    synopsis: PathSynopsis = field(
        default_factory=lambda: PathSynopsis(())
    )

    @property
    def node_count(self) -> int:
        return len(self.extents)

    def is_descendant(self, candidate: int, ancestor: int) -> bool:
        """O(1) containment via the (pre, post) interval."""
        return ancestor < candidate <= self.extents[ancestor]


def build_index_data(document) -> IndexData:
    """Build all structural indexes with one pre-order walk.

    ``document`` is anything document-like with ``iter_nodes()``
    (an in-memory :class:`~repro.dom.document.Document` or a
    :class:`~repro.storage.store.StoredDocument`); node ids are taken
    from the nodes' sort keys, which equal pre-order ranks on both
    representations.
    """
    data = IndexData()
    parents: List[int] = []
    extents = data.extents

    # Synopsis accumulation: (parent_entry, kind, name) -> entry index.
    entry_ids: Dict[Tuple[int, int, str], int] = {}
    entry_counts: List[int] = []
    entry_meta: List[Tuple[int, int, str]] = []
    #: node id -> its synopsis entry (for parent lookups); the document
    #: root maps to -1.
    node_entry: Dict[int, int] = {}

    def synopsis_note(parent_entry: int, kind: int, name: str) -> int:
        key = (parent_entry, kind, name)
        entry = entry_ids.get(key)
        if entry is None:
            entry = len(entry_counts)
            entry_ids[key] = entry
            entry_counts.append(0)
            entry_meta.append(key)
        entry_counts[entry] += 1
        return entry

    for node in document.iter_nodes():
        node_id = node.sort_key[0]
        if node_id != len(extents):
            raise ValueError(
                f"non-preorder node id {node_id} at position {len(extents)}"
            )
        extents.append(node_id)
        parent = node.parent
        parents.append(parent.sort_key[0] if parent is not None else -1)

        if node.kind == NodeKind.ELEMENT:
            parent_entry = node_entry.get(parents[-1], -1)
            entry = synopsis_note(
                parent_entry, KIND_ELEMENT, node.name or ""
            )
            node_entry[node_id] = entry
            data.element_postings.setdefault(node.name or "", []).append(
                node_id
            )
            for attribute in node.attributes:
                synopsis_note(
                    entry, KIND_ATTRIBUTE, attribute.name or ""
                )
                data.attribute_postings.setdefault(
                    attribute.name or "", []
                ).append(node_id)

    # Extents: in reverse pre-order every node's extent is final before
    # its parent's is read, so one backward sweep suffices.
    for node_id in range(len(extents) - 1, 0, -1):
        parent = parents[node_id]
        if parent >= 0 and extents[node_id] > extents[parent]:
            extents[parent] = extents[node_id]

    data.synopsis = PathSynopsis(
        SynopsisEntry(
            parent=meta[0], kind=meta[1], name=meta[2], count=count
        )
        for meta, count in zip(entry_meta, entry_counts)
    )
    return data
