"""Serializing indexes into the store's page file.

The index region is *appended* to a stored document's page file, so
index builds never rewrite data pages and a v1 file without indexes
stays byte-identical and readable::

    [store header | names | id map | dir | data pages]   <- unchanged
    [index catalog record | posting pages | extent pages]
    [u64 region length | b"NATXIDX1"]                    <- footer

The footer is fixed-size and sits at EOF, so opening a store costs one
seek: no footer magic → no indexes.  The region itself is addressed
like a second page file (``PageFile(handle, region_start, ...)``) and
read through a dedicated ``kind="index"`` buffer manager — *index
pages* are a new page kind next to the existing data pages, and the
buffer statistics attribute I/O to each kind separately.

The **index catalog record** at the head of the region is decoded
eagerly at open time.  It holds the structural fingerprint the
freshness check compares (md5 over the store's name table, node
directory, node count and data length — any structural change to the
document changes it), the full path synopsis, a directory of posting
lists (offset/length into the region) and the location of the
fixed-width extent array.  Posting lists and extents are *not* loaded
eagerly; they are fetched through the index buffer manager on first
use.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import IndexRegionMissing, StorageError
from repro.index.build import IndexData
from repro.index.synopsis import PathSynopsis, SynopsisEntry
from repro.storage.encoding import (
    decode_string,
    decode_varint,
    encode_id_list,
    encode_string,
    encode_varint,
)

#: Magic at the head of the index catalog record.
INDEX_CATALOG_MAGIC = b"NIDX1"
#: Magic trailing the whole file when an index region is present.
INDEX_FOOTER_MAGIC = b"NATXIDX1"
#: Fixed footer: u64 big-endian region length + the magic.
FOOTER_SIZE = 8 + len(INDEX_FOOTER_MAGIC)

#: Fixed width of one extent entry (u32 big-endian pre-order id).
EXTENT_WIDTH = 4

_KIND_ELEMENT_POSTING = 0
_KIND_ATTRIBUTE_POSTING = 1


def structural_fingerprint(
    names_blob: bytes, dir_blob: bytes, node_count: int, data_len: int
) -> bytes:
    """16-byte fingerprint of a store's structure.

    Computed from sections the store reader decodes eagerly anyway, so
    the freshness check at open time costs no extra I/O.  Any change to
    the tree shape, the record layout or the name table changes the
    node directory or the name blob, hence the digest; text-only edits
    that somehow preserved every record length would keep it — which is
    exactly right, because the *structural* indexes do not depend on
    text content.
    """
    digest = hashlib.md5()
    digest.update(names_blob)
    digest.update(dir_blob)
    head = bytearray()
    encode_varint(node_count, head)
    encode_varint(data_len, head)
    digest.update(bytes(head))
    return digest.digest()


@dataclass(frozen=True)
class PostingRef:
    """Location of one posting list inside the index region."""

    offset: int
    length: int
    count: int


@dataclass
class IndexCatalog:
    """The decoded index catalog record."""

    fingerprint: bytes
    synopsis: PathSynopsis
    element_refs: Dict[str, PostingRef]
    attribute_refs: Dict[str, PostingRef]
    extent_offset: int
    node_count: int


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


def serialize_index_blob(data: IndexData, fingerprint: bytes) -> bytes:
    """The complete index region: catalog record + payload bytes."""
    payload = bytearray()
    element_refs: Dict[str, PostingRef] = {}
    attribute_refs: Dict[str, PostingRef] = {}
    for refs, postings in (
        (element_refs, data.element_postings),
        (attribute_refs, data.attribute_postings),
    ):
        for name in sorted(postings):
            ids = postings[name]
            start = len(payload)
            encode_id_list(ids, payload)
            refs[name] = PostingRef(start, len(payload) - start, len(ids))
    extent_offset = len(payload)
    payload.extend(
        struct.pack(f">{len(data.extents)}I", *data.extents)
        if data.extents
        else b""
    )

    catalog = bytearray()
    if len(fingerprint) != 16:
        raise StorageError("fingerprint must be 16 bytes")
    catalog.extend(fingerprint)
    encode_varint(data.node_count, catalog)

    synopsis = data.synopsis
    encode_varint(len(synopsis.entries), catalog)
    for entry in synopsis.entries:
        encode_varint(entry.parent + 1, catalog)  # biased, -1 -> 0
        encode_varint(entry.kind, catalog)
        encode_string(entry.name, catalog)
        encode_varint(entry.count, catalog)

    for kind, refs in (
        (_KIND_ELEMENT_POSTING, element_refs),
        (_KIND_ATTRIBUTE_POSTING, attribute_refs),
    ):
        encode_varint(len(refs), catalog)
        for name in sorted(refs):
            ref = refs[name]
            encode_varint(kind, catalog)
            encode_string(name, catalog)
            encode_varint(ref.offset, catalog)
            encode_varint(ref.length, catalog)
            encode_varint(ref.count, catalog)

    encode_varint(extent_offset, catalog)

    # The catalog carries an explicit length so a reader can pull
    # exactly the record head with two fixed reads; payload offsets are
    # relative to the payload start, which follows the catalog directly.
    head = (
        INDEX_CATALOG_MAGIC
        + struct.pack(">I", len(catalog))
        + bytes(catalog)
    )
    return head + bytes(payload)


def footer_for(blob: bytes) -> bytes:
    return struct.pack(">Q", len(blob)) + INDEX_FOOTER_MAGIC


def append_index_blob(handle, store_end: int, blob: bytes) -> None:
    """Write ``blob`` + footer at ``store_end``, truncating any older
    index region first (index rebuilds are idempotent appends)."""
    handle.seek(store_end)
    handle.truncate(store_end)
    handle.write(blob)
    handle.write(footer_for(blob))


# ----------------------------------------------------------------------
# Deserialization
# ----------------------------------------------------------------------


def find_index_region(handle, file_end: int) -> Tuple[int, int]:
    """Locate the index region; returns (region_start, region_length).

    Raises :class:`IndexRegionMissing` when the file carries no footer
    magic at all, plain :class:`StorageError` when a footer is present
    but its length field is invalid.
    """
    if file_end < FOOTER_SIZE:
        raise IndexRegionMissing("no index footer")
    handle.seek(file_end - FOOTER_SIZE)
    footer = handle.read(FOOTER_SIZE)
    if footer[8:] != INDEX_FOOTER_MAGIC:
        raise IndexRegionMissing("no index footer")
    (length,) = struct.unpack(">Q", footer[:8])
    start = file_end - FOOTER_SIZE - length
    if length <= 0 or start < 0:
        raise StorageError("corrupt index footer")
    return start, length


#: Fixed head of the catalog record: magic + u32 catalog-body length.
CATALOG_HEAD_SIZE = len(INDEX_CATALOG_MAGIC) + 4


def read_index_catalog(region_head: bytes) -> Tuple[IndexCatalog, int]:
    """Decode the catalog record from the head of the index region.

    ``region_head`` must cover at least the catalog record (passing the
    whole region is fine).  Returns ``(catalog, payload_start)`` where
    ``payload_start`` is the region-relative offset the posting/extent
    refs are based at.
    """
    if region_head[: len(INDEX_CATALOG_MAGIC)] != INDEX_CATALOG_MAGIC:
        raise StorageError("bad index catalog magic")
    (body_len,) = struct.unpack(
        ">I", region_head[len(INDEX_CATALOG_MAGIC) : CATALOG_HEAD_SIZE]
    )
    payload_start = CATALOG_HEAD_SIZE + body_len
    if len(region_head) < payload_start:
        raise StorageError("truncated index catalog")
    body = region_head[CATALOG_HEAD_SIZE:payload_start]

    fingerprint = body[:16]
    if len(fingerprint) != 16:
        raise StorageError("truncated index catalog")
    at = 16
    node_count, at = decode_varint(body, at)

    entry_count, at = decode_varint(body, at)
    entries = []
    for _ in range(entry_count):
        parent, at = decode_varint(body, at)
        kind, at = decode_varint(body, at)
        name, at = decode_string(body, at)
        count, at = decode_varint(body, at)
        entries.append(
            SynopsisEntry(
                parent=parent - 1, kind=kind, name=name, count=count
            )
        )

    element_refs: Dict[str, PostingRef] = {}
    attribute_refs: Dict[str, PostingRef] = {}
    for refs in (element_refs, attribute_refs):
        ref_count, at = decode_varint(body, at)
        for _ in range(ref_count):
            _kind, at = decode_varint(body, at)
            name, at = decode_string(body, at)
            offset, at = decode_varint(body, at)
            length, at = decode_varint(body, at)
            count, at = decode_varint(body, at)
            refs[name] = PostingRef(offset, length, count)

    extent_offset, at = decode_varint(body, at)
    return (
        IndexCatalog(
            fingerprint=fingerprint,
            synopsis=PathSynopsis(entries),
            element_refs=element_refs,
            attribute_refs=attribute_refs,
            extent_offset=extent_offset,
            node_count=node_count,
        ),
        payload_start,
    )


def load_index_catalog(handle, region_start: int) -> Tuple[IndexCatalog, int]:
    """Read and decode the catalog with two fixed reads on ``handle``.

    Returns ``(catalog, payload_start)`` like :func:`read_index_catalog`.
    """
    handle.seek(region_start)
    head = handle.read(CATALOG_HEAD_SIZE)
    if head[: len(INDEX_CATALOG_MAGIC)] != INDEX_CATALOG_MAGIC:
        raise StorageError("bad index catalog magic")
    (body_len,) = struct.unpack(">I", head[len(INDEX_CATALOG_MAGIC) :])
    body = handle.read(body_len)
    return read_index_catalog(head + body)
