"""The path synopsis: a DataGuide over stored documents.

One :class:`SynopsisEntry` exists per distinct root-to-node *label
path* (e.g. ``/xdoc/section/item``), with the number of document nodes
sharing that path.  The synopsis is tiny (bounded by the document's
structural variety, not its size), lives in the index catalog record
and is loaded eagerly when a store is opened — it is the piece of the
index subsystem the *compiler* reads: the index-aware rewrite asks it
how many elements carry a name before routing a step onto the name
index, and declines the rewrite when the answer says the index would
not prune (see ``docs/indexes.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

#: Synopsis entry kinds.
KIND_ELEMENT = 0
KIND_ATTRIBUTE = 1


@dataclass(frozen=True)
class SynopsisEntry:
    """One distinct label path.

    ``parent`` is the index of the parent path's entry (``-1`` for the
    document root), so the entries form the DataGuide tree.
    """

    parent: int
    kind: int  #: :data:`KIND_ELEMENT` or :data:`KIND_ATTRIBUTE`
    name: str
    count: int


#: Pseudo entry index of the document root node (parent of the root
#: element's entry); :meth:`PathSynopsis.children_of` accepts it.
ROOT_ENTRY = -1


class PathSynopsis:
    """Cardinality lookups over the DataGuide entries."""

    def __init__(self, entries: Sequence[SynopsisEntry]):
        self.entries: Tuple[SynopsisEntry, ...] = tuple(entries)
        self._element_counts: Dict[str, int] = {}
        self._attribute_counts: Dict[str, int] = {}
        self._children: Dict[int, Tuple[int, ...]] = {}
        total = 0
        children: Dict[int, list] = {}
        for index, entry in enumerate(self.entries):
            children.setdefault(entry.parent, []).append(index)
            if entry.kind == KIND_ELEMENT:
                total += entry.count
                self._element_counts[entry.name] = (
                    self._element_counts.get(entry.name, 0) + entry.count
                )
            else:
                self._attribute_counts[entry.name] = (
                    self._attribute_counts.get(entry.name, 0) + entry.count
                )
        self._children = {
            parent: tuple(indices) for parent, indices in children.items()
        }
        self.total_elements = total

    # ------------------------------------------------------------------

    def children_of(self, index: int) -> Tuple[int, ...]:
        """Entry indices whose parent entry is ``index``.

        Pass :data:`ROOT_ENTRY` for the children of the document root.
        """
        return self._children.get(index, ())

    def element_count(self, name: str) -> int:
        """How many elements in the document are named ``name``."""
        return self._element_counts.get(name, 0)

    def attribute_count(self, name: str) -> int:
        """How many attributes in the document are named ``name``."""
        return self._attribute_counts.get(name, 0)

    def element_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._element_counts))

    def selectivity(self, name: str) -> float:
        """Fraction of elements named ``name`` (1.0 for an empty doc)."""
        if self.total_elements == 0:
            return 1.0
        return self.element_count(name) / self.total_elements

    def frontier_entries(
        self, steps: Sequence[Tuple[str, str]]
    ) -> Tuple[int, ...]:
        """Entry indices reachable by a structural step sequence.

        ``steps`` is a sequence of ``(op, name)`` pairs starting at the
        document root, where ``op`` is one of ``"child"``, ``"desc"``
        (proper descendants), ``"descself"``, ``"self"`` or ``"attr"``
        and ``name`` is a literal QName or ``"*"`` (any name of the
        step's kind).  This is the frontier walk behind collection
        shard pruning: an empty frontier proves no document node can
        match the steps, so a query whose leading location steps they
        mirror returns the empty node-set on this document.

        The walk is exact over element and attribute structure (the
        DataGuide covers every root-to-node label path); ops the
        synopsis cannot answer must simply not be passed in — the
        extraction layer truncates at the first such step, which keeps
        the emptiness test a *necessary* condition.
        """
        frontier: Set[int] = {ROOT_ENTRY}
        for op, name in steps:
            matched: Set[int] = set()
            if op in ("desc", "descself"):
                if op == "descself":
                    for index in frontier:
                        if index == ROOT_ENTRY:
                            if name == "*":
                                matched.add(index)
                        else:
                            entry = self.entries[index]
                            if entry.kind == KIND_ELEMENT and (
                                name == "*" or entry.name == name
                            ):
                                matched.add(index)
                            elif name == "*":
                                # node() self keeps every frontier node.
                                matched.add(index)
                stack: List[int] = [
                    child
                    for parent in frontier
                    for child in self.children_of(parent)
                ]
                seen: Set[int] = set()
                while stack:
                    index = stack.pop()
                    if index in seen:
                        continue
                    seen.add(index)
                    entry = self.entries[index]
                    if entry.kind != KIND_ELEMENT:
                        continue
                    if name == "*" or entry.name == name:
                        matched.add(index)
                    stack.extend(self.children_of(index))
            elif op == "child":
                for parent in frontier:
                    for child in self.children_of(parent):
                        entry = self.entries[child]
                        if entry.kind == KIND_ELEMENT and (
                            name == "*" or entry.name == name
                        ):
                            matched.add(child)
            elif op == "attr":
                for parent in frontier:
                    for child in self.children_of(parent):
                        entry = self.entries[child]
                        if entry.kind == KIND_ATTRIBUTE and (
                            name == "*" or entry.name == name
                        ):
                            matched.add(child)
            elif op == "self":
                for index in frontier:
                    if index == ROOT_ENTRY:
                        continue  # the document root is not an element
                    entry = self.entries[index]
                    if entry.kind == KIND_ELEMENT and (
                        name == "*" or entry.name == name
                    ):
                        matched.add(index)
            else:
                raise ValueError(f"unknown frontier op {op!r}")
            frontier = matched
            if not frontier:
                return ()
        return tuple(sorted(frontier))

    def admits(self, steps: Sequence[Tuple[str, str]]) -> bool:
        """Whether the structural step sequence can match any node."""
        return bool(self.frontier_entries(steps))

    def to_rows(self) -> List[List[object]]:
        """Compact JSON-safe rendering: one ``[parent, kind, name,
        count]`` row per entry, in entry order (the collection catalog
        mirrors each shard's synopsis this way)."""
        return [
            [entry.parent, entry.kind, entry.name, entry.count]
            for entry in self.entries
        ]

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[object]]) -> "PathSynopsis":
        """Rebuild a synopsis from its :meth:`to_rows` rendering."""
        return cls(
            SynopsisEntry(
                parent=int(row[0]), kind=int(row[1]),
                name=str(row[2]), count=int(row[3]),
            )
            for row in rows
        )

    def path_count(self, labels: Sequence[str]) -> int:
        """Nodes reachable by the exact label path from the root.

        ``labels`` name the steps below the document root (so
        ``("xdoc", "section")`` counts ``/xdoc/section`` nodes); an
        attribute step is spelled ``@name`` and may only come last.
        """
        if not labels:
            return 0
        frontier = {-1}
        counts: Dict[int, int] = {}
        for label in labels:
            wanted_kind = KIND_ELEMENT
            wanted_name = label
            if label.startswith("@"):
                wanted_kind = KIND_ATTRIBUTE
                wanted_name = label[1:]
            counts = {
                index: entry.count
                for index, entry in enumerate(self.entries)
                if entry.parent in frontier
                and entry.kind == wanted_kind
                and entry.name == wanted_name
            }
            frontier = set(counts)
            if not frontier:
                return 0
        return sum(counts.values())

    def __len__(self) -> int:
        return len(self.entries)
