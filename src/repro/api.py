"""The public convenience API.

Most users need exactly three things::

    from repro import parse_document, compile_xpath, evaluate

    doc = parse_document("<a><b/><b/></a>")
    print(evaluate("count(/a/b)", doc))            # 2.0

    query = compile_xpath("/a/b[position() = last()]")
    nodes = query.evaluate(doc.root)

``evaluate`` accepts an engine name to pick an evaluation strategy:
``"natix"`` (the algebraic engine with the improved translation, the
default), ``"natix-canonical"`` (section-3 translation only), ``"naive"``
and ``"memo"`` (the baseline interpreters).
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.baselines.memo import MemoInterpreter
from repro.baselines.naive import NaiveInterpreter
from repro.compiler.improved import TranslationOptions
from repro.compiler.pipeline import CompiledQuery, XPathCompiler
from repro.dom.document import Document
from repro.dom.node import Node
from repro.dom.parser import parse as _parse_xml
from repro.xpath.context import make_context
from repro.xpath.datamodel import XPathValue

#: Engine names accepted by :func:`evaluate`.
ENGINES = ("natix", "natix-canonical", "naive", "memo")


def parse_document(text: str, **kwargs) -> Document:
    """Parse an XML string into a :class:`~repro.dom.document.Document`."""
    return _parse_xml(text, **kwargs)


def store_document(document: Document, path, **kwargs) -> None:
    """Persist a document to a Natix-style page file."""
    from repro.storage import DocumentStore

    DocumentStore.write(document, path, **kwargs)


def open_store(path, buffer_pages: int = 256):
    """Open a stored document; queries run directly on the page buffer."""
    from repro.storage import DocumentStore

    return DocumentStore.open(path, buffer_pages=buffer_pages)


def compile_xpath(
    query: str, options: Optional[TranslationOptions] = None
) -> CompiledQuery:
    """Compile an XPath 1.0 expression with the algebraic compiler."""
    return XPathCompiler(options).compile(query)


def _context_node(target: Union[Document, Node]) -> Node:
    if isinstance(target, Document):
        return target.root
    return target


def evaluate(
    query: str,
    target: Union[Document, Node],
    variables: Optional[Mapping[str, XPathValue]] = None,
    namespaces: Optional[Mapping[str, str]] = None,
    engine: str = "natix",
) -> XPathValue:
    """One-shot evaluation of ``query`` against a document or node."""
    node = _context_node(target)
    if engine == "natix":
        return compile_xpath(query).evaluate(node, variables, namespaces)
    if engine == "natix-canonical":
        compiled = compile_xpath(query, TranslationOptions.canonical())
        return compiled.evaluate(node, variables, namespaces)
    if engine in ("naive", "memo"):
        interp = NaiveInterpreter() if engine == "naive" else MemoInterpreter()
        return interp.evaluate(query, make_context(node, variables, namespaces))
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
