"""The public convenience API.

One-shot use needs exactly three things::

    from repro import parse_document, compile_xpath, evaluate

    doc = parse_document("<a><b/><b/></a>")
    print(evaluate("count(/a/b)", doc))            # 2.0

    query = compile_xpath("/a/b[position() = last()]")
    nodes = query.evaluate(doc.root)

Serving many queries, create a session instead — an
:class:`~repro.engine.session.XPathEngine` caches compiled plans and
instruments every layer::

    from repro import XPathEngine

    engine = XPathEngine()
    engine.evaluate("count(/a/b)", doc)        # compiles and caches
    engine.evaluate("count(/a/b)", doc)        # plan-cache hit
    engine.evaluate_many(["/a/b", "//b"], doc) # batch, shared context
    engine.evaluate_concurrent(               # thread-pool batch
        ["/a/b", "//b", "count(//b)"], doc, max_workers=4
    )
    print(engine.stats().to_json(indent=2))

One engine may be shared across threads: the plan cache is
lock-striped, each thread executes its own instance of a cached plan,
and concurrent identical ``evaluate`` calls are coalesced into a single
execution (see ``docs/concurrency.md``).

``evaluate`` accepts an engine name to pick an evaluation strategy:
``"natix"`` (the algebraic engine with the improved translation, the
default), ``"natix-canonical"`` (section-3 translation only), ``"naive"``
and ``"memo"`` (the baseline interpreters).  Engines live in
:data:`ENGINE_REGISTRY`; third-party strategies plug in through
:func:`register_engine` without editing this module.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace as _dc_replace
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.baselines.memo import MemoInterpreter
from repro.baselines.naive import NaiveInterpreter
from repro.compiler.improved import TranslationOptions
from repro.compiler.pipeline import CompiledQuery, XPathCompiler
from repro.dom.document import Document
from repro.dom.node import Node
from repro.dom.parser import parse as _parse_xml
from repro.engine.governor import CancelToken, ResourceGovernor
from repro.engine.session import (
    EngineStats,
    XPathEngine,
    resolve_context_node,
)
from repro.xpath.context import make_context
from repro.xpath.datamodel import XPathValue

#: Values accepted by :attr:`EvalOptions.index` / :attr:`EvalOptions.codegen`.
_MODE_VALUES = ("auto", "off", "force")

#: Values accepted by :attr:`EvalOptions.optimizer`.
_OPTIMIZER_VALUES = ("heuristic", "cost")


@dataclass(frozen=True)
class EvalOptions:
    """Per-call evaluation options, as one frozen value object.

    Consolidates the per-call knobs that used to be individual keyword
    arguments — accepted uniformly by :func:`evaluate` /
    :func:`evaluate_concurrent`, every :class:`XPathEngine` evaluation
    method, the CLI, and
    :class:`~repro.testing.oracle.DifferentialRunner` (as its
    ``governance``).  Being frozen and order-normalized it is usable
    directly as a cache or coalescing key: two instances built from the
    same settings (namespace mappings in any iteration order) are equal
    and hash alike.

    ``None`` for any field means "use the callee's default": an engine
    evaluates with its configured ``index``/``codegen``/``optimizer``
    mode unless the call overrides it.  ``optimizer`` selects plan
    choice only (``"heuristic"`` gates or the ``"cost"`` model, see
    ``docs/optimizer.md``) — answers are identical either way.  ``engine`` names a :data:`ENGINE_REGISTRY`
    strategy and is consumed by one-shot :func:`evaluate` (an
    :class:`XPathEngine` *is* the strategy, so its methods ignore the
    field).  ``variables`` may hold unhashable node-sets, so it is
    excluded from the hash (never from equality).
    """

    variables: Optional[Mapping[str, XPathValue]] = field(
        default=None, hash=False
    )
    namespaces: Optional[Mapping[str, str]] = None
    engine: Optional[str] = None
    timeout: Optional[float] = None
    max_tuples: Optional[int] = None
    max_bytes: Optional[int] = None
    cancel: Optional[CancelToken] = field(default=None, hash=False)
    index: Optional[str] = None
    codegen: Optional[str] = None
    optimizer: Optional[str] = None

    def __post_init__(self):
        namespaces = self.namespaces
        if namespaces is not None and not isinstance(namespaces, tuple):
            object.__setattr__(
                self, "namespaces", tuple(sorted(namespaces.items()))
            )
        for name in ("index", "codegen"):
            value = getattr(self, name)
            if value is not None and value not in _MODE_VALUES:
                raise ValueError(
                    f"{name} must be one of {_MODE_VALUES} or None, "
                    f"got {value!r}"
                )
        if (self.optimizer is not None
                and self.optimizer not in _OPTIMIZER_VALUES):
            raise ValueError(
                f"optimizer must be one of {_OPTIMIZER_VALUES} or None, "
                f"got {self.optimizer!r}"
            )

    def namespace_map(self) -> Optional[Dict[str, str]]:
        """The namespace bindings as a plain dict (or ``None``)."""
        if self.namespaces is None:
            return None
        return dict(self.namespaces)

    def governed(self) -> bool:
        """Whether any resource limit or cancel token is set."""
        return (
            self.timeout is not None
            or self.max_tuples is not None
            or self.max_bytes is not None
            or self.cancel is not None
        )

    def replace(self, **changes) -> "EvalOptions":
        """A copy with the given fields replaced."""
        return _dc_replace(self, **changes)


def _resolve_eval_options(
    func_name: str,
    eval_options: Optional[EvalOptions],
    legacy: Dict[str, object],
    *,
    stacklevel: int = 3,
) -> EvalOptions:
    """Fold legacy per-call keyword arguments into an :class:`EvalOptions`.

    The one adapter behind every evaluation entry point: passing any of
    the old individual knobs still works but emits a single consolidated
    :class:`DeprecationWarning` naming all of them; mixing them with an
    explicit ``eval_options`` is a :class:`TypeError` (there would be two
    sources of truth).
    """
    provided = {
        name: value for name, value in legacy.items() if value is not None
    }
    if not provided:
        return eval_options if eval_options is not None else EvalOptions()
    if eval_options is not None:
        raise TypeError(
            f"{func_name}() got both eval_options and legacy keyword "
            f"argument(s) {sorted(provided)}; pass everything in "
            "EvalOptions"
        )
    warnings.warn(
        f"passing {', '.join(sorted(provided))} to {func_name}() as "
        "individual keyword arguments is deprecated; pass "
        "eval_options=EvalOptions(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return EvalOptions(**provided)


#: A registered engine runner: evaluates one query against a context
#: node.  Signature: ``run(query, node, variables, namespaces, options)``.
EngineRunner = Callable[
    [
        str,
        Node,
        Optional[Mapping[str, XPathValue]],
        Optional[Mapping[str, str]],
        Optional[TranslationOptions],
    ],
    XPathValue,
]

#: A registered engine: a zero-argument factory producing a runner.
EngineFactory = Callable[[], EngineRunner]

#: Named engine factories.  Mutate through :func:`register_engine`.
ENGINE_REGISTRY: Dict[str, EngineFactory] = {}


def register_engine(
    name: str, factory: EngineFactory, *, replace: bool = False
) -> None:
    """Register an evaluation engine under ``name``.

    ``factory`` is a zero-argument callable returning a runner
    ``run(query, node, variables, namespaces, options) -> XPathValue``.
    Registering an existing name raises unless ``replace=True``.
    """
    if not replace and name in ENGINE_REGISTRY:
        raise ValueError(f"engine {name!r} is already registered")
    ENGINE_REGISTRY[name] = factory


def unregister_engine(name: str) -> None:
    """Remove a registered engine (missing names are ignored)."""
    ENGINE_REGISTRY.pop(name, None)


def engine_names() -> Tuple[str, ...]:
    """The currently registered engine names, sorted."""
    return tuple(sorted(ENGINE_REGISTRY))


def get_engine_factory(name: str) -> EngineFactory:
    """Look up a registered engine factory by name."""
    try:
        return ENGINE_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {engine_names()}"
        ) from None


# ----------------------------------------------------------------------
# Built-in engines
# ----------------------------------------------------------------------


def _compiled_engine(default_options: Callable[[], TranslationOptions]):
    def factory() -> EngineRunner:
        def run(query, node, variables, namespaces, options):
            opts = options if options is not None else default_options()
            compiled = XPathCompiler(opts).compile(query)
            return compiled.evaluate(node, variables, namespaces)

        return run

    return factory


def _interpreter_engine(interpreter_class):
    def factory() -> EngineRunner:
        interpreter = interpreter_class()

        def run(query, node, variables, namespaces, options):
            # Interpreters have no translation phase; options are the
            # algebraic compiler's knobs and do not apply.
            return interpreter.evaluate(
                query, make_context(node, variables, namespaces)
            )

        return run

    return factory


register_engine("natix", _compiled_engine(TranslationOptions.improved))
register_engine(
    "natix-canonical", _compiled_engine(TranslationOptions.canonical)
)
register_engine("naive", _interpreter_engine(NaiveInterpreter))
register_engine("memo", _interpreter_engine(MemoInterpreter))

#: Engine names accepted by :func:`evaluate`.  Snapshot of the built-in
#: registry at import time; :func:`engine_names` is the live view.
ENGINES = tuple(ENGINE_REGISTRY)


# ----------------------------------------------------------------------
# Documents and stores
# ----------------------------------------------------------------------


def parse_document(text: str, **kwargs) -> Document:
    """Parse an XML string into a :class:`~repro.dom.document.Document`."""
    return _parse_xml(text, **kwargs)


def store_document(document: Document, path, **kwargs) -> None:
    """Persist a document to a Natix-style page file.

    Structural indexes (:mod:`repro.index`) are built and appended by
    default; pass ``indexes=False`` for a bare store.
    """
    from repro.storage import DocumentStore

    DocumentStore.write(document, path, **kwargs)


def build_indexes(path, *args, buffer_pages: Optional[int] = None) -> None:
    """Build (or rebuild) the structural indexes of a stored document.

    Use this to retrofit indexes onto a store written with
    ``indexes=False`` (or by an older version); the data pages are not
    rewritten.  Re-open the store afterwards to pick the indexes up.
    ``buffer_pages`` is keyword-only (the positional form is
    deprecated).
    """
    from repro.storage import DocumentStore

    if args:
        absorbed = _absorb_legacy_positionals(
            "build_indexes", args, ("buffer_pages",),
            {"buffer_pages": buffer_pages},
        )
        buffer_pages = absorbed["buffer_pages"]
    DocumentStore.build_indexes(
        path, buffer_pages=256 if buffer_pages is None else buffer_pages
    )


def open_store(path, *args, buffer_pages: Optional[int] = None):
    """Open a stored document; queries run directly on the page buffer.

    The returned :class:`~repro.storage.store.StoredDocument` is a valid
    :func:`evaluate` target, interchangeable with an in-memory
    :class:`Document`.  ``buffer_pages`` is keyword-only (the positional
    form is deprecated).
    """
    from repro.storage import DocumentStore

    if args:
        absorbed = _absorb_legacy_positionals(
            "open_store", args, ("buffer_pages",),
            {"buffer_pages": buffer_pages},
        )
        buffer_pages = absorbed["buffer_pages"]
    return DocumentStore.open(
        path, buffer_pages=256 if buffer_pages is None else buffer_pages
    )


def create_collection(documents, directory, *, shards: Optional[int] = None,
                      name: Optional[str] = None, indexes: bool = True):
    """Write documents as a sharded collection directory.

    ``documents`` is either a sequence of :class:`Document` (one shard
    each, in global document order) or a single document to split into
    ``shards`` per-subtree shards (default 4).  Structural indexes are
    built per shard unless ``indexes=False``.  Returns the written
    :class:`~repro.collection.catalog.CollectionCatalog`.
    """
    from repro.collection import catalog as collection_catalog

    if isinstance(documents, Document):
        return collection_catalog.create_collection_from_document(
            documents, directory, shards=shards or 4,
            name=name, indexes=indexes,
        )
    if shards is not None:
        raise ValueError(
            "shards= only applies when splitting a single document; "
            "a sequence of documents is one shard each"
        )
    return collection_catalog.create_collection(
        directory, list(documents), name=name, indexes=indexes,
    )


def open_collection(directory, *, workers: Optional[int] = None,
                    index: str = "auto", optimizer: str = "heuristic",
                    options=None, pruning: bool = True):
    """Open a collection directory and start its worker pool.

    The returned :class:`~repro.collection.Collection` serves queries
    across every shard through a persistent ``multiprocessing`` pool —
    use it directly or pass it to
    :meth:`XPathEngine.evaluate_collection`.  It holds worker processes
    open: close it (or use it as a context manager) when done.
    ``index`` and ``optimizer`` mirror the :class:`XPathEngine` knobs
    and apply inside every worker.  ``pruning`` (default on) lets the
    scatter skip shards whose path synopsis proves the query empty
    there; results are identical either way.
    """
    from repro.collection import Collection

    return Collection(
        directory, workers=workers, index_mode=index,
        optimizer=optimizer, options=options, pruning=pruning,
    )


# ----------------------------------------------------------------------
# One-shot compile and evaluate
# ----------------------------------------------------------------------


def _absorb_legacy_positionals(func_name, args, names, values, *,
                               error=False):
    """Map deprecated positional arguments onto keyword slots.

    With ``error=True`` the deprecation (warned about since v1.1) is
    escalated: the positional form raises :class:`TypeError` outright.
    ``error=False`` keeps the warning behavior for the newly
    keyword-only parameters (``open_store``/``build_indexes``).
    """
    if len(args) > len(names):
        raise TypeError(
            f"{func_name}() takes at most {len(names)} deprecated "
            f"positional arguments ({len(args)} given)"
        )
    if error:
        raise TypeError(
            f"passing {'/'.join(names[:len(args)])} positionally to "
            f"{func_name}() is no longer supported; use keyword "
            "arguments"
        )
    warnings.warn(
        f"passing {'/'.join(names[:len(args)])} positionally to "
        f"{func_name}() is deprecated; use keyword arguments",
        DeprecationWarning,
        stacklevel=3,
    )
    for name, value in zip(names, args):
        if values[name] is not None:
            raise TypeError(
                f"{func_name}() got {name!r} both positionally and as a "
                "keyword"
            )
        values[name] = value
    return values


def compile_xpath(
    query: str,
    *args,
    options: Optional[TranslationOptions] = None,
    namespaces: Optional[Mapping[str, str]] = None,
) -> CompiledQuery:
    """Compile an XPath 1.0 expression with the algebraic compiler.

    ``namespaces`` become the compiled query's default prefix bindings
    (still overridable per ``evaluate`` call).  The legacy positional
    ``options`` form was removed; ``options`` is keyword-only.
    """
    if args:
        _absorb_legacy_positionals(
            "compile_xpath", args, ("options",), {"options": options},
            error=True,
        )
    compiled = XPathCompiler(options).compile(query)
    if namespaces:
        compiled.default_namespaces = dict(namespaces)
    return compiled


def evaluate(
    query: str,
    target: Union[Document, Node],
    eval_options: Optional[EvalOptions] = None,
    *args,
    options: Optional[TranslationOptions] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
    namespaces: Optional[Mapping[str, str]] = None,
    engine: Optional[str] = None,
    timeout: Optional[float] = None,
    max_tuples: Optional[int] = None,
    max_bytes: Optional[int] = None,
    cancel: Optional[CancelToken] = None,
) -> XPathValue:
    """One-shot evaluation of ``query`` against a document or node.

    Per-call configuration travels in one :class:`EvalOptions` value:
    variables, namespaces, the engine strategy (a
    :data:`ENGINE_REGISTRY` name), the governance limits and the
    ``index``/``codegen`` backend modes.  ``options``
    (:class:`TranslationOptions`) stays a separate keyword — it
    parameterizes the algebraic *compiler*, not one evaluation.  The
    old individual keyword arguments keep working with a
    :class:`DeprecationWarning`; the ancient positional
    ``(variables, namespaces, engine)`` form now raises
    :class:`TypeError`.

    Governance limits (``timeout`` seconds, ``max_tuples``,
    ``max_bytes``, ``cancel``) abort with a typed governance error
    instead of returning a partial result (see ``docs/limits.md``);
    they — like ``index`` and ``codegen`` — run inside the algebraic
    engine, so they require ``engine`` ``"natix"`` or
    ``"natix-canonical"`` (the baseline interpreters have no
    cooperative checkpoints and no plans to route or compile).
    """
    if args or (
        eval_options is not None
        and not isinstance(eval_options, EvalOptions)
    ):
        legacy_args = args
        if eval_options is not None and not isinstance(
            eval_options, EvalOptions
        ):
            legacy_args = (eval_options,) + args
        _absorb_legacy_positionals(
            "evaluate",
            legacy_args,
            ("variables", "namespaces", "engine"),
            {
                "variables": variables,
                "namespaces": namespaces,
                "engine": engine,
            },
            error=True,
        )
    resolved = _resolve_eval_options(
        "evaluate",
        eval_options,
        {
            "variables": variables,
            "namespaces": namespaces,
            "engine": engine,
            "timeout": timeout,
            "max_tuples": max_tuples,
            "max_bytes": max_bytes,
            "cancel": cancel,
        },
    )
    node = resolve_context_node(target)
    name = resolved.engine or "natix"
    needs_algebraic = (
        resolved.governed()
        or resolved.index is not None
        or resolved.codegen is not None
        or resolved.optimizer is not None
    )
    if needs_algebraic:
        if name not in ("natix", "natix-canonical"):
            raise ValueError(
                "timeout/max_tuples/max_bytes/cancel/index/codegen/"
                "optimizer require an algebraic engine ('natix' or "
                f"'natix-canonical'), got {name!r}"
            )
        if options is None:
            options = (
                TranslationOptions.canonical()
                if name == "natix-canonical"
                else TranslationOptions.improved()
            )
        if resolved.index is not None or resolved.optimizer is not None:
            session = XPathEngine(
                options,
                index=resolved.index or "auto",
                codegen=resolved.codegen or "off",
                optimizer=resolved.optimizer or "heuristic",
            )
            return session.evaluate(query, target, resolved)
        compiled = XPathCompiler(options).compile(query)
        governor = None
        if resolved.governed():
            governor = ResourceGovernor(
                timeout=resolved.timeout,
                max_tuples=resolved.max_tuples,
                max_bytes=resolved.max_bytes,
                cancel=resolved.cancel,
            )
        return compiled.evaluate(
            node,
            resolved.variables,
            resolved.namespace_map(),
            governor=governor,
            codegen=resolved.codegen or "off",
        )
    runner = get_engine_factory(name)()
    return runner(
        query, node, resolved.variables, resolved.namespace_map(), options
    )


def evaluate_concurrent(
    queries: Sequence[str],
    target: Union[Document, Node],
    eval_options: Optional[EvalOptions] = None,
    *,
    max_workers: Optional[int] = None,
    options: Optional[TranslationOptions] = None,
    return_exceptions: bool = False,
    variables: Optional[Mapping[str, XPathValue]] = None,
    namespaces: Optional[Mapping[str, str]] = None,
    timeout: Optional[float] = None,
    max_tuples: Optional[int] = None,
    max_bytes: Optional[int] = None,
    cancel: Optional[CancelToken] = None,
) -> List[XPathValue]:
    """One-shot concurrent evaluation of a query batch.

    Convenience wrapper that spins up an ephemeral
    :class:`XPathEngine` and fans the batch out over its thread pool
    (see :meth:`XPathEngine.evaluate_concurrent`).  Serving workloads
    should hold on to an engine instead, so the plan cache survives
    between batches.  Per-call configuration travels in
    :class:`EvalOptions` (the old individual keyword arguments warn);
    governance limits apply per query, with the deadline anchored at
    submission (queue wait counts).
    """
    resolved = _resolve_eval_options(
        "evaluate_concurrent",
        eval_options,
        {
            "variables": variables,
            "namespaces": namespaces,
            "timeout": timeout,
            "max_tuples": max_tuples,
            "max_bytes": max_bytes,
            "cancel": cancel,
        },
    )
    engine = XPathEngine(
        options,
        index=resolved.index or "auto",
        codegen=resolved.codegen or "off",
        optimizer=resolved.optimizer or "heuristic",
    )
    return engine.evaluate_concurrent(
        queries,
        target,
        resolved,
        max_workers=max_workers,
        return_exceptions=return_exceptions,
    )


def _context_node(target: Union[Document, Node]) -> Node:
    """Deprecated alias of :func:`resolve_context_node`."""
    return resolve_context_node(target)


__all__ = [
    "CancelToken",
    "ENGINES",
    "ENGINE_REGISTRY",
    "EngineStats",
    "EvalOptions",
    "ResourceGovernor",
    "XPathEngine",
    "build_indexes",
    "compile_xpath",
    "create_collection",
    "engine_names",
    "evaluate",
    "evaluate_concurrent",
    "get_engine_factory",
    "open_collection",
    "open_store",
    "parse_document",
    "register_engine",
    "resolve_context_node",
    "store_document",
    "unregister_engine",
]
