"""The public convenience API.

One-shot use needs exactly three things::

    from repro import parse_document, compile_xpath, evaluate

    doc = parse_document("<a><b/><b/></a>")
    print(evaluate("count(/a/b)", doc))            # 2.0

    query = compile_xpath("/a/b[position() = last()]")
    nodes = query.evaluate(doc.root)

Serving many queries, create a session instead — an
:class:`~repro.engine.session.XPathEngine` caches compiled plans and
instruments every layer::

    from repro import XPathEngine

    engine = XPathEngine()
    engine.evaluate("count(/a/b)", doc)        # compiles and caches
    engine.evaluate("count(/a/b)", doc)        # plan-cache hit
    engine.evaluate_many(["/a/b", "//b"], doc) # batch, shared context
    engine.evaluate_concurrent(               # thread-pool batch
        ["/a/b", "//b", "count(//b)"], doc, max_workers=4
    )
    print(engine.stats().to_json(indent=2))

One engine may be shared across threads: the plan cache is
lock-striped, each thread executes its own instance of a cached plan,
and concurrent identical ``evaluate`` calls are coalesced into a single
execution (see ``docs/concurrency.md``).

``evaluate`` accepts an engine name to pick an evaluation strategy:
``"natix"`` (the algebraic engine with the improved translation, the
default), ``"natix-canonical"`` (section-3 translation only), ``"naive"``
and ``"memo"`` (the baseline interpreters).  Engines live in
:data:`ENGINE_REGISTRY`; third-party strategies plug in through
:func:`register_engine` without editing this module.
"""

from __future__ import annotations

import warnings
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.baselines.memo import MemoInterpreter
from repro.baselines.naive import NaiveInterpreter
from repro.compiler.improved import TranslationOptions
from repro.compiler.pipeline import CompiledQuery, XPathCompiler
from repro.dom.document import Document
from repro.dom.node import Node
from repro.dom.parser import parse as _parse_xml
from repro.engine.governor import CancelToken, ResourceGovernor
from repro.engine.session import (
    EngineStats,
    XPathEngine,
    resolve_context_node,
)
from repro.xpath.context import make_context
from repro.xpath.datamodel import XPathValue

#: A registered engine runner: evaluates one query against a context
#: node.  Signature: ``run(query, node, variables, namespaces, options)``.
EngineRunner = Callable[
    [
        str,
        Node,
        Optional[Mapping[str, XPathValue]],
        Optional[Mapping[str, str]],
        Optional[TranslationOptions],
    ],
    XPathValue,
]

#: A registered engine: a zero-argument factory producing a runner.
EngineFactory = Callable[[], EngineRunner]

#: Named engine factories.  Mutate through :func:`register_engine`.
ENGINE_REGISTRY: Dict[str, EngineFactory] = {}


def register_engine(
    name: str, factory: EngineFactory, *, replace: bool = False
) -> None:
    """Register an evaluation engine under ``name``.

    ``factory`` is a zero-argument callable returning a runner
    ``run(query, node, variables, namespaces, options) -> XPathValue``.
    Registering an existing name raises unless ``replace=True``.
    """
    if not replace and name in ENGINE_REGISTRY:
        raise ValueError(f"engine {name!r} is already registered")
    ENGINE_REGISTRY[name] = factory


def unregister_engine(name: str) -> None:
    """Remove a registered engine (missing names are ignored)."""
    ENGINE_REGISTRY.pop(name, None)


def engine_names() -> Tuple[str, ...]:
    """The currently registered engine names, sorted."""
    return tuple(sorted(ENGINE_REGISTRY))


def get_engine_factory(name: str) -> EngineFactory:
    """Look up a registered engine factory by name."""
    try:
        return ENGINE_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {engine_names()}"
        ) from None


# ----------------------------------------------------------------------
# Built-in engines
# ----------------------------------------------------------------------


def _compiled_engine(default_options: Callable[[], TranslationOptions]):
    def factory() -> EngineRunner:
        def run(query, node, variables, namespaces, options):
            opts = options if options is not None else default_options()
            compiled = XPathCompiler(opts).compile(query)
            return compiled.evaluate(node, variables, namespaces)

        return run

    return factory


def _interpreter_engine(interpreter_class):
    def factory() -> EngineRunner:
        interpreter = interpreter_class()

        def run(query, node, variables, namespaces, options):
            # Interpreters have no translation phase; options are the
            # algebraic compiler's knobs and do not apply.
            return interpreter.evaluate(
                query, make_context(node, variables, namespaces)
            )

        return run

    return factory


register_engine("natix", _compiled_engine(TranslationOptions.improved))
register_engine(
    "natix-canonical", _compiled_engine(TranslationOptions.canonical)
)
register_engine("naive", _interpreter_engine(NaiveInterpreter))
register_engine("memo", _interpreter_engine(MemoInterpreter))

#: Engine names accepted by :func:`evaluate`.  Snapshot of the built-in
#: registry at import time; :func:`engine_names` is the live view.
ENGINES = tuple(ENGINE_REGISTRY)


# ----------------------------------------------------------------------
# Documents and stores
# ----------------------------------------------------------------------


def parse_document(text: str, **kwargs) -> Document:
    """Parse an XML string into a :class:`~repro.dom.document.Document`."""
    return _parse_xml(text, **kwargs)


def store_document(document: Document, path, **kwargs) -> None:
    """Persist a document to a Natix-style page file.

    Structural indexes (:mod:`repro.index`) are built and appended by
    default; pass ``indexes=False`` for a bare store.
    """
    from repro.storage import DocumentStore

    DocumentStore.write(document, path, **kwargs)


def build_indexes(path, buffer_pages: int = 256) -> None:
    """Build (or rebuild) the structural indexes of a stored document.

    Use this to retrofit indexes onto a store written with
    ``indexes=False`` (or by an older version); the data pages are not
    rewritten.  Re-open the store afterwards to pick the indexes up.
    """
    from repro.storage import DocumentStore

    DocumentStore.build_indexes(path, buffer_pages=buffer_pages)


def open_store(path, buffer_pages: int = 256):
    """Open a stored document; queries run directly on the page buffer.

    The returned :class:`~repro.storage.store.StoredDocument` is a valid
    :func:`evaluate` target, interchangeable with an in-memory
    :class:`Document`.
    """
    from repro.storage import DocumentStore

    return DocumentStore.open(path, buffer_pages=buffer_pages)


# ----------------------------------------------------------------------
# One-shot compile and evaluate
# ----------------------------------------------------------------------


def _absorb_legacy_positionals(func_name, args, names, values):
    """Map deprecated positional arguments onto keyword slots."""
    if len(args) > len(names):
        raise TypeError(
            f"{func_name}() takes at most {len(names)} deprecated "
            f"positional arguments ({len(args)} given)"
        )
    warnings.warn(
        f"passing {'/'.join(names[:len(args)])} positionally to "
        f"{func_name}() is deprecated; use keyword arguments",
        DeprecationWarning,
        stacklevel=3,
    )
    for name, value in zip(names, args):
        if values[name] is not None:
            raise TypeError(
                f"{func_name}() got {name!r} both positionally and as a "
                "keyword"
            )
        values[name] = value
    return values


def compile_xpath(
    query: str,
    *args,
    options: Optional[TranslationOptions] = None,
    namespaces: Optional[Mapping[str, str]] = None,
) -> CompiledQuery:
    """Compile an XPath 1.0 expression with the algebraic compiler.

    ``namespaces`` become the compiled query's default prefix bindings
    (still overridable per ``evaluate`` call).  The legacy positional
    ``options`` form is deprecated.
    """
    if args:
        absorbed = _absorb_legacy_positionals(
            "compile_xpath", args, ("options",), {"options": options}
        )
        options = absorbed["options"]
    compiled = XPathCompiler(options).compile(query)
    if namespaces:
        compiled.default_namespaces = dict(namespaces)
    return compiled


def evaluate(
    query: str,
    target: Union[Document, Node],
    *args,
    variables: Optional[Mapping[str, XPathValue]] = None,
    namespaces: Optional[Mapping[str, str]] = None,
    engine: Optional[str] = None,
    options: Optional[TranslationOptions] = None,
    timeout: Optional[float] = None,
    max_tuples: Optional[int] = None,
    max_bytes: Optional[int] = None,
    cancel: Optional[CancelToken] = None,
) -> XPathValue:
    """One-shot evaluation of ``query`` against a document or node.

    All configuration is keyword-only: ``variables``, ``namespaces``,
    ``engine`` (a :data:`ENGINE_REGISTRY` name) and ``options`` (a
    :class:`TranslationOptions` for the algebraic engines).  The legacy
    positional ``(variables, namespaces, engine)`` form is deprecated.

    ``timeout`` (seconds), ``max_tuples``, ``max_bytes`` and ``cancel``
    bound the evaluation with a typed governance error instead of a
    partial result (see ``docs/limits.md``).  Governance runs inside
    the algebraic iterator engine, so it is only available with the
    ``"natix"``/``"natix-canonical"`` engines (the baseline
    interpreters have no cooperative checkpoints).
    """
    if args:
        absorbed = _absorb_legacy_positionals(
            "evaluate",
            args,
            ("variables", "namespaces", "engine"),
            {
                "variables": variables,
                "namespaces": namespaces,
                "engine": engine,
            },
        )
        variables = absorbed["variables"]
        namespaces = absorbed["namespaces"]
        engine = absorbed["engine"]
    node = resolve_context_node(target)
    if (timeout is not None or max_tuples is not None
            or max_bytes is not None or cancel is not None):
        name = engine or "natix"
        if name not in ("natix", "natix-canonical"):
            raise ValueError(
                "timeout/max_tuples/max_bytes/cancel require an algebraic "
                f"engine ('natix' or 'natix-canonical'), got {name!r}"
            )
        if options is None:
            options = (
                TranslationOptions.canonical()
                if name == "natix-canonical"
                else TranslationOptions.improved()
            )
        compiled = XPathCompiler(options).compile(query)
        governor = ResourceGovernor(
            timeout=timeout, max_tuples=max_tuples, max_bytes=max_bytes,
            cancel=cancel,
        )
        return compiled.evaluate(
            node, variables, namespaces, governor=governor
        )
    runner = get_engine_factory(engine or "natix")()
    return runner(query, node, variables, namespaces, options)


def evaluate_concurrent(
    queries: Sequence[str],
    target: Union[Document, Node],
    *,
    max_workers: Optional[int] = None,
    variables: Optional[Mapping[str, XPathValue]] = None,
    namespaces: Optional[Mapping[str, str]] = None,
    options: Optional[TranslationOptions] = None,
    timeout: Optional[float] = None,
    max_tuples: Optional[int] = None,
    max_bytes: Optional[int] = None,
    cancel: Optional[CancelToken] = None,
    return_exceptions: bool = False,
) -> List[XPathValue]:
    """One-shot concurrent evaluation of a query batch.

    Convenience wrapper that spins up an ephemeral
    :class:`XPathEngine` and fans the batch out over its thread pool
    (see :meth:`XPathEngine.evaluate_concurrent`).  Serving workloads
    should hold on to an engine instead, so the plan cache survives
    between batches.  Governance limits apply per query, with the
    deadline anchored at submission (queue wait counts).
    """
    engine = XPathEngine(options)
    return engine.evaluate_concurrent(
        queries,
        target,
        max_workers=max_workers,
        variables=variables,
        namespaces=namespaces,
        timeout=timeout,
        max_tuples=max_tuples,
        max_bytes=max_bytes,
        cancel=cancel,
        return_exceptions=return_exceptions,
    )


def _context_node(target: Union[Document, Node]) -> Node:
    """Deprecated alias of :func:`resolve_context_node`."""
    return resolve_context_node(target)


__all__ = [
    "CancelToken",
    "ENGINES",
    "ENGINE_REGISTRY",
    "EngineStats",
    "ResourceGovernor",
    "XPathEngine",
    "build_indexes",
    "compile_xpath",
    "engine_names",
    "evaluate",
    "evaluate_concurrent",
    "get_engine_factory",
    "open_store",
    "parse_document",
    "register_engine",
    "resolve_context_node",
    "store_document",
    "unregister_engine",
]
