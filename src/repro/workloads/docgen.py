"""The paper's document generator (section 6.2.1).

"The documents ... were generated.  They differ in the number of
elements, fanout and document depth.  The document generator follows a
breadth first algorithm and fills every depth of the document with the
given fanout until the maximum number of elements or depth is reached.
The root element of every document has the name xdoc.  Every element
contains an attribute id which is consecutively numbered."

The paper's concrete configurations are exposed as
:data:`PAPER_SMALL_SERIES` (2000–8000 elements, fanout 6, depth 4) and
:data:`PAPER_LARGE_SERIES` (10000–80000 elements, fanout 10, depth 5).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence

from repro.dom.builder import DocumentBuilder
from repro.dom.document import Document
from repro.dom.node import Node, NodeKind

#: (max_elements, fanout, depth) triples matching the paper's figures.
PAPER_SMALL_SERIES: Sequence[tuple[int, int, int]] = tuple(
    (n, 6, 4) for n in (2000, 4000, 6000, 8000)
)
PAPER_LARGE_SERIES: Sequence[tuple[int, int, int]] = tuple(
    (n, 10, 5) for n in (10000, 20000, 40000, 80000)
)

#: Element names used below the root, cycling by depth.
_NAMES = ("section", "item", "entry", "leaf", "part", "unit")


def generate_document(
    max_elements: int,
    fanout: int,
    depth: int,
    element_names: Optional[Sequence[str]] = None,
) -> Document:
    """Generate a breadth-first document per the paper's description.

    ``depth`` counts levels below the root; the root ``xdoc`` element is
    level 0 and carries ``id="0"``.  Generation stops when either
    ``max_elements`` elements exist or every level up to ``depth`` is
    full.
    """
    if max_elements < 1:
        raise ValueError("max_elements must be at least 1")
    if fanout < 1 or depth < 0:
        raise ValueError("fanout must be >= 1 and depth >= 0")
    names = tuple(element_names or _NAMES)

    builder = _TreeAssembler()
    root = builder.make_element("xdoc", 0)
    count = 1
    queue: deque[tuple[_PendingElement, int]] = deque([(root, 0)])
    while queue and count < max_elements:
        parent, level = queue.popleft()
        if level >= depth:
            continue
        name = names[level % len(names)]
        for _ in range(fanout):
            if count >= max_elements:
                break
            child = builder.make_element(name, count)
            parent.children.append(child)
            count += 1
            queue.append((child, level + 1))
    return builder.finish(root)


class _PendingElement:
    """A lightweight element record used during generation."""

    __slots__ = ("name", "identifier", "children")

    def __init__(self, name: str, identifier: int):
        self.name = name
        self.identifier = identifier
        self.children: List["_PendingElement"] = []


class _TreeAssembler:
    """Builds the DOM from pending records in one pass at the end.

    Generating into lightweight records first keeps the breadth-first
    phase allocation-cheap; the DOM (with document-order ranks and the ID
    map) is assembled once the shape is final.
    """

    def make_element(self, name: str, identifier: int) -> _PendingElement:
        return _PendingElement(name, identifier)

    def finish(self, root: _PendingElement) -> Document:
        builder = DocumentBuilder()
        stack: List[tuple[_PendingElement, bool]] = [(root, False)]
        while stack:
            pending, done = stack.pop()
            if done:
                builder.end_element(pending.name)
                continue
            builder.start_element(
                pending.name, [("id", str(pending.identifier))]
            )
            stack.append((pending, True))
            for child in reversed(pending.children):
                stack.append((child, False))
        return builder.finish()


def element_count(document: Document) -> int:
    """Number of element nodes in a generated document."""
    return sum(
        1 for node in document.iter_nodes() if node.kind == NodeKind.ELEMENT
    )
