"""Query workload generation.

Section 6.2.1: "The queries were obtained by systematically generating
all XPath location paths of length 3 with a node test checking for any
element node in each step."  :func:`generate_axis_paths` reproduces that
enumeration (for arbitrary lengths); :data:`FIG5_QUERIES` lists the four
sample queries the paper selected as representative patterns (Fig. 5),
and :data:`FIG10_QUERIES` the thirteen DBLP queries of Fig. 10.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Sequence

from repro.xpath.axes import Axis

#: The four queries of the paper's Fig. 5 (axis shorthands expanded).
FIG5_QUERIES: Sequence[str] = (
    "/child::xdoc/descendant::*/ancestor::*/descendant::*/attribute::id",
    "/child::xdoc/descendant::*/preceding-sibling::*/following::*"
    "/attribute::id",
    "/child::xdoc/descendant::*/ancestor::*/ancestor::*/attribute::id",
    "/child::xdoc/child::*/parent::*/descendant::*/attribute::id",
)

#: The thirteen DBLP queries of the paper's Fig. 10, verbatim.
FIG10_QUERIES: Sequence[str] = (
    "/dblp/article/title",
    "/dblp/*/title",
    "/dblp/article[position() = 3]/title",
    "/dblp/article[position() < 100]/title",
    "/dblp/article[position() = last()]/title",
    "/dblp/article[position() = last() - 10]/title",
    "/dblp/article/title | /dblp/inproceedings/title",
    "/dblp/article[count(author) = 4]/@key",
    "/dblp/article[year = '1991']/@key",
    "/dblp/inproceedings[year = '1991']/@key",
    "/dblp/*[author = 'Guido Moerkotte']/@key",
    "/dblp/inproceedings[@key = 'conf/er/LockemannM91']/title",
    "/dblp/inproceedings[author = 'Guido Moerkotte']"
    "[position() = last()]/title",
)

#: Axes entering the systematic enumeration (element principal type).
ELEMENT_AXES: Sequence[Axis] = (
    Axis.CHILD,
    Axis.DESCENDANT,
    Axis.PARENT,
    Axis.ANCESTOR,
    Axis.FOLLOWING_SIBLING,
    Axis.PRECEDING_SIBLING,
    Axis.FOLLOWING,
    Axis.PRECEDING,
    Axis.SELF,
    Axis.DESCENDANT_OR_SELF,
    Axis.ANCESTOR_OR_SELF,
)


def generate_axis_paths(
    length: int = 3,
    axes: Sequence[Axis] = ELEMENT_AXES,
    prefix: str = "/child::xdoc",
    suffix: str = "/attribute::id",
) -> Iterator[str]:
    """All location paths of ``length`` ``axis::*`` steps.

    Mirrors the paper's query generator: each query starts at the
    ``xdoc`` root element, applies ``length`` wildcard element steps, and
    projects the ``id`` attribute.
    """
    for combination in itertools.product(axes, repeat=length):
        steps = "".join(f"/{axis.value}::*" for axis in combination)
        yield f"{prefix}{steps}{suffix}"


def sample_axis_paths(
    length: int = 3, stride: int = 37, limit: int = 40
) -> List[str]:
    """A deterministic, well-spread sample of the systematic query set.

    Exhaustively running all ``11**3`` length-3 paths is a test-suite
    job; benchmarks and examples use this strided sample instead.
    """
    queries = list(generate_axis_paths(length))
    return [queries[i] for i in range(0, len(queries), stride)][:limit]
