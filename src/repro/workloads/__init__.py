"""Workload generators for the paper's evaluation (section 6).

* :mod:`repro.workloads.docgen` — the breadth-first generated documents
  of section 6.2.1,
* :mod:`repro.workloads.dblp` — a synthetic DBLP-shaped corpus standing
  in for the 216 MB DBLP dump of section 6.2.2 (see DESIGN.md for the
  substitution rationale),
* :mod:`repro.workloads.querygen` — systematic location-path enumeration
  ("all location paths of length 3") and the paper's Fig. 5 query set.
"""

from repro.workloads.docgen import generate_document
from repro.workloads.dblp import generate_dblp
from repro.workloads.querygen import FIG5_QUERIES, generate_axis_paths

__all__ = [
    "generate_document",
    "generate_dblp",
    "FIG5_QUERIES",
    "generate_axis_paths",
]
