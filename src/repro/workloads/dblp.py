"""A synthetic DBLP-shaped corpus (substitution for [16], section 6.2.2).

The paper's DBLP experiment runs thirteen queries against the 216 MB
DBLP XML dump — proprietary-scale data we cannot ship.  This generator
produces a seeded, statistically DBLP-shaped document at configurable
scale:

* a flat ``dblp`` root with a very large number of publication children
  (``article``, ``inproceedings``, ``proceedings``, ``phdthesis``),
* every publication carries a ``key`` attribute (``journals/...`` /
  ``conf/...``), a ``title``, 1–6 ``author`` elements, a ``year`` and a
  venue element,
* the specific constants the paper's queries mention are guaranteed to
  exist: author ``Guido Moerkotte`` and key ``conf/er/LockemannM91``.

The queries only depend on this shape (wide root for positional
predicates, selective value predicates on ``year``/``author``/``@key``),
so the substitution preserves the behaviour the experiment measures.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.dom.builder import DocumentBuilder
from repro.dom.document import Document

#: Publication kind mix, roughly matching DBLP's proportions.
_KINDS: Sequence[tuple[str, float]] = (
    ("article", 0.38),
    ("inproceedings", 0.50),
    ("proceedings", 0.07),
    ("phdthesis", 0.05),
)

_FIRST = (
    "Guido", "Sven", "Carl-Christian", "Matthias", "Anna", "Wei",
    "Divesh", "Nick", "Mary", "Georg", "Christoph", "Reinhard",
    "Daniela", "Donald", "Torsten", "Jan", "Philippe", "Laks",
)
_LAST = (
    "Moerkotte", "Helmer", "Kanne", "Brantner", "Koch", "Pichler",
    "Gottlob", "Srivastava", "Koudas", "Grust", "Kossmann", "Florescu",
    "Hidders", "Michiels", "Fernandez", "Simeon", "Graefe", "Ley",
)
_TITLE_WORDS = (
    "Efficient", "Algebraic", "XPath", "Query", "Processing", "Native",
    "XML", "Database", "Optimization", "Evaluation", "Indexing",
    "Holistic", "Twig", "Join", "Pattern", "Matching", "Streams",
    "Storage", "Transactions", "Views",
)
_JOURNALS = ("tods", "vldb", "sigmod", "tkde", "is", "dke")
_CONFERENCES = ("icde", "vldb", "sigmod", "edbt", "cikm", "wise", "er")

#: The author and key constants used verbatim by the paper's queries.
SPECIAL_AUTHOR = "Guido Moerkotte"
SPECIAL_KEY = "conf/er/LockemannM91"


def generate_dblp(
    publications: int = 2000,
    seed: int = 20050405,  # ICDE 2005's opening day
    special_author_every: int = 40,
) -> Document:
    """Generate a DBLP-shaped document with ``publications`` entries.

    Deterministic for a given ``seed``.  Every ``special_author_every``-th
    ``inproceedings`` gets :data:`SPECIAL_AUTHOR` as an author so the
    paper's author queries select a realistic, non-empty fraction.
    """
    rng = random.Random(seed)
    builder = DocumentBuilder(id_attributes=("key",))
    builder.start_element("dblp", [])

    special_key_emitted = False
    inproceedings_count = 0
    for index in range(publications):
        kind = _pick_kind(rng)
        year = rng.randint(1980, 2004)
        if kind == "inproceedings":
            inproceedings_count += 1
        force_special_author = (
            kind == "inproceedings"
            and special_author_every > 0
            and inproceedings_count % special_author_every == 0
        )
        if kind == "inproceedings" and not special_key_emitted:
            key = SPECIAL_KEY
            special_key_emitted = True
            year = 1991
        else:
            key = _make_key(rng, kind, index)
        _emit_publication(builder, rng, kind, key, year,
                          force_special_author)

    builder.end_element("dblp")
    return builder.finish()


def _pick_kind(rng: random.Random) -> str:
    roll = rng.random()
    cumulative = 0.0
    for kind, share in _KINDS:
        cumulative += share
        if roll < cumulative:
            return kind
    return _KINDS[-1][0]


def _make_key(rng: random.Random, kind: str, index: int) -> str:
    if kind == "article":
        return f"journals/{rng.choice(_JOURNALS)}/P{index}"
    if kind in ("inproceedings", "proceedings"):
        return f"conf/{rng.choice(_CONFERENCES)}/P{index}"
    return f"phd/P{index}"


def _make_title(rng: random.Random) -> str:
    words = rng.sample(_TITLE_WORDS, rng.randint(3, 6))
    return " ".join(words) + "."


def _make_author(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"


def _emit_publication(
    builder: DocumentBuilder,
    rng: random.Random,
    kind: str,
    key: str,
    year: int,
    force_special_author: bool,
) -> None:
    builder.start_element(kind, [("key", key), ("mdate", f"{year}-06-01")])

    authors: List[str] = [
        _make_author(rng) for _ in range(rng.randint(1, 6))
    ]
    if force_special_author:
        authors[rng.randrange(len(authors))] = SPECIAL_AUTHOR
    if key == SPECIAL_KEY and SPECIAL_AUTHOR not in authors:
        authors[0] = SPECIAL_AUTHOR
    for author in authors:
        builder.start_element("author", [])
        builder.text(author)
        builder.end_element("author")

    builder.start_element("title", [])
    builder.text(_make_title(rng))
    builder.end_element("title")

    if kind == "article":
        _leaf(builder, "journal", rng.choice(_JOURNALS).upper())
        _leaf(builder, "volume", str(rng.randint(1, 40)))
        _leaf(builder, "pages", f"{rng.randint(1, 400)}-{rng.randint(401, 800)}")
    elif kind in ("inproceedings", "proceedings"):
        _leaf(builder, "booktitle", rng.choice(_CONFERENCES).upper())
        _leaf(builder, "pages", f"{rng.randint(1, 400)}-{rng.randint(401, 800)}")
    else:
        _leaf(builder, "school", "Universität Mannheim")

    _leaf(builder, "year", str(year))
    _leaf(builder, "url", f"db/{key}.html")
    builder.end_element(kind)


def _leaf(builder: DocumentBuilder, name: str, text: str) -> None:
    builder.start_element(name, [])
    builder.text(text)
    builder.end_element(name)
