"""A complete, spec-faithful, main-memory XPath 1.0 interpreter.

This is the reproduction's stand-in for Xalan-C/xsltproc: a recursive
evaluator that processes one context node at a time and performs no
memoization and no intermediate duplicate elimination (duplicates are only
removed when a step's result set is assembled, exactly as a textbook
implementation of the spec does).  On paths that multiply contexts —
``descendant::*/ancestor::*/...`` — its running time therefore grows with
the *number of evaluations*, not the number of distinct results, which is
the exponential worst case described by Gottlob et al. [7, 8] and targeted
by the paper's section 4.

The interpreter doubles as the oracle for the differential test suite: it
follows the W3C recommendation directly, with none of the algebraic
machinery involved.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.dom.node import Node
from repro.errors import XPathTypeError
from repro.xpath.axes import iter_axis, make_node_test
from repro.xpath.context import EvalContext
from repro.xpath.datamodel import (
    XPathValue,
    arith,
    compare,
    document_order,
    to_boolean,
    to_number,
)
from repro.xpath.functions import call as call_function
from repro.xpath.parser import parse_xpath
from repro.xpath.xast import (
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    Number,
    PathExpr,
    Predicate,
    Step,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)


class NaiveInterpreter:
    """Evaluates XPath ASTs directly against the document.

    Instances are stateless and reusable across queries and documents.

    ``dedup_between_steps`` controls whether intermediate context lists are
    deduplicated after every location step.  The spec only requires the
    *value* of a node-set expression to be duplicate-free, and classic
    interpreters (the paper's Xalan/xsltproc comparators) carry the
    duplicated intermediate lists along — which is precisely the source of
    their exponential worst case [7, 8].  The default therefore keeps
    duplicates between steps and removes them only where a node-set value
    is produced; the memoizing subclass turns intermediate dedup on.
    """

    name = "naive-interpreter"

    def __init__(self, dedup_between_steps: bool = False):
        self.dedup_between_steps = dedup_between_steps

    def evaluate(self, query: str | Expr, context: EvalContext) -> XPathValue:
        """Evaluate ``query`` (a string or pre-parsed AST) in ``context``."""
        expr = parse_xpath(query) if isinstance(query, str) else query
        return self._eval(expr, context)

    # ------------------------------------------------------------------
    # Expression dispatch
    # ------------------------------------------------------------------

    def _eval(self, expr: Expr, context: EvalContext) -> XPathValue:
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, VariableRef):
            return context.variable(expr.name)
        if isinstance(expr, FunctionCall):
            args = [self._eval(arg, context) for arg in expr.args]
            return call_function(expr.name, context, args)
        if isinstance(expr, UnaryMinus):
            return -to_number(self._eval(expr.operand, context))
        if isinstance(expr, BinaryOp):
            return self._eval_binary(expr, context)
        if isinstance(expr, LocationPath):
            return self._eval_location_path(expr, context)
        if isinstance(expr, PathExpr):
            return self._eval_path_expr(expr, context)
        if isinstance(expr, FilterExpr):
            return self._eval_filter_expr(expr, context)
        if isinstance(expr, UnionExpr):
            return self._eval_union(expr, context)
        raise TypeError(f"cannot evaluate {type(expr).__name__}")

    def _eval_binary(self, expr: BinaryOp, context: EvalContext) -> XPathValue:
        op = expr.op
        if op == "or":
            return to_boolean(self._eval(expr.left, context)) or to_boolean(
                self._eval(expr.right, context)
            )
        if op == "and":
            return to_boolean(self._eval(expr.left, context)) and to_boolean(
                self._eval(expr.right, context)
            )
        left = self._eval(expr.left, context)
        right = self._eval(expr.right, context)
        if op in ("=", "!=", "<", "<=", ">", ">="):
            return compare(op, left, right)
        return arith(op, to_number(left), to_number(right))

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _eval_location_path(
        self, path: LocationPath, context: EvalContext
    ) -> List[Node]:
        start = context.node.root() if path.absolute else context.node
        return _dedup(self._eval_steps(path.steps, [start], context))

    def _eval_path_expr(self, expr: PathExpr, context: EvalContext) -> List[Node]:
        source = self._eval(expr.source, context)
        if not isinstance(source, list):
            raise XPathTypeError(
                "the source of a path expression must be a node-set"
            )
        return _dedup(self._eval_steps(expr.path.steps, source, context))

    def _eval_union(self, expr: UnionExpr, context: EvalContext) -> List[Node]:
        seen: set[Node] = set()
        result: List[Node] = []
        for operand in expr.operands:
            value = self._eval(operand, context)
            if not isinstance(value, list):
                raise XPathTypeError("union operands must be node-sets")
            for node in value:
                if node not in seen:
                    seen.add(node)
                    result.append(node)
        return result

    def _eval_filter_expr(
        self, expr: FilterExpr, context: EvalContext
    ) -> List[Node]:
        value = self._eval(expr.primary, context)
        if not isinstance(value, list):
            raise XPathTypeError("predicates can only filter node-sets")
        # Spec 2.4/3.3: predicates on filter expressions count along the
        # child axis, i.e. in document order.
        nodes = document_order(value)
        for predicate in expr.predicates:
            nodes = self._filter(nodes, predicate, context)
        return nodes

    # ------------------------------------------------------------------
    # Steps and predicates
    # ------------------------------------------------------------------

    def _eval_steps(
        self,
        steps: Iterable[Step],
        context_nodes: List[Node],
        context: EvalContext,
    ) -> List[Node]:
        current = context_nodes
        for step in steps:
            output: List[Node] = []
            for node in current:
                output.extend(self._eval_step(step, node, context))
            if self.dedup_between_steps:
                output = _dedup(output)
            current = output
        return current

    def _eval_step(
        self, step: Step, node: Node, context: EvalContext
    ) -> List[Node]:
        """One location step for one context node, in axis order."""
        test = make_node_test(
            step.test_kind, step.test_name, step.axis, context.namespaces
        )
        candidates = [
            candidate
            for candidate in iter_axis(step.axis, node)
            if test(candidate)
        ]
        for predicate in step.predicates:
            candidates = self._filter(candidates, predicate, context)
        return candidates

    def _filter(
        self,
        candidates: List[Node],
        predicate: Predicate,
        context: EvalContext,
    ) -> List[Node]:
        """Apply one predicate to a candidate list (already in axis order)."""
        size = len(candidates)
        kept: List[Node] = []
        for position, candidate in enumerate(candidates, start=1):
            inner = context.with_node(candidate, position=position, size=size)
            value = self._predicate_value(predicate.expr, inner)
            if value:
                kept.append(candidate)
        return kept

    def _predicate_value(self, expr: Expr, context: EvalContext) -> bool:
        """Spec 2.4: numbers compare against position(), all else boolean."""
        value = self._eval(expr, context)
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return float(value) == float(context.position)
        return to_boolean(value)


def _dedup(nodes: List[Node]) -> List[Node]:
    """Duplicate elimination preserving first-occurrence order."""
    seen: set[Node] = set()
    out: List[Node] = []
    for node in nodes:
        if node not in seen:
            seen.add(node)
            out.append(node)
    return out


def evaluate(
    query: str,
    context_node: Node,
    variables: Optional[dict] = None,
    namespaces: Optional[dict] = None,
) -> XPathValue:
    """One-shot convenience wrapper around :class:`NaiveInterpreter`."""
    from repro.xpath.context import make_context

    interp = NaiveInterpreter()
    return interp.evaluate(query, make_context(context_node, variables, namespaces))
