"""A Gottlob-style memoizing XPath interpreter.

Same semantics as :class:`~repro.baselines.naive.NaiveInterpreter`, plus
the two devices that give polynomial worst-case behaviour [7, 8]:

* intermediate context lists are deduplicated after every location step,
  so the number of contexts a step processes is bounded by the document
  size rather than by the number of evaluation paths that reach it, and
* a *context-value table* caches the value of every context-independent
  sub-expression per ``(expression, context node)`` pair, so predicates
  containing nested paths are evaluated at most once per distinct context
  node — the same effect the paper achieves algebraically with the MemoX
  operator (section 4.2.2).

Expressions whose value depends on ``position()`` or ``last()`` are not
cached (their context is more than the node).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.baselines.naive import NaiveInterpreter
from repro.xpath.context import EvalContext
from repro.xpath.datamodel import XPathValue
from repro.xpath.xast import (
    Expr,
    FunctionCall,
    LocationPath,
    PathExpr,
    iter_child_exprs,
)


def _uses_position_or_last(expr: Expr, cache: Dict[int, bool]) -> bool:
    """Whether ``expr``'s value depends on context position/size.

    Nested predicates introduce their own position context, but a call in
    a nested predicate still makes the *outer* value context-node-dependent
    only — so recursion does not descend into predicate expressions of
    location paths (their position context is local).  For simplicity and
    safety this check is conservative: it looks at the whole subtree.
    """
    key = id(expr)
    if key in cache:
        return cache[key]
    result = isinstance(expr, FunctionCall) and expr.name in ("position", "last")
    if not result:
        result = any(
            _uses_position_or_last(child, cache)
            for child in iter_child_exprs(expr)
        )
    cache[key] = result
    return result


class MemoInterpreter(NaiveInterpreter):
    """Polynomial-time interpreter with a context-value table.

    The cache lives per instance; create a fresh instance (or call
    :meth:`clear_cache`) when the document changes.
    """

    name = "memo-interpreter"

    def __init__(self):
        super().__init__(dedup_between_steps=True)
        self._table: Dict[Tuple[int, object], XPathValue] = {}
        self._positional: Dict[int, bool] = {}
        self.hits = 0
        self.misses = 0

    def clear_cache(self) -> None:
        self._table.clear()
        self._positional.clear()
        self.hits = 0
        self.misses = 0

    def evaluate(self, query, context: EvalContext) -> XPathValue:
        # The table is keyed by AST object identity, so it must not
        # outlive the AST: memoization is per top-level evaluation, as in
        # Gottlob et al.'s context-value tables.
        self._table.clear()
        self._positional.clear()
        return super().evaluate(query, context)

    def _eval(self, expr: Expr, context: EvalContext) -> XPathValue:
        # Only node-set-producing composites are worth caching; scalars
        # are cheap to recompute and literals are free.
        if not isinstance(expr, (LocationPath, PathExpr, FunctionCall)):
            return super()._eval(expr, context)
        if _uses_position_or_last(expr, self._positional):
            return super()._eval(expr, context)
        key = (id(expr), context.node)
        if key in self._table:
            self.hits += 1
            return self._table[key]
        self.misses += 1
        value = super()._eval(expr, context)
        self._table[key] = value
        return value
