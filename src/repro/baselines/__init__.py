"""Baseline XPath evaluators.

The paper compares its algebraic engine against main-memory XPath
interpreters (Xalan-C and xsltproc).  Those C/C++ codebases are not
available here, so this package provides spec-faithful Python stand-ins
that preserve the relevant architectural axis of comparison:

* :class:`~repro.baselines.naive.NaiveInterpreter` — a direct recursive
  interpreter, context node at a time, no memoization.  It exhibits the
  exponential worst case of Gottlob et al. that the paper's section 4 is
  designed to avoid.
* :class:`~repro.baselines.memo.MemoInterpreter` — the same interpreter
  with a context-value table (Gottlob-style memoization), giving
  polynomial worst-case behaviour.

Both also serve as oracles in the differential test suite.
"""

from repro.baselines.naive import NaiveInterpreter
from repro.baselines.memo import MemoInterpreter

__all__ = ["NaiveInterpreter", "MemoInterpreter"]
