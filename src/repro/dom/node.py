"""The XPath 1.0 node model.

XPath defines seven node kinds (root, element, attribute, text, comment,
processing instruction, namespace) arranged in a tree with a *total
document order*.  This module implements the in-memory variant; the
page-backed storage layer (:mod:`repro.storage.nodes`) implements the same
protocol so that axis navigation and the physical algebra work unchanged on
either representation.

Document order
--------------
Every node carries a ``sort_key`` — a ``(rank, cls, idx)`` triple that
totally orders the nodes of one document:

* root/element/text/comment/PI nodes receive consecutive pre-order ``rank``
  integers with ``cls = 0``;
* the namespace nodes of an element share the element's rank with
  ``cls = 1`` and are ordered by ``idx``;
* the attributes of an element share the element's rank with ``cls = 2``
  and are ordered by declaration ``idx``.

This matches the XPath requirement that an element precedes its namespace
nodes, which precede its attribute nodes, which precede its children.

Node identity
-------------
Two node objects are *the same node* iff they live in the same document and
have the same sort key.  ``__eq__``/``__hash__`` implement exactly that, so
nodes can be placed in sets for duplicate elimination even when the storage
layer hands out fresh proxy objects for each access.
"""

from __future__ import annotations

from enum import IntEnum
from typing import TYPE_CHECKING, Iterator, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.dom.document import Document

SortKey = Tuple[int, int, int]


class NodeKind(IntEnum):
    """The seven node kinds of the XPath 1.0 data model."""

    ROOT = 0
    ELEMENT = 1
    ATTRIBUTE = 2
    TEXT = 3
    COMMENT = 4
    PROCESSING_INSTRUCTION = 5
    NAMESPACE = 6


class Node:
    """A single node of an XML document.

    Instances are created through :class:`~repro.dom.builder.DocumentBuilder`
    or the parser — never directly — because document order ranks must be
    assigned consistently for a whole document.
    """

    __slots__ = (
        "kind",
        "name",
        "value",
        "parent",
        "document",
        "sort_key",
        "_children",
        "_attributes",
        "_ns_decls",
        "__weakref__",
    )

    def __init__(
        self,
        kind: NodeKind,
        name: Optional[str] = None,
        value: Optional[str] = None,
    ):
        self.kind = kind
        #: Element tag name, attribute name or PI target (``None`` otherwise).
        self.name = name
        #: Attribute value, text data, comment data or PI data.
        self.value = value
        self.parent: Optional[Node] = None
        self.document: Optional["Document"] = None
        self.sort_key: SortKey = (0, 0, 0)
        self._children: list[Node] = []
        self._attributes: list[Node] = []
        #: Namespace declarations made *on this element*: prefix -> uri,
        #: with the default namespace stored under the empty string.
        self._ns_decls: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Identity and ordering
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return self.document is other.document and self.sort_key == other.sort_key

    def __hash__(self) -> int:
        return hash((id(self.document), self.sort_key))

    def __lt__(self, other: "Node") -> bool:
        """Document-order comparison (only meaningful within one document)."""
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name if self.name is not None else self.kind.name.lower()
        return f"<Node {self.kind.name} {label!r} @{self.sort_key}>"

    # ------------------------------------------------------------------
    # Structure accessors (the shared node protocol)
    # ------------------------------------------------------------------

    @property
    def children(self) -> Sequence["Node"]:
        """Child nodes in document order (empty for leaf kinds)."""
        return self._children

    @property
    def attributes(self) -> Sequence["Node"]:
        """Attribute nodes in declaration order (elements only)."""
        return self._attributes

    @property
    def namespace_declarations(self) -> dict[str, str]:
        """Namespace declarations written on this element."""
        return self._ns_decls

    def child_index(self) -> int:
        """Position of this node within ``parent.children`` (O(1) via rank).

        Falls back to a linear scan for attribute nodes, which are not part
        of ``children``.
        """
        if self.parent is None:
            raise ValueError("root node has no child index")
        siblings = self.parent.children
        lo, hi = 0, len(siblings) - 1
        # Children are stored in document order, so binary search by key.
        while lo <= hi:
            mid = (lo + hi) // 2
            key = siblings[mid].sort_key
            if key == self.sort_key:
                return mid
            if key < self.sort_key:
                lo = mid + 1
            else:
                hi = mid - 1
        raise ValueError("node is not among its parent's children")

    # ------------------------------------------------------------------
    # XPath string-value (spec section 5)
    # ------------------------------------------------------------------

    def string_value(self) -> str:
        """The XPath string-value of this node."""
        kind = self.kind
        if kind in (NodeKind.TEXT, NodeKind.COMMENT, NodeKind.PROCESSING_INSTRUCTION):
            return self.value or ""
        if kind in (NodeKind.ATTRIBUTE, NodeKind.NAMESPACE):
            return self.value or ""
        # Root and element: concatenation of all descendant text nodes.
        # Access goes through the ``children`` property so that lazy
        # storage proxies load their structure on demand.
        parts: list[str] = []
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            if node.kind == NodeKind.TEXT:
                parts.append(node.value or "")
            elif node.kind == NodeKind.ELEMENT:
                stack.extend(reversed(node.children))
        return "".join(parts)

    # ------------------------------------------------------------------
    # Names (spec section 2.3: expanded names)
    # ------------------------------------------------------------------

    @property
    def prefix(self) -> str:
        """Namespace prefix of the node name (empty string if none)."""
        if self.name and ":" in self.name:
            return self.name.split(":", 1)[0]
        return ""

    @property
    def local_name(self) -> str:
        """Local part of the node name (empty string for unnamed kinds)."""
        if self.name is None:
            return ""
        if ":" in self.name:
            return self.name.split(":", 1)[1]
        return self.name

    def namespace_uri(self) -> str:
        """Namespace URI of this node's expanded name.

        Elements with no prefix take the in-scope default namespace;
        attributes with no prefix are in no namespace (XML Namespaces 1.0).
        """
        if self.kind == NodeKind.ELEMENT:
            return self.lookup_namespace(self.prefix)
        if self.kind == NodeKind.ATTRIBUTE:
            if not self.prefix:
                return ""
            owner = self.parent
            return owner.lookup_namespace(self.prefix) if owner else ""
        return ""

    def lookup_namespace(self, prefix: str) -> str:
        """Resolve ``prefix`` against the in-scope declarations at this node.

        The reserved ``xml`` prefix is always bound.  Returns the empty
        string for undeclared prefixes.
        """
        if prefix == "xml":
            return "http://www.w3.org/XML/1998/namespace"
        node: Optional[Node] = self
        while node is not None:
            if prefix in node._ns_decls:
                return node._ns_decls[prefix]
            node = node.parent
        return ""

    def in_scope_namespaces(self) -> dict[str, str]:
        """All namespace bindings in scope at this element.

        Per XML Namespaces, an inner ``xmlns=""`` undeclares the default
        namespace; such bindings are removed from the result.
        """
        bindings: dict[str, str] = {}
        chain: list[Node] = []
        node: Optional[Node] = self
        while node is not None:
            chain.append(node)
            node = node.parent
        for ancestor in reversed(chain):
            bindings.update(ancestor._ns_decls)
        bindings["xml"] = "http://www.w3.org/XML/1998/namespace"
        return {p: u for p, u in bindings.items() if u}

    # ------------------------------------------------------------------
    # Tree traversal helpers used by the axis implementations
    # ------------------------------------------------------------------

    def root(self) -> "Node":
        """The root node of the document containing this node."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def iter_descendants(self) -> Iterator["Node"]:
        """Descendant tree nodes in document order (no attributes)."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            if node.kind == NodeKind.ELEMENT:
                stack.extend(reversed(node.children))

    def iter_following_siblings(self) -> Iterator["Node"]:
        """Siblings after this node, in document order."""
        if self.parent is None or self.kind in (
            NodeKind.ATTRIBUTE,
            NodeKind.NAMESPACE,
        ):
            return
        siblings = self.parent.children
        for i in range(self.child_index() + 1, len(siblings)):
            yield siblings[i]

    def iter_preceding_siblings(self) -> Iterator["Node"]:
        """Siblings before this node, in *reverse* document order."""
        if self.parent is None or self.kind in (
            NodeKind.ATTRIBUTE,
            NodeKind.NAMESPACE,
        ):
            return
        siblings = self.parent.children
        for i in range(self.child_index() - 1, -1, -1):
            yield siblings[i]

    def is_tree_node(self) -> bool:
        """True for nodes that take part in sibling/descendant structure."""
        return self.kind not in (NodeKind.ATTRIBUTE, NodeKind.NAMESPACE)
