"""In-memory XML document model with XPath 1.0 semantics.

This package provides the node protocol shared by the in-memory DOM and
the page-backed storage proxies (:mod:`repro.storage`):

* :class:`~repro.dom.node.Node` and :class:`~repro.dom.node.NodeKind` —
  the seven XPath node kinds with total document order,
* :class:`~repro.dom.document.Document` — a parsed document,
* :class:`~repro.dom.builder.DocumentBuilder` — programmatic construction,
* :func:`~repro.dom.parser.parse` — a from-scratch XML 1.0 parser,
* :func:`~repro.dom.serializer.serialize` — the inverse of the parser.
"""

from repro.dom.node import Node, NodeKind
from repro.dom.document import Document
from repro.dom.builder import DocumentBuilder
from repro.dom.parser import parse, parse_file
from repro.dom.serializer import serialize

__all__ = [
    "Node",
    "NodeKind",
    "Document",
    "DocumentBuilder",
    "parse",
    "parse_file",
    "serialize",
]
