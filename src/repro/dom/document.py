"""Document objects: the root of a parsed XML tree plus document services.

A :class:`Document` owns the root node, assigns document order ranks, and
maintains the ID map used by the XPath ``id()`` function.  Natix stores
documents without a DTD, so which attributes are IDs is a per-document
policy; by convention (and matching the paper's generated documents, whose
elements all carry a consecutively numbered ``id`` attribute) attributes
named ``id`` are treated as IDs unless the caller overrides
``id_attributes``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.dom.node import Node, NodeKind

#: Attribute names treated as ID-typed by default.
DEFAULT_ID_ATTRIBUTES = frozenset({"id", "xml:id"})


class Document:
    """A complete XML document with total document order and an ID map."""

    def __init__(
        self,
        root: Node,
        id_attributes: Optional[Iterable[str]] = None,
        uri: Optional[str] = None,
    ):
        if root.kind != NodeKind.ROOT:
            raise ValueError("Document requires a ROOT node")
        self.root = root
        self.uri = uri
        self.id_attributes = frozenset(
            DEFAULT_ID_ATTRIBUTES if id_attributes is None else id_attributes
        )
        self._id_map: dict[str, Node] = {}
        self._node_count = 0
        #: True when any element declares a namespace.  Name tests take a
        #: fast path (plain string comparison) when this is False, which
        #: avoids an O(depth) in-scope lookup per candidate node.
        self.has_namespace_declarations = False
        self._finalize()

    # ------------------------------------------------------------------

    def _finalize(self) -> None:
        """Assign sort keys, back-pointers and build the ID map.

        Runs a single pre-order pass; see :mod:`repro.dom.node` for the
        sort key scheme.
        """
        rank = 0
        id_map = self._id_map
        id_names = self.id_attributes
        stack: list[Node] = [self.root]
        while stack:
            node = stack.pop()
            node.document = self
            node.sort_key = (rank, 0, 0)
            if node._ns_decls:
                self.has_namespace_declarations = True
            if node.kind == NodeKind.ELEMENT:
                for idx, attr in enumerate(node.attributes):
                    attr.document = self
                    attr.parent = node
                    attr.sort_key = (rank, 2, idx)
                    if attr.name in id_names and attr.value is not None:
                        # First declaration wins, as in XML validity.
                        id_map.setdefault(attr.value, node)
            rank += 1
            children = node.children
            for child in children:
                child.parent = node
            stack.extend(reversed(children))
        self._node_count = rank

    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of tree nodes (root/element/text/comment/PI)."""
        return self._node_count

    def element_count(self) -> int:
        """Number of element nodes (computed on demand)."""
        return sum(
            1 for n in self.iter_nodes() if n.kind == NodeKind.ELEMENT
        )

    def get_element_by_id(self, value: str) -> Optional[Node]:
        """The element carrying an ID-typed attribute with ``value``."""
        return self._id_map.get(value)

    def iter_nodes(self) -> Iterator[Node]:
        """All tree nodes in document order, starting at the root."""
        yield self.root
        yield from self.root.iter_descendants()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        top = self.root.children[0].name if self.root.children else "?"
        return f"<Document root=<{top}> nodes={self._node_count}>"
