"""Serialization of documents back to XML text.

The serializer is the inverse of :mod:`repro.dom.parser` up to the usual
canonicalization caveats (attribute quoting, entity choices).  It is used
for round-trip property tests and for persisting generated workloads.
"""

from __future__ import annotations

from typing import Iterable

from repro.dom.document import Document
from repro.dom.node import Node, NodeKind


def escape_text(data: str) -> str:
    """Escape character data for element content."""
    return (
        data.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def escape_attribute(data: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (
        data.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\t", "&#9;")
        .replace("\n", "&#10;")
        .replace("\r", "&#13;")
    )


def _serialize_node(node: Node, out: list[str]) -> None:
    # An explicit work stack keeps arbitrarily deep documents off the
    # Python call stack; string entries are pending end tags.
    stack: list[Node | str] = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            out.append(item)
            continue
        kind = item.kind
        if kind == NodeKind.TEXT:
            out.append(escape_text(item.value or ""))
        elif kind == NodeKind.COMMENT:
            out.append(f"<!--{item.value or ''}-->")
        elif kind == NodeKind.PROCESSING_INSTRUCTION:
            data = item.value or ""
            out.append(
                f"<?{item.name} {data}?>" if data else f"<?{item.name}?>"
            )
        elif kind == NodeKind.ELEMENT:
            out.append(f"<{item.name}")
            for prefix, uri in sorted(item.namespace_declarations.items()):
                decl = f"xmlns:{prefix}" if prefix else "xmlns"
                out.append(f' {decl}="{escape_attribute(uri)}"')
            for attr in item.attributes:
                out.append(
                    f' {attr.name}="{escape_attribute(attr.value or "")}"'
                )
            children = item.children
            if not children:
                out.append("/>")
            else:
                out.append(">")
                stack.append(f"</{item.name}>")
                stack.extend(reversed(children))
        else:  # pragma: no cover - ROOT handled by serialize()
            raise ValueError(f"cannot serialize node kind {kind}")


def serialize(document_or_node: Document | Node, xml_declaration: bool = False) -> str:
    """Serialize a document (or a subtree rooted at a node) to a string."""
    out: list[str] = []
    if xml_declaration:
        out.append('<?xml version="1.0" encoding="UTF-8"?>')
    if isinstance(document_or_node, Document):
        children: Iterable[Node] = document_or_node.root.children
    elif document_or_node.kind == NodeKind.ROOT:
        children = document_or_node.children
    else:
        children = [document_or_node]
    for child in children:
        _serialize_node(child, out)
    return "".join(out)
