"""Programmatic document construction.

:class:`DocumentBuilder` offers a push API (``start_element`` /
``end_element`` / ``text`` / ...) used by the XML parser, the workload
generators and tests alike.  The builder validates well-formedness-level
invariants (single document element, balanced starts/ends) and produces a
finished :class:`~repro.dom.document.Document`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Tuple

from repro.dom.document import Document
from repro.dom.node import Node, NodeKind
from repro.errors import XMLSyntaxError


class DocumentBuilder:
    """Incrementally builds a document in a single pre-order pass."""

    def __init__(self, id_attributes: Optional[Iterable[str]] = None):
        self._root = Node(NodeKind.ROOT)
        self._stack: list[Node] = [self._root]
        self._id_attributes = id_attributes
        self._finished: Optional[Document] = None

    # ------------------------------------------------------------------

    def start_element(
        self,
        name: str,
        attributes: Sequence[Tuple[str, str]] | Mapping[str, str] = (),
    ) -> Node:
        """Open an element; ``attributes`` preserve declaration order."""
        self._check_open()
        if len(self._stack) == 1 and any(
            c.kind == NodeKind.ELEMENT for c in self._root.children
        ):
            raise XMLSyntaxError("document may have only one document element")
        element = Node(NodeKind.ELEMENT, name=name)
        if isinstance(attributes, Mapping):
            attributes = list(attributes.items())
        seen: set[str] = set()
        for attr_name, attr_value in attributes:
            if attr_name in seen:
                raise XMLSyntaxError(
                    f"duplicate attribute {attr_name!r} on <{name}>"
                )
            seen.add(attr_name)
            if attr_name == "xmlns":
                element.namespace_declarations[""] = attr_value
            elif attr_name.startswith("xmlns:"):
                element.namespace_declarations[attr_name[6:]] = attr_value
            else:
                attr = Node(NodeKind.ATTRIBUTE, name=attr_name, value=attr_value)
                element._attributes.append(attr)
        self._stack[-1]._children.append(element)
        self._stack.append(element)
        return element

    def end_element(self, name: Optional[str] = None) -> None:
        """Close the innermost open element, checking the tag name if given."""
        self._check_open()
        if len(self._stack) == 1:
            raise XMLSyntaxError("end_element with no open element")
        top = self._stack.pop()
        if name is not None and top.name != name:
            raise XMLSyntaxError(
                f"mismatched end tag </{name}>, open element is <{top.name}>"
            )

    def text(self, data: str) -> None:
        """Append character data, merging adjacent text nodes."""
        self._check_open()
        if not data:
            return
        parent = self._stack[-1]
        if parent.kind == NodeKind.ROOT and not data.strip():
            # Whitespace outside the document element is not a text node.
            return
        children = parent._children
        if children and children[-1].kind == NodeKind.TEXT:
            children[-1].value = (children[-1].value or "") + data
        else:
            children.append(Node(NodeKind.TEXT, value=data))

    def comment(self, data: str) -> None:
        self._check_open()
        self._stack[-1]._children.append(Node(NodeKind.COMMENT, value=data))

    def processing_instruction(self, target: str, data: str = "") -> None:
        self._check_open()
        self._stack[-1]._children.append(
            Node(NodeKind.PROCESSING_INSTRUCTION, name=target, value=data)
        )

    # ------------------------------------------------------------------

    def finish(self, uri: Optional[str] = None) -> Document:
        """Finalize and return the document (idempotent)."""
        if self._finished is not None:
            return self._finished
        if len(self._stack) != 1:
            open_name = self._stack[-1].name
            raise XMLSyntaxError(f"unclosed element <{open_name}>")
        if not any(c.kind == NodeKind.ELEMENT for c in self._root.children):
            raise XMLSyntaxError("document has no document element")
        self._finished = Document(
            self._root, id_attributes=self._id_attributes, uri=uri
        )
        return self._finished

    def _check_open(self) -> None:
        if self._finished is not None:
            raise XMLSyntaxError("builder already finished")


def build_element_tree(spec, id_attributes=None) -> Document:
    """Build a document from a nested tuple spec — a test convenience.

    ``spec`` is ``(name, attrs_dict, [children...])`` where children are
    specs or plain strings (text nodes)::

        build_element_tree(("a", {"id": "1"}, ["hello", ("b", {}, [])]))
    """
    builder = DocumentBuilder(id_attributes=id_attributes)

    def emit(node_spec) -> None:
        if isinstance(node_spec, str):
            builder.text(node_spec)
            return
        name, attrs, children = node_spec
        builder.start_element(name, list(attrs.items()))
        for child in children:
            emit(child)
        builder.end_element(name)

    emit(spec)
    return builder.finish()
