"""A from-scratch, non-validating XML 1.0 parser.

Natix loads documents into its page store without requiring a DTD; this
parser mirrors that behaviour: it accepts any well-formed document,
resolves the five predefined entities and character references, handles
CDATA sections, comments and processing instructions, and skips over a
DOCTYPE declaration (including an internal subset) without interpreting it.

The parser is a single-pass scanner over the input string feeding a
:class:`~repro.dom.builder.DocumentBuilder`; no third-party XML machinery
is used anywhere in the reproduction.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.dom.builder import DocumentBuilder
from repro.dom.document import Document
from repro.errors import XMLSyntaxError

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = "_:"
_NAME_EXTRA = "_:.-·"


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Scanner:
    """Cursor over the document text with line/column tracking."""

    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def location(self, pos: Optional[int] = None) -> tuple[int, int]:
        """1-based (line, column) of ``pos`` (default: current position)."""
        if pos is None:
            pos = self.pos
        prefix = self.text[:pos]
        line = prefix.count("\n") + 1
        column = pos - (prefix.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str, pos: Optional[int] = None) -> XMLSyntaxError:
        line, column = self.location(pos)
        return XMLSyntaxError(message, line=line, column=column)

    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_whitespace(self) -> int:
        start = self.pos
        text, length = self.text, self.length
        while self.pos < length and text[self.pos] in " \t\r\n":
            self.pos += 1
        return self.pos - start

    def read_until(self, token: str, what: str) -> str:
        """Consume text up to and including ``token``; return the text."""
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        data = self.text[self.pos : end]
        self.pos = end + len(token)
        return data

    def read_name(self) -> str:
        start = self.pos
        if self.at_end() or not _is_name_start(self.text[self.pos]):
            raise self.error("expected a name")
        self.pos += 1
        text, length = self.text, self.length
        while self.pos < length and _is_name_char(text[self.pos]):
            self.pos += 1
        return text[start : self.pos]


def _decode_references(raw: str, scanner: _Scanner, at: int) -> str:
    """Replace entity and character references in ``raw``."""
    if "&" not in raw:
        return raw
    parts: list[str] = []
    i = 0
    n = len(raw)
    while i < n:
        amp = raw.find("&", i)
        if amp < 0:
            parts.append(raw[i:])
            break
        parts.append(raw[i:amp])
        semi = raw.find(";", amp + 1)
        if semi < 0:
            raise scanner.error("unterminated entity reference", pos=at + amp)
        entity = raw[amp + 1 : semi]
        if entity.startswith("#x") or entity.startswith("#X"):
            try:
                parts.append(chr(int(entity[2:], 16)))
            except ValueError:
                raise scanner.error(
                    f"bad character reference &{entity};", pos=at + amp
                ) from None
        elif entity.startswith("#"):
            try:
                parts.append(chr(int(entity[1:], 10)))
            except ValueError:
                raise scanner.error(
                    f"bad character reference &{entity};", pos=at + amp
                ) from None
        elif entity in _PREDEFINED_ENTITIES:
            parts.append(_PREDEFINED_ENTITIES[entity])
        else:
            raise scanner.error(
                f"unknown entity &{entity};", pos=at + amp
            )
        i = semi + 1
    return "".join(parts)


def _parse_attribute_value(scanner: _Scanner) -> str:
    quote = scanner.peek()
    if quote not in "\"'":
        raise scanner.error("attribute value must be quoted")
    scanner.pos += 1
    at = scanner.pos
    raw = scanner.read_until(quote, "attribute value")
    if "<" in raw:
        raise scanner.error("'<' not allowed in attribute value", pos=at)
    value = _decode_references(raw, scanner, at)
    # Attribute-value normalization: whitespace becomes a single space char.
    return value.replace("\t", " ").replace("\n", " ").replace("\r", " ")


def _parse_doctype(scanner: _Scanner) -> None:
    """Skip a DOCTYPE declaration, including a bracketed internal subset."""
    scanner.expect("<!DOCTYPE")
    depth = 0
    while not scanner.at_end():
        ch = scanner.text[scanner.pos]
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth < 0:
                raise scanner.error("unbalanced ']' in DOCTYPE")
        elif ch == ">" and depth == 0:
            scanner.pos += 1
            return
        elif ch in "\"'":
            scanner.pos += 1
            scanner.read_until(ch, "DOCTYPE literal")
            continue
        scanner.pos += 1
    raise scanner.error("unterminated DOCTYPE")


def _parse_misc(scanner: _Scanner, builder: DocumentBuilder) -> bool:
    """Parse one comment/PI at the cursor.  Returns False if none matched."""
    if scanner.startswith("<!--"):
        scanner.pos += 4
        data = scanner.read_until("-->", "comment")
        if "--" in data:
            raise scanner.error("'--' not allowed inside a comment")
        builder.comment(data)
        return True
    if scanner.startswith("<?"):
        scanner.pos += 2
        target = scanner.read_name()
        if target.lower() == "xml":
            raise scanner.error("XML declaration only allowed at document start")
        scanner.skip_whitespace()
        data = scanner.read_until("?>", "processing instruction")
        builder.processing_instruction(target, data)
        return True
    return False


def parse(
    text: str,
    id_attributes: Optional[Iterable[str]] = None,
    uri: Optional[str] = None,
) -> Document:
    """Parse an XML document from a string.

    ``id_attributes`` configures which attribute names are ID-typed (used
    by XPath's ``id()``); the default treats ``id`` and ``xml:id`` as IDs.
    """
    scanner = _Scanner(text)
    builder = DocumentBuilder(id_attributes=id_attributes)

    # --- prolog ------------------------------------------------------
    if scanner.startswith("﻿"):
        scanner.pos += 1
    if scanner.startswith("<?xml"):
        scanner.pos += 5
        scanner.read_until("?>", "XML declaration")
    while True:
        scanner.skip_whitespace()
        if scanner.startswith("<!DOCTYPE"):
            _parse_doctype(scanner)
        elif _parse_misc(scanner, builder):
            pass
        else:
            break

    # --- document element --------------------------------------------
    if not scanner.startswith("<"):
        raise scanner.error("expected document element")
    try:
        _parse_element_content(scanner, builder)
    except XMLSyntaxError as error:
        if error.line == 0:
            # Builder-level errors (tag mismatches, duplicate attributes)
            # carry no location; attach the scanner's.
            raise scanner.error(str(error).split(" (line")[0]) from None
        raise

    # --- trailing misc -------------------------------------------------
    while True:
        scanner.skip_whitespace()
        if scanner.at_end():
            break
        if not _parse_misc(scanner, builder):
            raise scanner.error("content after document element")

    return builder.finish(uri=uri)


def _parse_element_content(scanner: _Scanner, builder: DocumentBuilder) -> None:
    """Parse one element (start tag, content, end tag) at the cursor."""
    # depth counts elements opened here; we loop instead of recursing so
    # that deeply nested documents do not overflow the Python stack.
    depth = 0
    text = scanner.text
    while True:
        if scanner.startswith("<"):
            if scanner.startswith("</"):
                scanner.pos += 2
                name = scanner.read_name()
                scanner.skip_whitespace()
                scanner.expect(">")
                builder.end_element(name)
                depth -= 1
                if depth == 0:
                    return
            elif scanner.startswith("<!--") or scanner.startswith("<?"):
                if not _parse_misc(scanner, builder):
                    raise scanner.error("malformed markup")
            elif scanner.startswith("<![CDATA["):
                scanner.pos += 9
                builder.text(scanner.read_until("]]>", "CDATA section"))
            elif scanner.startswith("<!"):
                raise scanner.error("unexpected declaration in content")
            else:
                scanner.pos += 1
                name = scanner.read_name()
                attributes: list[tuple[str, str]] = []
                while True:
                    had_space = scanner.skip_whitespace()
                    ch = scanner.peek()
                    if ch == ">" or scanner.startswith("/>") or not ch:
                        break
                    if not had_space:
                        raise scanner.error("expected whitespace before attribute")
                    attr_name = scanner.read_name()
                    scanner.skip_whitespace()
                    scanner.expect("=")
                    scanner.skip_whitespace()
                    attributes.append((attr_name, _parse_attribute_value(scanner)))
                builder.start_element(name, attributes)
                if scanner.startswith("/>"):
                    scanner.pos += 2
                    builder.end_element(name)
                    if depth == 0:
                        return
                else:
                    scanner.expect(">")
                    depth += 1
        else:
            if scanner.at_end():
                raise scanner.error("unexpected end of input inside element")
            end = text.find("<", scanner.pos)
            if end < 0:
                end = scanner.length
            at = scanner.pos
            raw = text[scanner.pos : end]
            scanner.pos = end
            if "]]>" in raw:
                raise scanner.error("']]>' not allowed in character data")
            builder.text(_decode_references(raw, scanner, at))


def parse_file(
    path, id_attributes: Optional[Iterable[str]] = None
) -> Document:
    """Parse an XML document from a file path."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse(handle.read(), id_attributes=id_attributes, uri=str(path))
