"""Collection catalogs: many stored documents behind one namespace.

A *collection* is a directory holding one shard store per member
document plus a single JSON catalog file (:data:`CATALOG_NAME`) that
names them::

    mycoll/
        collection.json      <- catalog: shard order, fingerprints
        shard-0000.natix     <- ordinary DocumentStore page files
        shard-0001.natix
        ...

Shards are ordinary :class:`~repro.storage.DocumentStore` page files —
anything that can open a stored document can open a shard — and the
catalog pins their *order*: shard ids are dense ranks ``0..n-1`` and the
collection's global document order is ``(shard id, pre-order rank)``.
The catalog also records each shard's structural fingerprint, so a
shard file swapped or rebuilt underneath the catalog is detected at
open time, and the collection-level :func:`collection_fingerprint`
derived from them keys plan caches and request coalescing (two
collections never share compiled plans, even when their shards happen
to hold identical documents — see ``docs/collection.md``).

:func:`split_document` turns one document into per-subtree shard
documents (partitioning the root element's children), which is how the
differential oracle's ``collection`` route and the CLI's ``--shards``
build sharded corpora from single-document inputs.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.dom.document import Document
from repro.dom.node import NodeKind
from repro.dom.parser import parse as parse_xml
from repro.dom.serializer import escape_attribute, serialize
from repro.errors import CollectionError
from repro.index.synopsis import PathSynopsis
from repro.storage import DocumentStore

#: The catalog file inside a collection directory.
CATALOG_NAME = "collection.json"

#: Catalog format version (bumped on incompatible layout changes).
CATALOG_VERSION = 1

#: Shard store file name pattern.
SHARD_PATTERN = "shard-{shard:04d}.natix"


@dataclass(frozen=True)
class ShardInfo:
    """One catalog row: a shard's id, file and structural identity.

    ``synopsis`` mirrors the shard store's DataGuide path synopsis into
    the parent catalog (when the store carries fresh indexes), which is
    what lets the collection layer answer "can this shard match at
    all?" at scatter time without opening any shard file — see
    :mod:`repro.collection.pruning`.  It is identity-neutral: two
    catalogs differing only in mirrored synopses compare equal and
    fingerprint identically.
    """

    shard: int
    path: str  #: file name relative to the collection directory
    fingerprint: str  #: hex structural fingerprint of the store
    node_count: int
    synopsis: Optional[PathSynopsis] = field(
        default=None, compare=False, repr=False
    )

    def to_json(self) -> dict:
        row = {
            "shard": self.shard,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "node_count": self.node_count,
        }
        if self.synopsis is not None:
            row["synopsis"] = self.synopsis.to_rows()
        return row


@dataclass(frozen=True)
class CollectionCatalog:
    """The parsed catalog of one collection directory."""

    directory: Path
    name: str
    shards: Sequence[ShardInfo]

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_path(self, shard: int) -> Path:
        return self.directory / self.shards[shard].path

    def fingerprint(self) -> str:
        """The collection-level fingerprint (hex digest).

        Derived from the catalog identity *and* every shard's
        structural fingerprint in shard order, so it changes when any
        shard changes, when shards are reordered, and between two
        catalogs that merely contain byte-identical documents (the
        directory path salts the digest).  Plan caches and singleflight
        coalescing key on this value.
        """
        digest = hashlib.sha256()
        digest.update(str(self.directory.resolve()).encode())
        digest.update(self.name.encode())
        for info in self.shards:
            digest.update(
                f"{info.shard}:{info.fingerprint}:{info.node_count}".encode()
            )
        return digest.hexdigest()


def write_catalog(catalog: CollectionCatalog) -> Path:
    path = catalog.directory / CATALOG_NAME
    payload = {
        "version": CATALOG_VERSION,
        "name": catalog.name,
        "shards": [info.to_json() for info in catalog.shards],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_catalog(directory: Union[str, os.PathLike]) -> CollectionCatalog:
    """Load and validate the catalog of a collection directory.

    Validation covers the catalog format, dense shard ids, shard file
    existence, and each shard's structural fingerprint against the
    actual store file — a shard rebuilt or replaced underneath the
    catalog raises :class:`~repro.errors.CollectionError` instead of
    silently serving different data than the catalog promises.
    """
    directory = Path(directory)
    path = directory / CATALOG_NAME
    if not path.is_file():
        raise CollectionError(f"no collection catalog at {path}")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise CollectionError(
            f"cannot read collection catalog {path}: {error}"
        ) from error
    if payload.get("version") != CATALOG_VERSION:
        raise CollectionError(
            f"unsupported catalog version {payload.get('version')!r} "
            f"in {path}"
        )
    shards: List[ShardInfo] = []
    for row in payload.get("shards", []):
        synopsis = None
        if row.get("synopsis") is not None:
            try:
                synopsis = PathSynopsis.from_rows(row["synopsis"])
            except (TypeError, ValueError, IndexError):
                synopsis = None  # malformed mirror: no pruning evidence
        shards.append(
            ShardInfo(
                shard=int(row["shard"]),
                path=str(row["path"]),
                fingerprint=str(row["fingerprint"]),
                node_count=int(row["node_count"]),
                synopsis=synopsis,
            )
        )
    if not shards:
        raise CollectionError(f"collection catalog {path} lists no shards")
    shards.sort(key=lambda info: info.shard)
    if [info.shard for info in shards] != list(range(len(shards))):
        raise CollectionError(
            f"collection catalog {path} has non-dense shard ids"
        )
    catalog = CollectionCatalog(
        directory=directory,
        name=str(payload.get("name", directory.name)),
        shards=tuple(shards),
    )
    validated: List[ShardInfo] = []
    for info in catalog.shards:
        shard_path = catalog.shard_path(info.shard)
        if not shard_path.is_file():
            raise CollectionError(
                f"collection shard file missing: {shard_path}"
            )
        with DocumentStore.open(shard_path, buffer_pages=8) as stored:
            actual = stored.fingerprint.hex()
            if actual != info.fingerprint:
                raise CollectionError(
                    f"shard {info.shard} ({shard_path}) does not match "
                    f"the catalog fingerprint (catalog "
                    f"{info.fingerprint[:12]}…, file {actual[:12]}…); "
                    "re-create the collection"
                )
            if info.synopsis is None and stored.index_status == "fresh":
                # Catalogs written before the synopsis mirror existed:
                # lift the synopsis out of the store we just opened
                # anyway, so pruning works without re-creating them.
                info = ShardInfo(
                    shard=info.shard,
                    path=info.path,
                    fingerprint=info.fingerprint,
                    node_count=info.node_count,
                    synopsis=stored.indexes.synopsis,
                )
        validated.append(info)
    return CollectionCatalog(
        directory=catalog.directory,
        name=catalog.name,
        shards=tuple(validated),
    )


def create_collection(
    directory: Union[str, os.PathLike],
    documents: Sequence[Document],
    *,
    name: Optional[str] = None,
    indexes: bool = True,
) -> CollectionCatalog:
    """Write ``documents`` as the shards of a new collection.

    Each document becomes one shard store (structural indexes included
    unless ``indexes=False``), in sequence order — the order *is* the
    collection's global document order.  Returns the written catalog.
    """
    if not documents:
        raise CollectionError("a collection needs at least one document")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    infos: List[ShardInfo] = []
    for shard, document in enumerate(documents):
        file_name = SHARD_PATTERN.format(shard=shard)
        shard_path = directory / file_name
        DocumentStore.write(document, shard_path, indexes=indexes)
        with DocumentStore.open(shard_path, buffer_pages=8) as stored:
            synopsis = None
            if stored.index_status == "fresh":
                synopsis = stored.indexes.synopsis
            infos.append(
                ShardInfo(
                    shard=shard,
                    path=file_name,
                    fingerprint=stored.fingerprint.hex(),
                    node_count=stored.node_count,
                    synopsis=synopsis,
                )
            )
    catalog = CollectionCatalog(
        directory=directory,
        name=name or directory.name,
        shards=tuple(infos),
    )
    write_catalog(catalog)
    return catalog


def split_document(document: Document, shards: int) -> List[Document]:
    """Split one document into per-subtree shard documents.

    The root element's children are partitioned into ``shards``
    contiguous runs (as evenly as possible); each shard document clones
    the root element — name, attributes, namespace declarations — around
    its run, so every shard is a well-formed document whose top-level
    structure mirrors the original.  With fewer children than requested
    shards the result has one shard per child (never an empty shard);
    a childless root yields a single shard.

    Splitting is deterministic: the same document and shard count
    always produce byte-identical shard documents, which is what lets
    the differential oracle compare the multi-process collection
    evaluation against per-shard single-document evaluation.
    """
    if shards < 1:
        raise CollectionError("shard count must be at least 1")
    root_element = None
    for child in document.root.children:
        if child.kind == NodeKind.ELEMENT:
            root_element = child
            break
    if root_element is None:
        raise CollectionError("document has no root element to split")

    open_tag = [f"<{root_element.name}"]
    for prefix, uri in sorted(root_element.namespace_declarations.items()):
        decl = f"xmlns:{prefix}" if prefix else "xmlns"
        open_tag.append(f' {decl}="{escape_attribute(uri)}"')
    for attribute in root_element.attributes:
        open_tag.append(
            f' {attribute.name}="{escape_attribute(attribute.value or "")}"'
        )
    prefix_text = "".join(open_tag)

    children = list(root_element.children)
    if not children:
        return [parse_xml(prefix_text + "/>")]
    shards = min(shards, len(children))
    base, extra = divmod(len(children), shards)
    documents: List[Document] = []
    start = 0
    for shard in range(shards):
        width = base + (1 if shard < extra else 0)
        run = children[start:start + width]
        start += width
        body = "".join(serialize(child) for child in run)
        documents.append(
            parse_xml(f"{prefix_text}>{body}</{root_element.name}>")
        )
    return documents


def create_collection_from_document(
    document: Document,
    directory: Union[str, os.PathLike],
    *,
    shards: int = 4,
    name: Optional[str] = None,
    indexes: bool = True,
) -> CollectionCatalog:
    """Shard one document and write it as a collection (convenience)."""
    return create_collection(
        directory,
        split_document(document, shards),
        name=name,
        indexes=indexes,
    )
