"""Shipping compiled plans across process boundaries.

The cross-process analogue of :attr:`CompiledQuery.thread_physical`:
just as a cached query re-generates a private :class:`PhysicalPlan` per
*thread* from its shared translation, a collection query re-generates a
private plan per *worker process* from a shipped translation.  The
split follows the compiler's own phase boundary:

- The **parent** runs the target-independent front end once per query —
  parse, semantic analysis, constant folding, normalization, and
  translation into the algebra (phases 1–5, including the scalar χ/□
  wrap) — and pickles the resulting :class:`TranslationResult`.
- Each **worker** unpickles the translation and runs the
  target-*dependent* back end against its own shard: the optimizer pass
  with the shard's index set (phase 5b — index routing must see the
  indexes that are actually resident in that process) and physical code
  generation (phase 6).

Translations are plain operator/scalar trees with no handles into any
store, engine or thread, which is what makes them picklable; physical
plans hold live iterators and register files and are never shipped.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Optional

from repro.algebra import operators as ops
from repro.collection.pruning import PrunePaths, extract_prune_paths
from repro.compiler.improved import TranslationOptions
from repro.compiler.normalize import normalize
from repro.compiler.pipeline import (
    _SCALAR_RESULT_ATTR,
    CompiledQuery,
    generate_physical,
)
from repro.compiler.rewrite import fold_constants
from repro.compiler.semantic import analyze
from repro.compiler.translate import TranslationResult, Translator
from repro.xpath.parser import parse_xpath


@dataclass(frozen=True)
class ShippedPlan:
    """One query's translation, serialized for the worker pool.

    ``blob`` pickles ``(query, TranslationOptions, TranslationResult)``;
    ``index_mode`` / ``optimizer`` ride alongside because they are
    compile *inputs* the worker's back end needs, not part of the
    translation itself.  ``result_kind`` and ``prune_paths`` are
    parent-side scatter metadata: the collection layer may skip shards
    whose synopsis refutes every prune path, but only for node-set
    (``"sequence"``) results, where the skipped shard's slice is
    provably the empty node-set.
    """

    query: str
    blob: bytes
    index_mode: str
    optimizer: str
    result_kind: str = "sequence"
    prune_paths: Optional[PrunePaths] = field(default=None)


def translate_front_end(
    query: str, options: Optional[TranslationOptions] = None
) -> TranslationResult:
    """Run compiler phases 1–5 (everything before plan optimization).

    Mirrors :meth:`XPathCompiler.compile` exactly up to — but not
    including — phase 5b, so a shipped translation optimized and
    code-generated in a worker is indistinguishable from one compiled
    end-to-end in that worker.
    """
    options = options or TranslationOptions()
    ast = parse_xpath(query)
    analyze(ast)
    ast = fold_constants(ast)
    normalize(ast)
    translation = Translator(options).translate(ast)
    if translation.kind == "scalar":
        assert translation.scalar is not None
        translation.plan = ops.MapOp(
            ops.SingletonScan(),
            _SCALAR_RESULT_ATTR,
            translation.scalar,
            is_result=True,
        )
        translation.result_attr = _SCALAR_RESULT_ATTR
    return translation


def ship_plan(
    query: str,
    options: Optional[TranslationOptions] = None,
    *,
    index_mode: str = "auto",
    optimizer: str = "heuristic",
) -> ShippedPlan:
    """Front-end compile ``query`` and pack it for the pool (parent side)."""
    options = options or TranslationOptions()
    translation = translate_front_end(query, options)
    blob = pickle.dumps(
        (query, options, translation), protocol=pickle.HIGHEST_PROTOCOL
    )
    # The prune signature comes from a fresh parse: normalization
    # mutates the translated AST, and the signature must mirror the
    # query as written.
    prune_paths = None
    if translation.kind == "sequence":
        prune_paths = extract_prune_paths(parse_xpath(query))
    return ShippedPlan(
        query=query, blob=blob, index_mode=index_mode,
        optimizer=optimizer, result_kind=translation.kind,
        prune_paths=prune_paths,
    )


def compile_shipped(
    shipped: ShippedPlan, index_info=None
) -> CompiledQuery:
    """Back-end compile a shipped plan against one shard (worker side).

    ``index_info`` is the worker's resident
    :class:`~repro.index.runtime.DocumentIndexes` for its shard (or
    ``None``); the optimizer pass runs under the same trigger rule as
    :meth:`XPathCompiler.compile` so index routing, forced-index modes
    and the cost optimizer behave identically to single-document
    serving.  The returned :class:`CompiledQuery` carries no AST
    (``ast=None``) — evaluation only reads the translation and the
    generated physical plan.
    """
    query, options, translation = pickle.loads(shipped.blob)
    optimizer_report = None
    if (options.optimize or index_info is not None
            or shipped.optimizer == "cost"):
        from repro.compiler.optimize import optimize_plan

        assert translation.plan is not None
        translation.plan, optimizer_report = optimize_plan(
            translation.plan,
            index_info=index_info,
            index_mode=shipped.index_mode,
            optimizer=shipped.optimizer,
        )
    physical = generate_physical(translation, options)
    compiled = CompiledQuery(query, None, translation, physical, options)
    compiled.optimizer_report = optimizer_report
    return compiled
