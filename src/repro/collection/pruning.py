"""Synopsis-driven shard pruning: "can this shard match at all?".

Every shard of a collection persists a DataGuide path synopsis
(:mod:`repro.index.synopsis`) — the same evidence the cost optimizer
consults before routing a step onto an index.  This module applies the
same discipline one layer up, at *scatter* time: before a query ships
to a shard, the parent walks the query's leading structural steps
through that shard's synopsis frontier, and a shard whose frontier
comes up empty provably cannot contribute a single result node, so the
scatter skips it entirely (the parent synthesizes its empty node-set
slice and counts the shard as ``pruned``).

Soundness rests on *necessity*: :func:`extract_prune_paths` derives,
from the parsed query, a set of structural path signatures such that a
non-empty result implies a non-empty frontier for at least one
signature.  Predicates are ignored (they only filter — and XPath 1.0
evaluates them lazily, so a predicate over an empty candidate set can
neither produce results nor raise), and extraction *truncates* at the
first step the synopsis cannot answer (reverse axes, node-type tests,
prefixed names): a truncated prefix is still a necessary condition.
Queries from which no signature can be derived (scalar results,
filter/function heads, prefixed name tests) are never pruned — every
shard is scattered to, exactly as before.

False positives (a shard admitted that turns out empty — e.g. name
tests shadowed by namespace bindings) cost only a wasted task; false
negatives are impossible by construction, which is what the
pruned-vs-unpruned canonical-equality property in
``tests/test_collection.py`` and the differential oracle's pruning-on
``collection`` route lock in.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.index.synopsis import PathSynopsis
from repro.xpath import xast
from repro.xpath.axes import Axis, NodeTestKind

#: One structural step of a prune signature: ``(op, name)`` with op in
#: ``child`` / ``desc`` / ``descself`` / ``self`` / ``attr`` and name a
#: literal QName or ``"*"`` — the vocabulary of
#: :meth:`PathSynopsis.frontier_entries`.
PruneStep = Tuple[str, str]

#: A prune signature: several alternative structural paths (union
#: branches); a shard is admitted when *any* path admits a non-empty
#: frontier.
PrunePaths = Tuple[Tuple[PruneStep, ...], ...]

_AXIS_OPS = {
    Axis.CHILD: "child",
    Axis.DESCENDANT: "desc",
    Axis.DESCENDANT_OR_SELF: "descself",
    Axis.SELF: "self",
    Axis.ATTRIBUTE: "attr",
}


def _step_op(step: "xast.Step") -> Optional[PruneStep]:
    """The frontier op of one location step, or ``None`` to truncate.

    Only forward structural axes with name(-ish) tests translate; a
    prefixed QName depends on namespace bindings the synopsis does not
    record, and node-type tests (text/comment/PI — and ``node()`` on
    any axis but ``descendant-or-self``) reach nodes outside the
    DataGuide, so both truncate extraction at this step.
    """
    op = _AXIS_OPS.get(step.axis)
    if op is None:
        return None
    if step.test_kind == NodeTestKind.NAME:
        name = step.test_name or ""
        if not name or ":" in name:
            return None  # prefixed: matching depends on bindings
        return (op, name)
    if step.test_kind == NodeTestKind.ANY_NAME:
        if step.test_name:  # prefix:* — namespace-dependent
            return None
        return (op, "*")
    if (step.test_kind == NodeTestKind.NODE
            and step.axis == Axis.DESCENDANT_OR_SELF):
        # The `//` abbreviation: widen the frontier, keep walking.
        return ("descself", "*")
    return None


def _steps_signature(
    steps: List["xast.Step"],
) -> Optional[Tuple[PruneStep, ...]]:
    """The structural prefix of a step list (predicates ignored)."""
    ops: List[PruneStep] = []
    for step in steps:
        op = _step_op(step)
        if op is None:
            break
        if op == ("self", "*"):
            continue  # self::* only ever drops the root; skip it
        ops.append(op)
    if not ops:
        return None
    return tuple(ops)


def _expr_paths(expr: "xast.Expr") -> Optional[PrunePaths]:
    """Prune signatures of one expression, or ``None`` (ship everywhere).

    Collection queries evaluate with the shard's document root as the
    context node, so relative location paths anchor at the root exactly
    like absolute ones.
    """
    if isinstance(expr, xast.LocationPath):
        signature = _steps_signature(expr.steps)
        if signature is None:
            return None
        return (signature,)
    if isinstance(expr, xast.UnionExpr):
        branches: List[Tuple[PruneStep, ...]] = []
        for operand in expr.operands:
            paths = _expr_paths(operand)
            if paths is None:
                return None
            branches.extend(paths)
        return tuple(branches)
    if isinstance(expr, xast.PathExpr):
        # Result nodes pass through the source's nodes first, so the
        # source's signature alone is already a necessary condition.
        return _expr_paths(expr.source)
    if isinstance(expr, xast.FilterExpr):
        return _expr_paths(expr.primary)
    return None


def extract_prune_paths(ast: "xast.Expr") -> Optional[PrunePaths]:
    """Derive the prune signature of a parsed query, if one exists.

    Returns ``None`` when the query gives the synopsis nothing to
    refute — such queries ship to every shard.
    """
    return _expr_paths(ast)


def shard_admits(
    synopsis: Optional[PathSynopsis],
    prune_paths: Optional[PrunePaths],
) -> bool:
    """Whether a shard with ``synopsis`` might contribute results.

    A missing synopsis (store written with ``indexes=False``, or a
    stale index region) admits unconditionally — no evidence, no
    pruning, the same gate the cost optimizer applies before routing
    onto an index.
    """
    if synopsis is None or prune_paths is None:
        return True
    return any(synopsis.admits(path) for path in prune_paths)
