"""The persistent shard-worker process pool.

One pool serves one collection: ``workers`` long-lived daemon
processes, shards assigned round-robin (``shard % workers``), one task
queue per worker plus one shared result queue.  The pool provides the
*mechanics* of scatter-gather — dispatch, collection, cross-process
cancellation, crash detection, recycling — while
:class:`~repro.collection.collection.Collection` owns the policy
(plan shipping, governance derivation, ordering, statistics).

Crash handling is deliberately blunt: when any worker is found dead
mid-query (e.g. SIGKILLed), the **whole pool** is recycled — every
worker terminated and respawned with fresh queues.  A process killed
while holding a ``multiprocessing.Queue`` feeder lock can poison that
queue for every sibling, so selectively restarting one worker risks
trading a visible crash for an invisible hang; full recycling costs a
few tens of milliseconds and restores a provably clean state.  Queries
are serialized per collection, so at most one query's tasks are ever
in flight and dropping them loses nothing that is not already failed.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
from typing import Dict, List, Optional, Tuple

from repro.collection.catalog import CollectionCatalog
from repro.collection.worker import decode_error, worker_main
from repro.errors import ShardFailedError

#: Seconds between liveness checks while blocked on the result queue.
POLL_INTERVAL = 0.05

#: Grace beyond the query deadline before the parent declares a worker
#: unresponsive (covers the governor's amortized check latency).
DEADLINE_GRACE = 5.0

#: Page-buffer frames each worker grants each of its shard stores.
DEFAULT_WORKER_BUFFER_PAGES = 64


class ShardOutcome:
    """How one shard's task resolved: exactly one of ok/error/dead."""

    __slots__ = ("shard", "payload", "error", "elapsed")

    def __init__(self, shard: int, payload=None,
                 error: Optional[Exception] = None,
                 elapsed: float = 0.0):
        self.shard = shard
        self.payload = payload
        self.error = error
        self.elapsed = elapsed

    @property
    def ok(self) -> bool:
        return self.error is None


class WorkerPool:
    """Persistent process pool bound to one collection catalog."""

    def __init__(
        self,
        catalog: CollectionCatalog,
        workers: Optional[int] = None,
        *,
        index_mode: str = "auto",
        buffer_pages: int = DEFAULT_WORKER_BUFFER_PAGES,
    ):
        shard_count = catalog.shard_count
        if workers is None:
            workers = shard_count
        self.workers = max(1, min(int(workers), shard_count))
        self.catalog = catalog
        self.index_mode = index_mode
        self.buffer_pages = buffer_pages
        #: shard id -> worker index (round-robin, fixed for the pool).
        self.shard_worker: Dict[int, int] = {
            info.shard: info.shard % self.workers
            for info in catalog.shards
        }
        self.recycles = 0
        self._ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        self._processes: List = []
        self._task_queues: List = []
        self._cancel_cells: List = []
        self._result_queue = None
        self._closed = False
        self._spawn()

    # -- lifecycle -----------------------------------------------------

    def _assignments(self, worker: int) -> List[Tuple[int, str]]:
        return [
            (info.shard, str(self.catalog.shard_path(info.shard)))
            for info in self.catalog.shards
            if self.shard_worker[info.shard] == worker
        ]

    def _spawn(self) -> None:
        self._result_queue = self._ctx.Queue()
        self._task_queues = [self._ctx.Queue() for _ in range(self.workers)]
        self._cancel_cells = [
            self._ctx.Value("q", -1, lock=False)
            for _ in range(self.workers)
        ]
        self._processes = []
        for worker in range(self.workers):
            process = self._ctx.Process(
                target=worker_main,
                args=(
                    self._assignments(worker),
                    self._task_queues[worker],
                    self._result_queue,
                    self._cancel_cells[worker],
                    self.index_mode,
                    self.buffer_pages,
                ),
                daemon=True,
                name=f"repro-shard-worker-{worker}",
            )
            process.start()
            self._processes.append(process)

    def recycle(self) -> None:
        """Terminate every worker and respawn the pool with fresh queues."""
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        for queue in [self._result_queue, *self._task_queues]:
            if queue is not None:
                queue.close()
                queue.cancel_join_thread()
        self.recycles += 1
        self._spawn()

    def close(self) -> None:
        """Stop the workers and release every queue (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for queue in self._task_queues:
            try:
                queue.put(("stop",))
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        for queue in [self._result_queue, *self._task_queues]:
            if queue is not None:
                queue.close()
                queue.cancel_join_thread()

    def worker_pids(self) -> List[int]:
        """The live worker pids (test hook for crash injection)."""
        return [process.pid for process in self._processes]

    # -- scatter-gather ------------------------------------------------

    def cancel(self, qid: int, except_worker: Optional[int] = None) -> None:
        """Aim a cancel at ``qid`` on every worker (cross-process).

        Workers observe it at their next governor check; tasks of any
        other qid are unaffected (the cell matches on qid, not a flag).
        """
        for worker, cell in enumerate(self._cancel_cells):
            if worker != except_worker:
                cell.value = qid

    def scatter(self, qid: int, tasks: Dict[int, tuple]) -> None:
        """Dispatch one query's per-shard tasks onto the worker queues.

        Also clears every cancel cell: a leftover cancel aimed at a
        previous qid can never match, but starting from a clean slate
        keeps the cells inspectable.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        for cell in self._cancel_cells:
            cell.value = -1
        for shard, task in tasks.items():
            self._task_queues[self.shard_worker[shard]].put(task)

    def gather(
        self,
        qid: int,
        shards,
        deadline: Optional[float],
        cancel_check=None,
    ) -> Dict[int, ShardOutcome]:
        """Collect exactly one outcome per scattered shard.

        ``deadline`` is the collection deadline on the monotonic clock
        (``None`` when ungoverned).  A crashed or unresponsive worker
        yields outcomes carrying
        :class:`~repro.errors.ShardFailedError`, never a hang: the
        parent enforces ``deadline + DEADLINE_GRACE`` as a hard
        failsafe above the workers' cooperative governors, and recycles
        the pool whenever a worker died or overran it.  ``cancel_check``
        (a nullary callable) is polled between queue reads; when it
        turns true the in-flight shards are cancelled cross-process and
        their governors raise, so the gather still resolves every
        shard.
        """
        outcomes: Dict[int, ShardOutcome] = {}
        pending = set(shards)
        cancelled_rest = False
        need_recycle = False
        while pending:
            if cancel_check is not None and not cancelled_rest:
                if cancel_check():
                    cancelled_rest = True
                    self.cancel(qid)
            try:
                message = self._result_queue.get(timeout=POLL_INTERVAL)
            except queue_module.Empty:
                message = None
            if message is not None:
                kind, got_qid, shard, body, elapsed = message
                if got_qid != qid or shard not in pending:
                    continue  # stale leftover from an abandoned query
                pending.discard(shard)
                if kind == "ok":
                    outcomes[shard] = ShardOutcome(
                        shard, payload=body, elapsed=elapsed
                    )
                else:
                    outcomes[shard] = ShardOutcome(
                        shard, error=decode_error(body), elapsed=elapsed
                    )
                    if not cancelled_rest:
                        # First failing shard: abort the siblings' work.
                        cancelled_rest = True
                        self.cancel(qid)
                continue

            dead = [
                worker for worker, process in enumerate(self._processes)
                if not process.is_alive()
            ]
            if dead:
                dead_set = set(dead)
                for shard in sorted(pending):
                    if self.shard_worker[shard] in dead_set:
                        pending.discard(shard)
                        outcomes[shard] = ShardOutcome(
                            shard,
                            error=ShardFailedError(shard, "worker-died"),
                        )
                need_recycle = True
                if pending:
                    # Live siblings' results are useless now; stop them.
                    # Recycling will drop whatever they still emit.
                    self.cancel(qid)
                    for shard in sorted(pending):
                        outcomes[shard] = ShardOutcome(
                            shard,
                            error=ShardFailedError(
                                shard, "pool-recycled",
                            ),
                        )
                    pending.clear()
                break

            if (deadline is not None
                    and time.monotonic() > deadline + DEADLINE_GRACE):
                # Cooperative governance failed to fire: hard failsafe.
                for shard in sorted(pending):
                    outcomes[shard] = ShardOutcome(
                        shard,
                        error=ShardFailedError(shard, "unresponsive"),
                    )
                pending.clear()
                need_recycle = True
                break

        if need_recycle:
            self.recycle()
        return outcomes

    # ------------------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
