"""The persistent shard-worker process pool.

One pool serves one collection: ``workers`` long-lived daemon
processes, shards assigned round-robin (``shard % workers``), one task
queue per worker plus one shared result queue.  The pool provides the
*mechanics* of scatter-gather — dispatch, collection, cross-process
cancellation, crash detection, recycling — while
:class:`~repro.collection.collection.Collection` owns the policy
(plan shipping, governance derivation, pruning, ordering, statistics).

**Multiplexing.** Several queries may be in flight at once.  Every
task, result and cancel is tagged with its query id; a single parent
*demux thread* drains the shared result queue and routes each message
into its query's :class:`_Flight` (the per-query gather state), so
worker task queues interleave tasks of different queries freely and
:meth:`WorkerPool.gather` just waits on its flight's completion event.
Cross-process cancellation rides one shared qid-slot array
(:data:`CANCEL_SLOTS` signed 64-bit slots): the parent parks a qid in
a free slot, every worker's cancel token scans the array for its own
task's qid on each amortized governor check, and the slot is cleared
when the flight resolves — a cancel aimed at one query can never leak
into another.

Crash handling is deliberately blunt: when any worker is found dead
mid-query (e.g. SIGKILLed), the **whole pool** is recycled — every
worker terminated and respawned with fresh queues.  A process killed
while holding a ``multiprocessing.Queue`` feeder lock can poison that
queue for every sibling, so selectively restarting one worker risks
trading a visible crash for an invisible hang; full recycling costs a
few tens of milliseconds and restores a provably clean state.  With
multiple queries in flight, a recycle fails **every** in-flight flight
exactly once: shards on the dead worker as ``worker-died``, the shards
of a deadline-overrunning flight as ``unresponsive``, and everything
else in flight as ``pool-recycled`` collateral.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.collection.catalog import CollectionCatalog
from repro.collection.worker import decode_error, worker_main
from repro.errors import ShardFailedError

#: Seconds between liveness/deadline sweeps while blocked on the
#: result queue (demux thread) or a flight event (gather).
POLL_INTERVAL = 0.05

#: Grace beyond the query deadline before the parent declares a worker
#: unresponsive (covers the governor's amortized check latency).
DEADLINE_GRACE = 5.0

#: Page-buffer frames each worker grants each of its shard stores.
DEFAULT_WORKER_BUFFER_PAGES = 64

#: Width of the shared cancel array: the number of *distinct* queries
#: that can be under cross-process cancellation at the same instant.
#: Slots are reclaimed as soon as a flight resolves, so this bounds
#: simultaneously-cancelling queries, not total queries.
CANCEL_SLOTS = 128


class ShardOutcome:
    """How one shard's task resolved: exactly one of ok/error/pruned."""

    __slots__ = ("shard", "payload", "error", "elapsed", "pruned")

    def __init__(self, shard: int, payload=None,
                 error: Optional[Exception] = None,
                 elapsed: float = 0.0,
                 pruned: bool = False):
        self.shard = shard
        self.payload = payload
        self.error = error
        self.elapsed = elapsed
        #: True when the parent skipped the shard on synopsis evidence
        #: and synthesized its (empty) payload without scattering.
        self.pruned = pruned

    @property
    def ok(self) -> bool:
        return self.error is None


class _Flight:
    """One in-flight query's gather state (parent side).

    Created at scatter, mutated only by the demux thread (and by the
    recycle path) under the pool's state lock, consumed by the gather
    caller once ``done`` is set.  ``outcomes`` holds exactly one
    :class:`ShardOutcome` per scattered shard when ``done`` fires.
    """

    __slots__ = (
        "qid", "pending", "outcomes", "deadline", "done", "cancel_sent",
    )

    def __init__(self, qid: int, shards, deadline: Optional[float]):
        self.qid = qid
        self.pending = set(shards)
        self.outcomes: Dict[int, ShardOutcome] = {}
        self.deadline = deadline
        self.done = threading.Event()
        self.cancel_sent = False


class WorkerPool:
    """Persistent process pool bound to one collection catalog."""

    def __init__(
        self,
        catalog: CollectionCatalog,
        workers: Optional[int] = None,
        *,
        index_mode: str = "auto",
        buffer_pages: int = DEFAULT_WORKER_BUFFER_PAGES,
    ):
        shard_count = catalog.shard_count
        if workers is None:
            workers = shard_count
        self.workers = max(1, min(int(workers), shard_count))
        self.catalog = catalog
        self.index_mode = index_mode
        self.buffer_pages = buffer_pages
        #: shard id -> worker index (round-robin, fixed for the pool).
        self.shard_worker: Dict[int, int] = {
            info.shard: info.shard % self.workers
            for info in catalog.shards
        }
        self.recycles = 0
        self._ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        self._processes: List = []
        self._task_queues: List = []
        self._cancel_slots = None
        self._result_queue = None
        self._closed = False
        #: Guards flights, queues and processes across scatter/recycle.
        self._state_lock = threading.Lock()
        self._cancel_lock = threading.Lock()
        self._flights: Dict[int, _Flight] = {}
        self._spawn()
        self._demux = threading.Thread(
            target=self._demux_loop,
            name="repro-collection-demux",
            daemon=True,
        )
        self._demux.start()

    # -- lifecycle -----------------------------------------------------

    def _assignments(self, worker: int) -> List[Tuple[int, str]]:
        return [
            (info.shard, str(self.catalog.shard_path(info.shard)))
            for info in self.catalog.shards
            if self.shard_worker[info.shard] == worker
        ]

    def _spawn(self) -> None:
        self._result_queue = self._ctx.Queue()
        self._task_queues = [self._ctx.Queue() for _ in range(self.workers)]
        self._cancel_slots = self._ctx.Array(
            "q", [-1] * CANCEL_SLOTS, lock=False
        )
        self._processes = []
        for worker in range(self.workers):
            process = self._ctx.Process(
                target=worker_main,
                args=(
                    self._assignments(worker),
                    self._task_queues[worker],
                    self._result_queue,
                    self._cancel_slots,
                    self.index_mode,
                    self.buffer_pages,
                ),
                daemon=True,
                name=f"repro-shard-worker-{worker}",
            )
            process.start()
            self._processes.append(process)

    def _respawn_locked(self) -> None:
        """Terminate every worker and respawn with fresh queues.

        Caller holds ``_state_lock``; anything already registered in
        ``self._flights`` must have been failed by the caller first —
        tasks and results in the old queues are dropped with them.
        """
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        for queue in [self._result_queue, *self._task_queues]:
            if queue is not None:
                queue.close()
                queue.cancel_join_thread()
        self.recycles += 1
        self._spawn()

    def recycle(self) -> None:
        """Recycle the pool, failing every in-flight query (public)."""
        self._fail_all_flights((), ())

    def close(self) -> None:
        """Stop the workers and release every queue (idempotent).

        Any flight still in the air resolves with per-shard
        ``pool-closed`` failures rather than hanging its gather.
        """
        if self._closed:
            return
        self._closed = True
        if self._demux is not None and self._demux.is_alive():
            self._demux.join(timeout=2.0)
        with self._state_lock:
            flights = list(self._flights.values())
            self._flights.clear()
            for flight in flights:
                for shard in sorted(flight.pending):
                    flight.outcomes[shard] = ShardOutcome(
                        shard, error=ShardFailedError(shard, "pool-closed")
                    )
                flight.pending.clear()
        for flight in flights:
            flight.done.set()
        for queue in self._task_queues:
            try:
                queue.put(("stop",))
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        for queue in [self._result_queue, *self._task_queues]:
            if queue is not None:
                queue.close()
                queue.cancel_join_thread()

    def worker_pids(self) -> List[int]:
        """The live worker pids (test hook for crash injection)."""
        return [process.pid for process in self._processes]

    # -- cancellation --------------------------------------------------

    def cancel(self, qid: int) -> None:
        """Aim a cross-process cancel at ``qid`` on every worker.

        Parks the qid in a free slot of the shared cancel array;
        workers observe it at their next governor check.  Tasks of any
        other qid are unaffected (tokens match on qid, not a flag).
        """
        slots = self._cancel_slots
        with self._cancel_lock:
            for index in range(CANCEL_SLOTS):
                if slots[index] == qid:
                    return
            for index in range(CANCEL_SLOTS):
                if slots[index] == -1:
                    slots[index] = qid
                    return
            # Every slot is taken: reclaim one whose flight has already
            # resolved (its cancel can no longer match anything).
            with self._state_lock:
                active = set(self._flights)
            for index in range(CANCEL_SLOTS):
                if slots[index] not in active:
                    slots[index] = qid
                    return
            slots[0] = qid  # > CANCEL_SLOTS cancelling flights at once

    def _clear_cancel(self, qid: int) -> None:
        slots = self._cancel_slots
        with self._cancel_lock:
            for index in range(CANCEL_SLOTS):
                if slots[index] == qid:
                    slots[index] = -1

    # -- scatter-gather ------------------------------------------------

    def scatter(
        self,
        qid: int,
        tasks: Dict[int, tuple],
        deadline: Optional[float] = None,
    ) -> _Flight:
        """Dispatch one query's per-shard tasks onto the worker queues.

        Registers the query's :class:`_Flight` and enqueues its tasks
        atomically with respect to recycling: a flight registered
        before a recycle snapshot is failed by it, one registered after
        lands on the fresh pool.  Returns the flight to pass to
        :meth:`gather`.  ``deadline`` (monotonic, or ``None`` when
        ungoverned) arms the parent-side unresponsiveness failsafe.
        """
        with self._state_lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            flight = _Flight(qid, tasks, deadline)
            self._flights[qid] = flight
            for shard, task in tasks.items():
                self._task_queues[self.shard_worker[shard]].put(task)
        return flight

    def gather(self, flight: _Flight, cancel_check=None) -> Dict[int, ShardOutcome]:
        """Wait for one flight to resolve every scattered shard.

        A crashed or unresponsive worker yields outcomes carrying
        :class:`~repro.errors.ShardFailedError`, never a hang: the
        demux thread enforces ``deadline + DEADLINE_GRACE`` as a hard
        failsafe above the workers' cooperative governors and recycles
        the pool whenever a worker died or overran it.  ``cancel_check``
        (a nullary callable) is polled between waits; when it turns
        true the in-flight shards are cancelled cross-process and their
        governors raise, so the gather still resolves every shard.
        """
        cancelled = False
        while not flight.done.wait(timeout=POLL_INTERVAL):
            if (cancel_check is not None and not cancelled
                    and cancel_check()):
                cancelled = True
                self.cancel(flight.qid)
        return flight.outcomes

    # -- demultiplexing (parent-side result routing) -------------------

    def _demux_loop(self) -> None:
        """Drain the shared result queue, route messages, sweep hazards.

        The single thread that mutates flight state on the happy path:
        it routes each ``(kind, qid, shard, body, elapsed)`` message
        into its flight, fires sibling cancellation on a flight's first
        error, and — between messages — sweeps for dead workers and
        deadline-overrunning flights, recycling the pool when either
        appears.  Messages for unknown qids or already-resolved shards
        are stale leftovers of failed flights and are dropped.
        """
        while not self._closed:
            result_queue = self._result_queue
            try:
                message = result_queue.get(timeout=POLL_INTERVAL)
            except queue_module.Empty:
                message = None
            except (OSError, ValueError, EOFError):
                # The queue was swapped out underneath us mid-recycle.
                time.sleep(0.005)
                continue
            try:
                if message is not None:
                    self._route(message)
                self._sweep()
            except Exception:  # pragma: no cover - demux must survive
                continue

    def _route(self, message) -> None:
        kind, qid, shard, body, elapsed = message
        finished = None
        fail_siblings = False
        with self._state_lock:
            flight = self._flights.get(qid)
            if flight is None or shard not in flight.pending:
                return  # stale leftover from an abandoned query
            flight.pending.discard(shard)
            if kind == "ok":
                flight.outcomes[shard] = ShardOutcome(
                    shard, payload=body, elapsed=elapsed
                )
            else:
                flight.outcomes[shard] = ShardOutcome(
                    shard, error=decode_error(body), elapsed=elapsed
                )
                if flight.pending and not flight.cancel_sent:
                    # First failing shard: abort the siblings' work.
                    flight.cancel_sent = True
                    fail_siblings = True
            if not flight.pending:
                del self._flights[qid]
                finished = flight
        if fail_siblings:
            self.cancel(qid)
        if finished is not None:
            self._clear_cancel(qid)
            finished.done.set()

    def _sweep(self) -> None:
        """Fail flights held up by dead or unresponsive workers."""
        with self._state_lock:
            if not self._flights:
                return
            now = time.monotonic()
            expired = tuple(
                flight.qid
                for flight in self._flights.values()
                if flight.deadline is not None
                and now > flight.deadline + DEADLINE_GRACE
            )
        dead = tuple(
            worker for worker, process in enumerate(self._processes)
            if not process.is_alive()
        )
        if dead or expired:
            self._fail_all_flights(dead, expired)

    def _fail_all_flights(
        self, dead: Sequence[int], expired: Sequence[int]
    ) -> None:
        """Fail every in-flight query exactly once and recycle the pool.

        Per-shard error triage: a shard assigned to a dead worker is
        the root cause (``worker-died``); a pending shard of a flight
        that overran its deadline failsafe is ``unresponsive``; every
        other in-flight shard is ``pool-recycled`` collateral.  Done
        events are set only after the fresh pool is up, so a gather
        returns to a caller who can immediately scatter again.
        """
        dead_set = set(dead)
        expired_set = set(expired)
        with self._state_lock:
            flights = list(self._flights.values())
            self._flights.clear()
            for flight in flights:
                for shard in sorted(flight.pending):
                    if self.shard_worker[shard] in dead_set:
                        error = ShardFailedError(shard, "worker-died")
                    elif flight.qid in expired_set:
                        error = ShardFailedError(shard, "unresponsive")
                    else:
                        error = ShardFailedError(shard, "pool-recycled")
                    flight.outcomes[shard] = ShardOutcome(
                        shard, error=error
                    )
                flight.pending.clear()
            self._respawn_locked()
        for flight in flights:
            flight.done.set()

    # ------------------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
