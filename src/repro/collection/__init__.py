"""Sharded collections served by a multi-process scatter-gather pool.

The ROADMAP's step past single-document serving: a
:class:`Collection` holds many stored documents (shards) behind one
catalog file and fans each query out across a persistent
``multiprocessing`` worker pool — one page buffer and index set per
worker, plans shipped as pickled translations and back-end compiled
per shard, results merged in global document order ``(shard id,
pre-order rank)``.  See ``docs/collection.md`` for the architecture,
the ordering guarantee and the governance semantics.
"""

from repro.collection.catalog import (
    CollectionCatalog,
    ShardInfo,
    create_collection,
    create_collection_from_document,
    load_catalog,
    split_document,
)
from repro.collection.collection import (
    Collection,
    CollectionResult,
    CollectionStats,
    NodeRecord,
    ShardResult,
)
from repro.collection.plans import ShippedPlan, compile_shipped, ship_plan
from repro.collection.pool import WorkerPool
from repro.collection.pruning import extract_prune_paths, shard_admits

__all__ = [
    "extract_prune_paths",
    "shard_admits",
    "Collection",
    "CollectionCatalog",
    "CollectionResult",
    "CollectionStats",
    "NodeRecord",
    "ShardInfo",
    "ShardResult",
    "ShippedPlan",
    "WorkerPool",
    "compile_shipped",
    "create_collection",
    "create_collection_from_document",
    "load_catalog",
    "ship_plan",
    "split_document",
]
