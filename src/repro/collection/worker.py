"""The shard worker: one process, one shard, one buffer pool.

Each worker owns exactly one shard for its whole life: it opens the
shard's :class:`~repro.storage.DocumentStore` once (its own
:class:`~repro.storage.buffer.BufferManager` page buffer and resident
index set — nothing is shared across processes), then loops on its task
queue compiling shipped translations (:func:`compile_shipped`) into a
private per-shard plan cache and evaluating them under a per-task
:class:`~repro.engine.governor.ResourceGovernor`.

Everything crossing the process boundary is plain picklable data:

- **Tasks** (parent → worker): ``("query", qid, shard, ShippedPlan,
  variables, namespaces, limits)``, ``("sleep", qid, shard, seconds,
  limits)`` (a test hook that burns governed wall time without touching
  the store), or ``("stop",)``.  ``limits`` is ``(timeout, deadline,
  max_tuples, max_bytes)``; the worker rebases its governor onto the
  shipped collection deadline, so queue wait counts against it.
- **Results** (worker → parent): ``("ok", qid, shard, payload,
  elapsed)`` or ``("err", qid, shard, encoded_error, elapsed)``.
  Node-set payloads are canonical record tuples ``(sort_key, kind,
  name, string_value)`` in document order — live node handles never
  leave the process that owns their pages.

Cross-process cancellation rides one shared ``multiprocessing.Array``
of qid slots (shared by every worker of the pool): the parent parks
the qid it wants cancelled in a free slot, and a duck-typed cancel
token (the governor only reads ``.cancelled`` / ``.reason``) scans the
array for the task's own qid on every amortized governor check — so
several queries can be cancelled independently while others run
undisturbed.  Exceptions are shipped as ``(type name,
message, attribute dict)`` and reconstructed without re-running typed
``__init__`` signatures, so ``QueryTimeoutError(timeout, elapsed)`` and
friends survive the queue round-trip with their attributes intact.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import repro.errors as errors_module
from repro.collection.plans import ShippedPlan, compile_shipped
from repro.engine.governor import ResourceGovernor
from repro.errors import QueryTimeoutError, ReproError
from repro.storage import DocumentStore

#: Worker-side per-shard plan cache bound (plans are per-process).
PLAN_CACHE_LIMIT = 64

#: Attributes worth shipping back with an encoded exception.
_ERROR_ATTRS = (
    "timeout", "elapsed", "resource", "limit", "used", "reason",
    "shard", "line", "column", "position", "name",
)


class _SlotCancelToken:
    """Cancel token backed by the shared cancel-slot array.

    The parent cancels an in-flight query by parking its qid in a free
    slot of the pool-wide array; this adapter makes the governor's
    amortized check observe it.  Matching on the *qid* (not a boolean)
    means a cancel aimed at one query can never leak into a concurrent
    or subsequent one.
    """

    __slots__ = ("_slots", "_qid", "reason")

    def __init__(self, slots, qid: int):
        self._slots = slots
        self._qid = qid
        self.reason = "collection scatter cancelled"

    @property
    def cancelled(self) -> bool:
        qid = self._qid
        for value in self._slots:
            if value == qid:
                return True
        return False


def encode_error(error: BaseException) -> Tuple[str, str, dict]:
    """Flatten an exception into picklable ``(type, message, attrs)``.

    Typed errors in this library have positional ``__init__``
    signatures (``QueryTimeoutError(timeout, elapsed)``) that naive
    exception pickling would call with the formatted message — so the
    wire format carries the attributes separately and
    :func:`decode_error` rebuilds instances without calling
    ``__init__`` at all.
    """
    attrs = {
        name: getattr(error, name)
        for name in _ERROR_ATTRS
        if hasattr(error, name)
    }
    return (type(error).__name__, str(error), attrs)


def decode_error(encoded: Tuple[str, str, dict]) -> Exception:
    """Reconstruct a worker-side exception from its wire form."""
    import builtins

    type_name, message, attrs = encoded
    cls = getattr(errors_module, type_name, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = getattr(builtins, type_name, None)
        if not (isinstance(cls, type) and issubclass(cls, Exception)):
            return RuntimeError(f"{type_name}: {message}")
    error = cls.__new__(cls)
    Exception.__init__(error, message)
    for name, value in attrs.items():
        try:
            setattr(error, name, value)
        except AttributeError:
            pass  # slotted or read-only: the message already carries it
    return error


def _make_governor(
    limits: Tuple[Optional[float], Optional[float], Optional[int],
                  Optional[int]],
    cancel_slots,
    qid: int,
) -> Optional[ResourceGovernor]:
    """Build this task's governor from the shipped collection limits.

    ``limits`` is ``(timeout, deadline, max_tuples, max_bytes)`` where
    ``deadline`` is the collection deadline on the (system-wide)
    monotonic clock.  The worker re-derives its *remaining* budget from
    the deadline, so time a task spent waiting in the queue counts
    against it — a governed scatter is bounded end to end, exactly like
    ``evaluate_concurrent``'s submission-anchored governors.  A task
    whose deadline already passed raises immediately.
    """
    timeout, deadline, max_tuples, max_bytes = limits
    remaining = None
    if deadline is not None:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise QueryTimeoutError(
                timeout or 0.0, (timeout or 0.0) - remaining
            )
    cancel = _SlotCancelToken(cancel_slots, qid)
    return ResourceGovernor(
        timeout=remaining,
        max_tuples=max_tuples,
        max_bytes=max_bytes,
        cancel=cancel,
    )


def _governed_sleep(seconds: float, governor: ResourceGovernor) -> str:
    """Burn wall time cooperatively (test hook for crash/cancel tests).

    Polls the governor every few milliseconds, so a deadline or a
    cancel aimed at this task aborts promptly — exactly like a real
    evaluation's amortized ``tick()``, just with a clock instead of a
    plan.
    """
    end = time.monotonic() + seconds
    while time.monotonic() < end:
        governor.check()
        time.sleep(0.005)
    return "slept"


def _canonical_payload(value) -> tuple:
    """Worker-side half of the oracle's canonical form.

    Node-sets become ``("node-set", records)`` with records sorted in
    (pre-order) document order; scalars ship as
    ``("boolean"/"number"/"string", value)``.  This is byte-compatible
    with :func:`repro.testing.oracle.canonical_value` per shard, which
    is what lets the differential oracle compare collection results
    against in-process reference legs structurally.
    """
    if isinstance(value, list):
        return (
            "node-set",
            tuple(
                sorted(
                    (
                        tuple(node.sort_key),
                        node.kind.value,
                        node.name or "",
                        node.string_value(),
                    )
                    for node in value
                )
            ),
        )
    if isinstance(value, bool):
        return ("boolean", value)
    if isinstance(value, float):
        if value != value:
            return ("number", "NaN")
        return ("number", value)
    return ("string", value)


def worker_main(
    assignments,
    task_queue,
    result_queue,
    cancel_slots,
    index_mode: str,
    buffer_pages: int,
) -> None:
    """The worker process entry point (top level: spawn-safe).

    ``assignments`` is the worker's ``[(shard, path), ...]`` — with
    fewer workers than shards one process serves several shards, each
    behind its own store handle (own page buffer, own resident index
    set).  Never raises: every per-task failure is encoded onto the
    result queue, and a shard store that failed to open is reported per
    task touching that shard, so the parent sees a typed error rather
    than a dead queue.
    """
    stores: Dict[int, object] = {}
    open_errors: Dict[int, BaseException] = {}
    for shard, shard_path in assignments:
        try:
            stores[shard] = DocumentStore.open(
                shard_path, buffer_pages=buffer_pages
            )
        except BaseException as error:  # noqa: BLE001 - reported per task
            open_errors[shard] = error
    plan_cache: Dict[tuple, object] = {}

    try:
        while True:
            task = task_queue.get()
            kind = task[0]
            if kind == "stop":
                break
            qid, shard = task[1], task[2]
            started = time.monotonic()
            try:
                if shard in open_errors:
                    raise errors_module.CollectionError(
                        f"shard {shard} store failed to open: "
                        f"{open_errors[shard]}"
                    )
                if kind == "sleep":
                    seconds, limits = task[3], task[4]
                    governor = _make_governor(limits, cancel_slots, qid)
                    payload = (
                        "string",
                        _governed_sleep(seconds, governor),
                    )
                elif kind == "query":
                    shipped, variables, namespaces, limits = task[3:7]
                    payload = _run_query(
                        stores[shard], shard, index_mode, plan_cache,
                        shipped, variables, namespaces, limits,
                        cancel_slots, qid,
                    )
                else:
                    raise errors_module.CollectionError(
                        f"unknown collection task kind {kind!r}"
                    )
            except BaseException as error:  # noqa: BLE001 - shipped back
                result_queue.put(
                    ("err", qid, shard, encode_error(error),
                     time.monotonic() - started)
                )
            else:
                result_queue.put(
                    ("ok", qid, shard, payload,
                     time.monotonic() - started)
                )
    finally:
        for stored in stores.values():
            stored.close()


def _run_query(
    stored,
    shard: int,
    index_mode: str,
    plan_cache: Dict[tuple, object],
    shipped: ShippedPlan,
    variables,
    namespaces,
    limits,
    cancel_slots,
    qid: int,
) -> tuple:
    """Compile (cached) and evaluate one shipped plan on one shard.

    The plan cache is keyed per shard: with index routing on, two
    shards of the same worker compile *different* physical plans from
    the same shipped translation (each routed onto its own index set).
    """
    key = (
        shard,
        shipped.query,
        shipped.blob,
        shipped.index_mode,
        shipped.optimizer,
    )
    compiled = plan_cache.get(key)
    if compiled is None:
        index_info = (
            stored.indexes if index_mode != "off" else None
        )
        compiled = compile_shipped(shipped, index_info=index_info)
        if len(plan_cache) >= PLAN_CACHE_LIMIT:
            plan_cache.pop(next(iter(plan_cache)))
        plan_cache[key] = compiled
    governor = _make_governor(limits, cancel_slots, qid)
    result = compiled.evaluate(
        stored.root,
        variables=dict(variables or {}),
        namespaces=dict(namespaces or {}),
        governor=governor,
    )
    return _canonical_payload(result)


__all__ = [
    "worker_main",
    "encode_error",
    "decode_error",
    "PLAN_CACHE_LIMIT",
]
