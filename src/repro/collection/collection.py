"""The ``Collection``: scatter-gather serving over sharded documents.

A :class:`Collection` opens a catalog directory (see
:mod:`repro.collection.catalog`), spins up a persistent
:class:`~repro.collection.pool.WorkerPool`, and serves whole-collection
queries:

1. **Ship** — the query is front-end compiled once (phases 1–5) and the
   pickled translation cached under ``(query, options, namespaces,
   index mode, optimizer)``; see :mod:`repro.collection.plans`.
2. **Prune + scatter** — before anything ships, each shard's mirrored
   path synopsis is asked whether the query's leading structural steps
   can match at all (:mod:`repro.collection.pruning`); a refuted shard
   is *pruned* — the parent synthesizes its provably-empty node-set
   slice without scattering.  The admitted shards each get one task,
   carrying the shipped plan and the per-shard governance limits
   derived from the collection deadline.  Scatters are **not**
   serialized: any number of queries may be in flight on the pool at
   once, multiplexed by query id (see :mod:`repro.collection.pool`).
3. **Gather** — the pool collects exactly one outcome per shard
   (worker crashes and unresponsive workers included, as typed
   errors), cancelling the in-flight siblings as soon as any shard
   fails.
4. **Merge** — node-set results are concatenated in **global document
   order**: ``(shard id, pre-order rank)``.  Per-shard results arrive
   already document-ordered (the worker canonicalizes with a sort), so
   the merge is a permutation-free concatenation in shard order —
   never an interleave, never a re-sort.

Failure semantics mirror the single-document engine: a query either
returns a complete :class:`CollectionResult` or raises — governance
errors (:class:`~repro.errors.QueryTimeoutError`, budget, cancel) when
a governor tripped, :class:`~repro.errors.ShardFailedError` when a
worker died or stopped responding.  There are no partial results.

Accounting is parent-side only: every submitted shard task resolves to
exactly one of ``completed`` / ``timed_out`` / ``cancelled`` /
``failed`` / ``pruned``, so the :class:`CollectionStats` invariant
``submitted == completed + timed_out + cancelled + failed + pruned``
holds at every quiescent point by construction, no matter what the
workers did (pruned shards count as submitted and resolve instantly,
parent-side).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import asdict, dataclass
from typing import (
    Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple, Union,
)

from repro.collection.catalog import CollectionCatalog, load_catalog
from repro.collection.plans import ShippedPlan, ship_plan
from repro.collection.pool import (
    DEFAULT_WORKER_BUFFER_PAGES,
    ShardOutcome,
    WorkerPool,
)
from repro.collection.pruning import shard_admits
from repro.compiler.improved import TranslationOptions
from repro.errors import (
    CollectionError,
    QueryBudgetError,
    QueryCancelledError,
    QueryTimeoutError,
    ShardFailedError,
)

#: Shipped front-end translations cached per collection.
SHIPPED_CACHE_LIMIT = 128

#: The outcome classes a shard task resolves into (stats keys).
OUTCOME_KEYS = (
    "submitted", "completed", "timed_out", "cancelled", "failed", "pruned",
)


class NodeRecord(NamedTuple):
    """One result node of a collection query, in canonical form.

    Live node handles cannot cross process boundaries, so collection
    node-sets are sequences of these records.  ``sort_key`` is the
    node's pre-order key within its shard; ``(shard, sort_key)`` is the
    node's global document-order position, and record sequences from
    :meth:`CollectionResult.merged` are sorted by exactly that pair.
    """

    shard: int
    sort_key: Tuple[int, int, int]
    kind: int
    name: str
    string_value: str


@dataclass(frozen=True)
class ShardResult:
    """One shard's slice of a collection query result."""

    shard: int
    kind: str  #: "node-set", "boolean", "number" or "string"
    value: object  #: tuple of NodeRecord for node-sets, scalar otherwise
    elapsed: float  #: worker-side evaluation seconds


class CollectionResult:
    """The complete, merged result of one collection query."""

    __slots__ = ("shards", "elapsed")

    def __init__(self, shards: List[ShardResult], elapsed: float):
        #: Per-shard results, in shard order (dense, one per shard).
        self.shards = shards
        #: Parent-side wall seconds for the whole scatter-gather.
        self.elapsed = elapsed

    @property
    def kind(self) -> str:
        """``"node-set"`` when every shard returned a node-set, else
        ``"scalar"`` (scalar queries yield one value *per shard*)."""
        if all(shard.kind == "node-set" for shard in self.shards):
            return "node-set"
        return "scalar"

    def merged(self) -> list:
        """The global result: records in global document order, or the
        per-shard scalar values in shard order.

        For node-sets this is the collection's ordering guarantee:
        concatenation of the (already document-ordered) per-shard
        record runs in shard order — equal to sorting every record by
        ``(shard, sort_key)``, with no interleaving and no duplicates
        across shards.
        """
        if self.kind == "node-set":
            merged: List[NodeRecord] = []
            for shard in self.shards:
                merged.extend(shard.value)
            return merged
        return [shard.value for shard in self.shards]

    def canonical(self) -> tuple:
        """Canonical comparison form (differential-oracle compatible):
        one ``(shard id, canonical payload)`` pair per shard."""
        return tuple(
            (shard.shard, _canonical_of(shard)) for shard in self.shards
        )


def _canonical_of(shard: ShardResult) -> tuple:
    if shard.kind == "node-set":
        return (
            "node-set",
            tuple(
                (tuple(r.sort_key), r.kind, r.name, r.string_value)
                for r in shard.value
            ),
        )
    return (shard.kind, shard.value)


@dataclass(frozen=True)
class CollectionStats:
    """Immutable statistics snapshot of one :class:`Collection`.

    Task counters are per-*shard-task* (one query over N shards
    submits N, whether or not the synopsis then prunes some of them),
    and reconcile at every quiescent point: ``submitted == completed +
    timed_out + cancelled + failed + shards_pruned``.
    """

    name: str
    fingerprint: str
    shard_count: int
    workers: int
    queries: int
    submitted: int
    completed: int
    timed_out: int
    cancelled: int
    failed: int
    shards_pruned: int
    per_shard: Mapping[int, Mapping[str, int]]
    scatter_seconds: float
    gather_seconds: float
    plans_shipped: int
    shipped_cache_hits: int
    recycles: int

    def to_dict(self) -> dict:
        """A plain-dict rendering (safe for ``json.dumps``): per-shard
        counter keys become strings, as JSON object keys must be."""
        data = asdict(self)
        data["per_shard"] = {
            str(shard): dict(counters)
            for shard, counters in self.per_shard.items()
        }
        return data


class Collection:
    """Many stored documents, one namespace, one process pool.

    Open an existing collection directory (written by
    :func:`repro.collection.catalog.create_collection`) and serve
    queries across every shard::

        with Collection("corpus.coll", workers=4) as coll:
            result = coll.evaluate("//item[@price > 100]")
            for record in result.merged():
                print(record.shard, record.string_value)

    ``index_mode`` and ``optimizer`` mirror the single-document
    :class:`~repro.engine.session.XPathEngine` knobs and apply in every
    worker.  Queries are **concurrent**: any number of threads may call
    :meth:`evaluate` at once and their scatters interleave on the pool,
    multiplexed by query id — concurrency comes both from the shards
    fanning out across worker processes and from distinct queries
    overlapping in flight (duplicate concurrent requests are still
    coalesced by :meth:`XPathEngine.evaluate_collection` above this
    layer).  ``pruning`` (default on) lets the scatter skip shards
    whose mirrored path synopsis refutes the query's leading structural
    steps; pruned shards contribute provably-empty node-set slices and
    are counted in :class:`CollectionStats` — results are bit-identical
    with pruning on or off.
    """

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        *,
        workers: Optional[int] = None,
        index_mode: str = "auto",
        optimizer: str = "heuristic",
        options: Optional[TranslationOptions] = None,
        buffer_pages: int = DEFAULT_WORKER_BUFFER_PAGES,
        pruning: bool = True,
    ):
        if index_mode not in ("off", "auto", "force"):
            raise ValueError(
                f"index_mode must be 'off', 'auto' or 'force', "
                f"got {index_mode!r}"
            )
        if optimizer not in ("heuristic", "cost"):
            raise ValueError(
                f"optimizer must be 'heuristic' or 'cost', "
                f"got {optimizer!r}"
            )
        self.catalog: CollectionCatalog = load_catalog(directory)
        #: The collection fingerprint: keys plan caches and request
        #: coalescing above this layer (see ``docs/collection.md``).
        self.fingerprint: str = self.catalog.fingerprint()
        self.index_mode = index_mode
        self.optimizer = optimizer
        self.options = options or TranslationOptions()
        self.pruning = bool(pruning)
        self.pool = WorkerPool(
            self.catalog,
            workers,
            index_mode=index_mode,
            buffer_pages=buffer_pages,
        )
        self._lock = threading.Lock()
        self._qids = itertools.count(1)
        self._shipped: Dict[tuple, ShippedPlan] = {}
        self._closed = False
        # -- statistics (all guarded by self._lock) --------------------
        self._queries = 0
        self._counters = {key: 0 for key in OUTCOME_KEYS}
        self._per_shard: Dict[int, Dict[str, int]] = {
            info.shard: {key: 0 for key in OUTCOME_KEYS}
            for info in self.catalog.shards
        }
        self._scatter_seconds = 0.0
        self._gather_seconds = 0.0
        self._plans_shipped = 0
        self._shipped_hits = 0

    # -- basic properties ----------------------------------------------

    @property
    def name(self) -> str:
        return self.catalog.name

    @property
    def shard_count(self) -> int:
        return self.catalog.shard_count

    @property
    def workers(self) -> int:
        return self.pool.workers

    # -- plan shipping -------------------------------------------------

    def _ship(
        self,
        query: str,
        options: TranslationOptions,
        namespaces: Optional[Mapping[str, str]],
    ) -> ShippedPlan:
        key = (
            query,
            options,
            tuple(sorted((namespaces or {}).items())),
            self.index_mode,
            self.optimizer,
        )
        with self._lock:
            shipped = self._shipped.get(key)
            if shipped is not None:
                self._shipped_hits += 1
                return shipped
        shipped = ship_plan(
            query,
            options,
            index_mode=self.index_mode,
            optimizer=self.optimizer,
        )
        with self._lock:
            if len(self._shipped) >= SHIPPED_CACHE_LIMIT:
                self._shipped.pop(next(iter(self._shipped)))
            self._shipped[key] = shipped
            self._plans_shipped += 1
        return shipped

    # -- evaluation ----------------------------------------------------

    def evaluate(
        self,
        query: str,
        *,
        variables: Optional[Mapping[str, object]] = None,
        namespaces: Optional[Mapping[str, str]] = None,
        options: Optional[TranslationOptions] = None,
        timeout: Optional[float] = None,
        max_tuples: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cancel=None,
        pruning: Optional[bool] = None,
    ) -> CollectionResult:
        """Evaluate ``query`` over every shard and merge the results.

        Governance semantics: ``timeout`` is the *collection* deadline —
        every shard's worker-side governor is derived from it (queue
        wait included), and the first shard to trip it cancels the
        remaining shards' in-flight work.  ``max_tuples``/``max_bytes``
        budget each shard individually.  ``cancel`` is an optional
        :class:`~repro.engine.governor.CancelToken` observed parent-
        side between gather polls and propagated to the workers.
        ``pruning`` overrides the collection-level pruning default for
        this one query (``None`` inherits it); pruning never changes
        the result, only which shards the scatter actually ships to.

        Raises the highest-priority shard error when any shard fails
        (timeout/budget over crash over cancel) — never returns a
        partial result.
        """
        if self._closed:
            raise CollectionError("collection is closed")
        shipped = self._ship(query, options or self.options, namespaces)
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        limits = (timeout, deadline, max_tuples, max_bytes)
        started = time.perf_counter()
        qid = next(self._qids)
        prune = self.pruning if pruning is None else bool(pruning)
        pruned: List[int] = []
        tasks: Dict[int, tuple] = {}
        for info in self.catalog.shards:
            if (prune
                    and shipped.result_kind == "sequence"
                    and shipped.prune_paths is not None
                    and not shard_admits(info.synopsis,
                                         shipped.prune_paths)):
                pruned.append(info.shard)
                continue
            tasks[info.shard] = (
                "query", qid, info.shard, shipped,
                dict(variables or {}), dict(namespaces or {}), limits,
            )
        outcomes = self._run(qid, tasks, pruned, deadline, cancel)
        elapsed = time.perf_counter() - started
        return self._resolve(outcomes, elapsed)

    def _run(
        self,
        qid: int,
        tasks: Dict[int, tuple],
        pruned: List[int],
        deadline: Optional[float],
        cancel,
    ) -> Dict[int, ShardOutcome]:
        """Scatter + gather one query, concurrently, with accounting.

        Scatters are *not* serialized: the pool multiplexes any number
        of in-flight queries by qid, so this method only registers the
        flight, waits for it, and accounts the outcomes.  ``pruned``
        shards never touch the pool — the parent resolves them here to
        synthesized empty node-set outcomes, counted under their own
        key.  Every submitted shard (scattered or pruned) resolves to
        exactly one outcome key, parent-side only.
        """
        with self._lock:
            for shard in tasks:
                self._counters["submitted"] += 1
                self._per_shard[shard]["submitted"] += 1
            for shard in pruned:
                self._counters["submitted"] += 1
                self._per_shard[shard]["submitted"] += 1
            self._queries += 1
        outcomes: Dict[int, ShardOutcome] = {
            shard: ShardOutcome(
                shard, payload=("node-set", ()), pruned=True
            )
            for shard in pruned
        }
        scatter_started = time.perf_counter()
        gather_started = scatter_started
        finished = scatter_started
        if tasks:
            flight = self.pool.scatter(qid, tasks, deadline)
            gather_started = time.perf_counter()
            outcomes.update(self.pool.gather(
                flight, cancel_check=(
                    (lambda: cancel.cancelled)
                    if cancel is not None else None
                ),
            ))
            finished = time.perf_counter()
        with self._lock:
            self._scatter_seconds += gather_started - scatter_started
            self._gather_seconds += finished - gather_started
            for shard, outcome in outcomes.items():
                key = _outcome_key(outcome)
                self._counters[key] += 1
                self._per_shard[shard][key] += 1
        return outcomes

    def _resolve(
        self, outcomes: Dict[int, ShardOutcome], elapsed: float
    ) -> CollectionResult:
        errors = [
            outcome.error
            for _, outcome in sorted(outcomes.items())
            if outcome.error is not None
        ]
        if errors:
            raise _primary_error(errors)
        shards = []
        for shard, outcome in sorted(outcomes.items()):
            kind, value = outcome.payload
            if kind == "node-set":
                value = tuple(
                    NodeRecord(shard, tuple(sort_key), node_kind,
                               name, string_value)
                    for sort_key, node_kind, name, string_value in value
                )
            shards.append(
                ShardResult(
                    shard=shard, kind=kind, value=value,
                    elapsed=outcome.elapsed,
                )
            )
        return CollectionResult(shards, elapsed)

    # -- test hooks ----------------------------------------------------

    def _debug_sleep(
        self,
        seconds: Union[float, Mapping[int, float]],
        *,
        timeout: Optional[float] = None,
        timeouts: Optional[Mapping[int, float]] = None,
        cancel=None,
        shards: Optional[Sequence[int]] = None,
    ) -> CollectionResult:
        """Scatter governed sleeps instead of a query (tests only).

        ``seconds`` may be one duration for every shard or a per-shard
        mapping; ``timeouts`` optionally overrides the deadline per
        shard (a shard absent from it runs deadline-free), which is how
        the regression tests arrange for *one* shard's deadline to
        expire while its siblings are mid-flight.  ``shards`` restricts
        the scatter to a subset of shard ids (default: all), which is
        how the concurrency tests park a sleep on *one* worker while a
        real query overlaps on the others.  Exercises the full
        scatter-gather machinery — governance, cancellation, crash
        handling, accounting — with a deterministic wall-clock payload.
        """
        per_shard = (
            seconds if isinstance(seconds, Mapping)
            else {info.shard: seconds for info in self.catalog.shards}
        )
        chosen = (
            set(shards) if shards is not None
            else {info.shard for info in self.catalog.shards}
        )
        now = time.monotonic()
        deadline = now + timeout if timeout is not None else None
        qid = next(self._qids)
        tasks = {}
        for info in self.catalog.shards:
            if info.shard not in chosen:
                continue
            shard_timeout = timeout
            shard_deadline = deadline
            if timeouts is not None:
                shard_timeout = timeouts.get(info.shard)
                shard_deadline = (
                    now + shard_timeout
                    if shard_timeout is not None else None
                )
            tasks[info.shard] = (
                "sleep", qid, info.shard,
                float(per_shard.get(info.shard, 0.0)),
                (shard_timeout, shard_deadline, None, None),
            )
        started = time.perf_counter()
        outcomes = self._run(qid, tasks, [], deadline, cancel)
        return self._resolve(outcomes, time.perf_counter() - started)

    # -- statistics ----------------------------------------------------

    def stats(self) -> CollectionStats:
        with self._lock:
            return CollectionStats(
                name=self.name,
                fingerprint=self.fingerprint,
                shard_count=self.shard_count,
                workers=self.workers,
                queries=self._queries,
                submitted=self._counters["submitted"],
                completed=self._counters["completed"],
                timed_out=self._counters["timed_out"],
                cancelled=self._counters["cancelled"],
                failed=self._counters["failed"],
                shards_pruned=self._counters["pruned"],
                per_shard={
                    shard: dict(counters)
                    for shard, counters in self._per_shard.items()
                },
                scatter_seconds=self._scatter_seconds,
                gather_seconds=self._gather_seconds,
                plans_shipped=self._plans_shipped,
                shipped_cache_hits=self._shipped_hits,
                recycles=self.pool.recycles,
            )

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.pool.close()

    def __enter__(self) -> "Collection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _outcome_key(outcome: ShardOutcome) -> str:
    if outcome.pruned:
        return "pruned"
    if outcome.error is None:
        return "completed"
    if isinstance(outcome.error, QueryTimeoutError):
        return "timed_out"
    if isinstance(outcome.error, QueryCancelledError):
        return "cancelled"
    return "failed"


def _primary_error(errors: List[Exception]) -> Exception:
    """The error a failed collection query surfaces.

    Deadline/budget trips outrank crashes (the governance contract —
    a governed query raises exactly a governance error — must survive
    the cancellation fan-out a trip triggers), crashes outrank the
    secondary ``QueryCancelledError`` noise of cancelled siblings.
    """
    for cls in (QueryTimeoutError, QueryBudgetError):
        for error in errors:
            if isinstance(error, cls):
                return error
    shard_failures = [
        error for error in errors if isinstance(error, ShardFailedError)
    ]
    for failure in shard_failures:
        # The shard whose worker actually died is the root cause; the
        # "pool-recycled" siblings are collateral.
        if failure.reason != "pool-recycled":
            return failure
    if shard_failures:
        return shard_failures[0]
    for error in errors:
        if not isinstance(error, QueryCancelledError):
            return error
    return errors[0]
