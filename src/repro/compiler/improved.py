"""Improved-translation policies (paper section 4).

The canonical translation (section 3) is correct but can be exponential;
section 4 improves it with four independent devices, each of which is a
flag here so the ablation benchmarks can isolate its effect:

* ``push_dup_elimination`` (4.1) — insert Π^D after every *ppd* step
  instead of only once at the end,
* ``stacked`` (4.2.1) — translate outer paths into a single operator
  pipeline instead of a chain of d-joins,
* ``memox`` (4.2.2) — wrap relative inner paths in the MemoX operator
  when their context nodes may repeat,
* ``mat_expensive`` (4.3.2) — evaluate expensive predicate clauses last,
  behind memoizing χ^mat maps.

``TranslationOptions.canonical()`` disables all four; ``improved()`` (the
default) enables them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.xpath.axes import Axis, ppd


@dataclass(frozen=True)
class TranslationOptions:
    """Knobs of the translation and code-generation phases."""

    #: Section 4.1: Π^D after every duplicate-producing step.
    push_dup_elimination: bool = True
    #: Section 4.2.1: stacked translation of outer paths (no d-joins).
    stacked: bool = True
    #: Section 4.2.2: MemoX around relative inner paths.
    memox: bool = True
    #: Section 4.3.2: χ^mat + evaluation reordering for expensive clauses.
    mat_expensive: bool = True
    #: Use the paper's anti-join translation for node-set ``!=`` instead
    #: of the spec-faithful ``≠`` semi-join (see DESIGN.md).
    paper_neq: bool = False
    #: Subscript backend: 'nvm' (paper) or 'interp' (reference).
    subscript_mode: str = "nvm"
    #: Section-7 outlook: property-driven removal of provably redundant
    #: duplicate eliminations and sorts (see repro.compiler.optimize).
    optimize: bool = False

    @classmethod
    def canonical(cls, **overrides) -> "TranslationOptions":
        """The section-3 canonical translation."""
        base = cls(
            push_dup_elimination=False,
            stacked=False,
            memox=False,
            mat_expensive=False,
        )
        return replace(base, **overrides)

    @classmethod
    def improved(cls, **overrides) -> "TranslationOptions":
        """The section-4 improved translation (the default)."""
        return replace(cls(), **overrides)

    # ------------------------------------------------------------------
    # Policy decisions used by the translator
    # ------------------------------------------------------------------

    def dedup_after_step(self, axis: Axis) -> bool:
        """Insert Π^D directly after a step along ``axis``? (4.1)"""
        return self.push_dup_elimination and ppd(axis)

    def memoize_inner_path(self, outer_axis: Axis | None) -> bool:
        """Wrap a relative inner path in MemoX? (4.2.2)

        The paper memoizes when the step feeding the predicate may hand
        over the same context node repeatedly — i.e. after a ppd step.
        When duplicate elimination is *not* pushed (canonical mode with
        memox forced on), every axis may repeat contexts; this refinement
        is irrelevant there because ``memox`` is off in canonical mode.
        """
        if not self.memox:
            return False
        if outer_axis is None:
            return False
        if not self.push_dup_elimination:
            return True
        return ppd(outer_axis)
