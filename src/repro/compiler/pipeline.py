"""The compiler pipeline: string in, executable plan out.

Orchestrates the six phases of section 5.1.  Phase order here is
parse → semantic analysis → rewrite (constant folding) → normalization →
translation → code generation; folding runs before normalization so the
cheap/expensive cost classification sees the folded clauses.

:class:`CompiledQuery` is the user-facing artifact: it exposes the AST,
the logical plan (pretty-printable) and ``evaluate()``.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from typing import Dict, List, Mapping, Optional

from repro.algebra import operators as ops
from repro.algebra import scalar as S
from repro.algebra.printer import plan_to_string
from repro.algebra.properties import free_variables
from repro.compiler.codegen import CodeGenerator
from repro.compiler.improved import TranslationOptions
from repro.compiler.normalize import normalize
from repro.compiler.rewrite import fold_constants
from repro.compiler.semantic import analyze
from repro.compiler.translate import (
    TOP_CONTEXT_ATTR,
    TOP_POSITION_ATTR,
    TOP_SIZE_ATTR,
    TranslationResult,
    Translator,
)
from repro.dom.node import Node
from repro.engine.context import ExecutionContext
from repro.engine.iterator import RuntimeState
from repro.engine.plan import OperatorStats, PhysicalPlan
from repro.engine.tuples import AttributeManager
from repro.errors import CodegenError
from repro.xpath.datamodel import XPathValue
from repro.xpath.parser import parse_xpath
from repro.xpath.xast import Expr

#: Attributes the execution context may bind (everything else is a bug).
_ALLOWED_FREE = frozenset(
    {TOP_CONTEXT_ATTR, TOP_POSITION_ATTR, TOP_SIZE_ATTR}
)

#: Result attribute of top-level scalar plans.
_SCALAR_RESULT_ATTR = "result"


class CompiledQuery:
    """One compiled XPath query, ready for repeated execution.

    Thread model: the immutable artifacts (AST, translation result,
    logical plan) are shared, but a :class:`PhysicalPlan` owns a mutable
    register file and live iterator state, so plan *instances* are
    thread-confined.  Each thread that executes this query gets its own
    instance, re-generated from the shared translation on first use
    (:attr:`thread_physical`); a cached ``CompiledQuery`` can therefore
    be executed from any number of threads simultaneously without two of
    them ever sharing a live iterator.
    """

    def __init__(
        self,
        source: str,
        ast: Expr,
        translation: TranslationResult,
        physical: PhysicalPlan,
        options: TranslationOptions,
    ):
        self.source = source
        self.ast = ast
        self.translation = translation
        #: The primary plan instance (owned by the compiling thread).
        self.physical = physical
        self.options = options
        self._instances_lock = threading.Lock()
        self._instances: Dict[int, PhysicalPlan] = {
            threading.get_ident(): physical
        }
        #: Set when TranslationOptions(optimize=True) ran the plan pass.
        self.optimizer_report = None
        #: Seconds spent in each compiler phase (parse, semantic,
        #: rewrite, normalize, translate, optimize, codegen).
        self.phase_timings: Dict[str, float] = {}
        #: Default prefix bindings (set by ``compile_xpath(namespaces=)``),
        #: used when ``evaluate`` is called without explicit namespaces.
        self.default_namespaces: Optional[Mapping[str, str]] = None
        #: Python-codegen backend state: "pending" until first requested,
        #: then "compiled" or "unsupported".  The generated function is
        #: cached here, alongside the plan, so a striped-cache hit reuses
        #: both under the same fingerprint.
        self._codegen_lock = threading.Lock()
        self._generated = None
        self.codegen_state = "pending"
        self.codegen_detail = ""

    # ------------------------------------------------------------------

    def ensure_generated(self):
        """Compile this plan to Python, once; None if unsupported.

        Thread-safe and idempotent: the first caller pays the (one-time)
        emission cost, everyone else reads the cached outcome.  A plan
        the backend cannot compile is remembered as ``"unsupported"``
        with the reason in :attr:`codegen_detail` so callers fall back
        to the interpreter without retrying emission per evaluation.
        """
        if self.codegen_state != "pending":
            return self._generated
        with self._codegen_lock:
            if self.codegen_state != "pending":
                return self._generated
            from repro import codegen as pycodegen

            start = time.perf_counter()
            try:
                generated = pycodegen.generate_python(
                    self.translation, self.options, source=self.source
                )
            except CodegenError as error:
                self.codegen_detail = str(error)
                self.codegen_state = "unsupported"
            else:
                self._generated = generated
                self.codegen_state = "compiled"
            self.phase_timings["pycodegen"] = (
                time.perf_counter() - start
            )
        return self._generated

    # ------------------------------------------------------------------

    @property
    def thread_physical(self) -> PhysicalPlan:
        """The calling thread's private plan instance.

        The compiling thread gets the primary instance; any other thread
        re-generates an equivalent instance from the shared translation
        on first use and reuses it afterwards (codegen only reads the
        translation, so concurrent first touches are safe).
        """
        ident = threading.get_ident()
        instance = self._instances.get(ident)
        if instance is None:
            instance = generate_physical(self.translation, self.options)
            with self._instances_lock:
                instance = self._instances.setdefault(ident, instance)
        return instance

    def instances(self) -> List[PhysicalPlan]:
        """Every plan instance materialized so far (all threads)."""
        with self._instances_lock:
            return list(self._instances.values())

    @property
    def logical_plan(self) -> ops.Operator:
        """The logical algebra plan (scalars are wrapped in a χ over □)."""
        assert self.translation.plan is not None
        return self.translation.plan

    def explain(self) -> str:
        """The logical plan rendered as an indented tree."""
        return plan_to_string(self.logical_plan)

    def explain_cost(self) -> str:
        """The logical plan annotated with cardinality/cost estimates.

        Uses the estimates the optimizer pass attached (synopsis-fed
        when the target had fresh indexes); when the pass did not run —
        or ran without a synopsis — a defaults-only estimation is done
        on the fly, so the output always carries ``rows≈``/``cost``
        annotations.
        """
        from repro.compiler.cost import PlanEstimator, explain_with_costs

        report = self.optimizer_report
        estimates = getattr(report, "estimates", None)
        if estimates is None:
            estimates = PlanEstimator(None).estimate(self.logical_plan)
        return explain_with_costs(self.logical_plan, estimates)

    def plan_summary(self) -> dict:
        """JSON-friendly plan + rule trace + estimates (plan corpus).

        Deterministic for a fixed (query, document, optimizer mode):
        floats are rounded, dict ordering follows the plan tree.
        """
        from repro.compiler.cost import summarize_plan

        report = self.optimizer_report
        summary: dict = {
            "mode": getattr(report, "mode", "heuristic")
            if report is not None else "none",
            "tree": summarize_plan(
                self.logical_plan, getattr(report, "estimates", None)
            ),
        }
        if report is not None:
            summary["rules"] = list(report.rules)
            summary["est_root_rows"] = report.est_root_rows
            summary["est_cost"] = report.est_cost
        return summary

    @property
    def emits_document_order(self) -> bool:
        """True when the plan provably yields nodes in document order."""
        from repro.algebra.properties import is_document_ordered

        return (
            self.translation.kind == "sequence"
            and is_document_ordered(self.logical_plan)
        )

    def evaluate(
        self,
        context_node: Node,
        variables: Optional[Mapping[str, XPathValue]] = None,
        namespaces: Optional[Mapping[str, str]] = None,
        position: int = 1,
        size: int = 1,
        ordered: bool = False,
        governor=None,
        codegen: str = "off",
    ) -> XPathValue:
        """Evaluate against a context node.

        Node-set results are returned as duplicate-free lists (in no
        particular order — XPath 1.0 node-sets are unordered).  Pass
        ``ordered=True`` for document-order results; when the order
        analysis proves the pipeline already emits document order the
        sort is skipped (the paper's section-7 "interesting orders").
        A :class:`~repro.engine.governor.ResourceGovernor` passed as
        ``governor`` bounds the execution (deadline, budgets, cancel)
        and makes it raise a typed governance error instead of
        returning a partial result.

        ``codegen`` selects the backend: ``"off"`` interprets the
        iterator tree, ``"auto"`` runs the generated Python function
        when the plan compiles (interpreting otherwise), ``"force"``
        raises :class:`~repro.errors.CodegenError` if it does not.
        """
        context = ExecutionContext(
            context_node=context_node,
            variables=dict(variables or {}),
            namespaces=dict(namespaces or self.default_namespaces or {}),
            position=position,
            size=size,
            governor=governor,
        )
        generated = self._select_generated(codegen)
        if generated is not None:
            result = generated.execute(context)
            if ordered and isinstance(result, list):
                if self.emits_document_order:
                    generated.stats["order_sort_avoided"] += 1
                else:
                    result.sort(key=lambda node: node.sort_key)
            return result
        physical = self.thread_physical
        result = physical.execute(context)
        if ordered and isinstance(result, list):
            if self.emits_document_order:
                physical.stats["order_sort_avoided"] += 1
            else:
                result.sort(key=lambda node: node.sort_key)
        return result

    def evaluate_stream(
        self,
        context_node: Node,
        variables: Optional[Mapping[str, XPathValue]] = None,
        namespaces: Optional[Mapping[str, str]] = None,
        ordered: bool = False,
        governor=None,
    ):
        """Evaluate lazily, yielding result items one at a time.

        The streaming sibling of :meth:`evaluate`: node-set results are
        pulled from the iterator engine on demand instead of collected,
        so a consumer that pages them out (the network server) never
        materializes the whole answer.  Scalar plans yield their single
        value.  ``ordered=True`` streams directly when the order
        analysis proves the pipeline emits document order; otherwise it
        falls back to materialize-and-sort (counted as
        ``stream_sort_fallbacks`` — the answer cannot be known in order
        before it is complete).

        Always interprets the iterator tree (the generated-Python
        backend materializes internally and gains nothing from
        streaming).  The returned generator must be consumed on the
        thread that created it — it drives that thread's private plan
        instance — and closed before the same thread starts another
        evaluation of this query.
        """
        context = ExecutionContext(
            context_node=context_node,
            variables=dict(variables or {}),
            namespaces=dict(namespaces or self.default_namespaces or {}),
            governor=governor,
        )
        physical = self.thread_physical
        if (
            ordered
            and self.translation.kind == "sequence"
            and not self.emits_document_order
        ):
            physical.stats["stream_sort_fallbacks"] += 1
            result = physical.execute(context)
            assert isinstance(result, list)
            result.sort(key=lambda node: node.sort_key)
            return iter(result)
        if ordered and self.emits_document_order:
            physical.stats["order_sort_avoided"] += 1
        return physical.execute_stream(context)

    def _select_generated(self, codegen: str):
        """Resolve a ``codegen`` mode to a generated plan (or None)."""
        if codegen == "off":
            return None
        if codegen not in ("auto", "force"):
            raise ValueError(
                f"codegen must be 'auto', 'off' or 'force', "
                f"got {codegen!r}"
            )
        generated = self.ensure_generated()
        if generated is None and codegen == "force":
            raise CodegenError(
                f"plan for {self.source!r} has no Python codegen: "
                f"{self.codegen_detail}"
            )
        return generated

    def operator_stats(self) -> List[OperatorStats]:
        """Per-operator ``next()``-call and tuple counters (preorder).

        Counters are summed over every thread's plan instance — all
        instances are generated from the same translation, so their
        preorder operator walks line up one-to-one.
        """
        instances = self.instances()
        merged = instances[0].operator_stats()
        for instance in instances[1:]:
            merged = [
                OperatorStats(
                    op_id=base.op_id,
                    operator=base.operator,
                    next_calls=base.next_calls + extra.next_calls,
                    tuples_out=base.tuples_out + extra.tuples_out,
                )
                for base, extra in zip(merged, instance.operator_stats())
            ]
        return merged

    def count(self, context_node: Node, **kwargs) -> int:
        """Count result tuples without collecting them."""
        context = ExecutionContext(
            context_node=context_node,
            variables=dict(kwargs.get("variables") or {}),
            namespaces=dict(
                kwargs.get("namespaces") or self.default_namespaces or {}
            ),
            governor=kwargs.get("governor"),
        )
        generated = self._select_generated(kwargs.get("codegen", "off"))
        if generated is not None:
            return generated.execute_count(context)
        return self.thread_physical.execute_count(context)

    def reset_stats(self) -> None:
        """Zero runtime counters on every thread's plan instance."""
        for instance in self.instances():
            instance.reset_stats()

    @property
    def stats(self) -> Counter:
        """Runtime counters summed over every thread's plan instance.

        Includes the generated-function counters when the Python
        backend has run (generated plans are shared across threads, so
        theirs is a single counter, not per-instance).
        """
        instances = self.instances()
        generated = self._generated
        if len(instances) == 1 and generated is None:
            return instances[0].stats
        merged: Counter = Counter()
        for instance in instances:
            merged.update(instance.stats)
        if generated is not None:
            merged.update(generated.stats)
        return merged


class XPathCompiler:
    """Compiles XPath 1.0 strings into executable NQE plans.

    ``index_info``/``index_mode`` parameterize the optimizer's
    index-routing family for one evaluation target: ``index_info`` is
    the target's :class:`~repro.index.runtime.DocumentIndexes` (or
    ``None``), ``index_mode`` one of ``"auto"``/``"force"``.  They are
    *per-target* compile inputs, not translation options — the session
    layer keys its plan cache on the target's index signature so plans
    routed for one indexed store are never replayed against another.
    """

    def __init__(self, options: Optional[TranslationOptions] = None,
                 index_info=None, index_mode: str = "auto",
                 optimizer: str = "heuristic"):
        self.options = options or TranslationOptions()
        self.index_info = index_info
        self.index_mode = index_mode
        #: "heuristic" (selectivity gates) or "cost" (synopsis-fed cost
        #: comparison); see :mod:`repro.compiler.optimize`.
        self.optimizer = optimizer

    def compile(self, query: str) -> CompiledQuery:
        timings: Dict[str, float] = {}

        def timed(phase: str, run):
            start = time.perf_counter()
            result = run()
            timings[phase] = time.perf_counter() - start
            return result

        # Phases 1-4: parse, analyze, fold, normalize.
        ast = timed("parse", lambda: parse_xpath(query))
        timed("semantic", lambda: analyze(ast))
        ast = timed("rewrite", lambda: fold_constants(ast))
        timed("normalize", lambda: normalize(ast))

        # Phase 5: translation into the algebra.
        translator = Translator(self.options)
        translation = timed("translate", lambda: translator.translate(ast))
        optimizer_report = None
        if translation.kind == "scalar":
            # Wrap the top-level scalar in χ over □ so there is a single
            # uniform plan representation.
            assert translation.scalar is not None
            translation.plan = ops.MapOp(
                ops.SingletonScan(),
                _SCALAR_RESULT_ATTR,
                translation.scalar,
                is_result=True,
            )
            translation.result_attr = _SCALAR_RESULT_ATTR

        # Phase 5b (optional): rule-driven plan optimization.  An
        # indexed target enables the pass even without optimize=True —
        # index routing is what makes the target's indexes reachable —
        # and so does the cost optimizer (its estimates feed EXPLAIN).
        if (self.options.optimize or self.index_info is not None
                or self.optimizer == "cost"):
            from repro.compiler.optimize import optimize_plan

            assert translation.plan is not None
            start = time.perf_counter()
            translation.plan, optimizer_report = optimize_plan(
                translation.plan,
                index_info=self.index_info,
                index_mode=self.index_mode,
                optimizer=self.optimizer,
            )
            timings["optimize"] = time.perf_counter() - start

        # Phase 6: code generation.
        physical = timed("codegen", lambda: self._generate(translation))
        compiled = CompiledQuery(
            query, ast, translation, physical, self.options
        )
        compiled.optimizer_report = optimizer_report
        compiled.phase_timings = timings
        return compiled

    # ------------------------------------------------------------------

    def _generate(self, translation: TranslationResult) -> PhysicalPlan:
        return generate_physical(translation, self.options)


def generate_physical(
    translation: TranslationResult, options: TranslationOptions
) -> PhysicalPlan:
    """Generate a fresh physical plan instance from a translation.

    Pure function of its (read-only) inputs: each call builds a new
    register file, runtime state and iterator tree, so repeated calls
    yield independent, thread-confined instances of the same plan —
    this is how :attr:`CompiledQuery.thread_physical` re-instantiates
    cached plans for new threads.
    """
    plan = translation.plan
    assert plan is not None and translation.result_attr is not None

    free = free_variables(plan)
    unknown = free - _ALLOWED_FREE
    if unknown:
        raise CodegenError(
            f"plan has unexpected free attributes: {sorted(unknown)}"
        )

    manager = AttributeManager()
    runtime = RuntimeState(regs=[], context=None)  # type: ignore[arg-type]
    generator = CodeGenerator(runtime, manager, options)
    root = generator.build(plan)
    result_slot = manager.slot(translation.result_attr)

    runtime.regs = manager.make_registers()
    return PhysicalPlan(
        root=root,
        runtime=runtime,
        manager=manager,
        result_slot=result_slot,
        kind=translation.kind,
        context_slot=manager.lookup(TOP_CONTEXT_ATTR),
        position_slot=manager.lookup(TOP_POSITION_ATTR),
        size_slot=manager.lookup(TOP_SIZE_ATTR),
        resettable=generator.resettable,
    )
