"""The compiler pipeline: string in, executable plan out.

Orchestrates the six phases of section 5.1.  Phase order here is
parse → semantic analysis → rewrite (constant folding) → normalization →
translation → code generation; folding runs before normalization so the
cheap/expensive cost classification sees the folded clauses.

:class:`CompiledQuery` is the user-facing artifact: it exposes the AST,
the logical plan (pretty-printable) and ``evaluate()``.
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional

from repro.algebra import operators as ops
from repro.algebra import scalar as S
from repro.algebra.printer import plan_to_string
from repro.algebra.properties import free_variables
from repro.compiler.codegen import CodeGenerator
from repro.compiler.improved import TranslationOptions
from repro.compiler.normalize import normalize
from repro.compiler.rewrite import fold_constants
from repro.compiler.semantic import analyze
from repro.compiler.translate import (
    TOP_CONTEXT_ATTR,
    TOP_POSITION_ATTR,
    TOP_SIZE_ATTR,
    TranslationResult,
    Translator,
)
from repro.dom.node import Node
from repro.engine.context import ExecutionContext
from repro.engine.iterator import RuntimeState
from repro.engine.plan import PhysicalPlan
from repro.engine.tuples import AttributeManager
from repro.errors import CodegenError
from repro.xpath.datamodel import XPathValue
from repro.xpath.parser import parse_xpath
from repro.xpath.xast import Expr

#: Attributes the execution context may bind (everything else is a bug).
_ALLOWED_FREE = frozenset(
    {TOP_CONTEXT_ATTR, TOP_POSITION_ATTR, TOP_SIZE_ATTR}
)

#: Result attribute of top-level scalar plans.
_SCALAR_RESULT_ATTR = "result"


class CompiledQuery:
    """One compiled XPath query, ready for repeated execution."""

    def __init__(
        self,
        source: str,
        ast: Expr,
        translation: TranslationResult,
        physical: PhysicalPlan,
        options: TranslationOptions,
    ):
        self.source = source
        self.ast = ast
        self.translation = translation
        self.physical = physical
        self.options = options
        #: Set when TranslationOptions(optimize=True) ran the plan pass.
        self.optimizer_report = None
        #: Seconds spent in each compiler phase (parse, semantic,
        #: rewrite, normalize, translate, optimize, codegen).
        self.phase_timings: Dict[str, float] = {}
        #: Default prefix bindings (set by ``compile_xpath(namespaces=)``),
        #: used when ``evaluate`` is called without explicit namespaces.
        self.default_namespaces: Optional[Mapping[str, str]] = None

    # ------------------------------------------------------------------

    @property
    def logical_plan(self) -> ops.Operator:
        """The logical algebra plan (scalars are wrapped in a χ over □)."""
        assert self.translation.plan is not None
        return self.translation.plan

    def explain(self) -> str:
        """The logical plan rendered as an indented tree."""
        return plan_to_string(self.logical_plan)

    @property
    def emits_document_order(self) -> bool:
        """True when the plan provably yields nodes in document order."""
        from repro.algebra.properties import is_document_ordered

        return (
            self.translation.kind == "sequence"
            and is_document_ordered(self.logical_plan)
        )

    def evaluate(
        self,
        context_node: Node,
        variables: Optional[Mapping[str, XPathValue]] = None,
        namespaces: Optional[Mapping[str, str]] = None,
        position: int = 1,
        size: int = 1,
        ordered: bool = False,
    ) -> XPathValue:
        """Evaluate against a context node.

        Node-set results are returned as duplicate-free lists (in no
        particular order — XPath 1.0 node-sets are unordered).  Pass
        ``ordered=True`` for document-order results; when the order
        analysis proves the pipeline already emits document order the
        sort is skipped (the paper's section-7 "interesting orders").
        """
        context = ExecutionContext(
            context_node=context_node,
            variables=dict(variables or {}),
            namespaces=dict(namespaces or self.default_namespaces or {}),
            position=position,
            size=size,
        )
        result = self.physical.execute(context)
        if ordered and isinstance(result, list):
            if self.emits_document_order:
                self.physical.stats["order_sort_avoided"] += 1
            else:
                result.sort(key=lambda node: node.sort_key)
        return result

    def operator_stats(self):
        """Per-operator ``next()``-call and tuple counters (preorder)."""
        return self.physical.operator_stats()

    def count(self, context_node: Node, **kwargs) -> int:
        """Count result tuples without collecting them."""
        context = ExecutionContext(
            context_node=context_node,
            variables=dict(kwargs.get("variables") or {}),
            namespaces=dict(
                kwargs.get("namespaces") or self.default_namespaces or {}
            ),
        )
        return self.physical.execute_count(context)

    @property
    def stats(self):
        return self.physical.stats


class XPathCompiler:
    """Compiles XPath 1.0 strings into executable NQE plans."""

    def __init__(self, options: Optional[TranslationOptions] = None):
        self.options = options or TranslationOptions()

    def compile(self, query: str) -> CompiledQuery:
        timings: Dict[str, float] = {}

        def timed(phase: str, run):
            start = time.perf_counter()
            result = run()
            timings[phase] = time.perf_counter() - start
            return result

        # Phases 1-4: parse, analyze, fold, normalize.
        ast = timed("parse", lambda: parse_xpath(query))
        timed("semantic", lambda: analyze(ast))
        ast = timed("rewrite", lambda: fold_constants(ast))
        timed("normalize", lambda: normalize(ast))

        # Phase 5: translation into the algebra.
        translator = Translator(self.options)
        translation = timed("translate", lambda: translator.translate(ast))
        optimizer_report = None
        if translation.kind == "scalar":
            # Wrap the top-level scalar in χ over □ so there is a single
            # uniform plan representation.
            assert translation.scalar is not None
            translation.plan = ops.MapOp(
                ops.SingletonScan(),
                _SCALAR_RESULT_ATTR,
                translation.scalar,
                is_result=True,
            )
            translation.result_attr = _SCALAR_RESULT_ATTR

        # Phase 5b (optional): property-driven plan optimization.
        if self.options.optimize:
            from repro.compiler.optimize import optimize_plan

            assert translation.plan is not None
            start = time.perf_counter()
            translation.plan, optimizer_report = optimize_plan(
                translation.plan
            )
            timings["optimize"] = time.perf_counter() - start

        # Phase 6: code generation.
        physical = timed("codegen", lambda: self._generate(translation))
        compiled = CompiledQuery(
            query, ast, translation, physical, self.options
        )
        compiled.optimizer_report = optimizer_report
        compiled.phase_timings = timings
        return compiled

    # ------------------------------------------------------------------

    def _generate(self, translation: TranslationResult) -> PhysicalPlan:
        plan = translation.plan
        assert plan is not None and translation.result_attr is not None

        free = free_variables(plan)
        unknown = free - _ALLOWED_FREE
        if unknown:
            raise CodegenError(
                f"plan has unexpected free attributes: {sorted(unknown)}"
            )

        manager = AttributeManager()
        runtime = RuntimeState(regs=[], context=None)  # type: ignore[arg-type]
        generator = CodeGenerator(runtime, manager, self.options)
        root = generator.build(plan)
        result_slot = manager.slot(translation.result_attr)

        runtime.regs = manager.make_registers()
        return PhysicalPlan(
            root=root,
            runtime=runtime,
            manager=manager,
            result_slot=result_slot,
            kind=translation.kind,
            context_slot=manager.lookup(TOP_CONTEXT_ATTR),
            position_slot=manager.lookup(TOP_POSITION_ATTR),
            size_slot=manager.lookup(TOP_SIZE_ATTR),
            resettable=generator.resettable,
        )
