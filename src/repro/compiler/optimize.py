"""Property-driven logical plan optimization (paper section 7 outlook).

The paper closes with a list of algebraic optimizations to build on top
of the complete translation; this module implements the first of them —
"using properties of the intermediate results to avoid duplicate
elimination and sorting" [13]:

* **dedup pruning** — a Π^D whose input is provably duplicate-free
  (:func:`repro.algebra.properties.is_duplicate_free`) is removed;
* **sort pruning** — a Sort whose input is provably in document order
  (:func:`repro.algebra.properties.is_document_ordered`) is removed;
* **trivial selections** — σ[true()] is removed;
* **descendant merging** — the ``//t`` pattern
  ``Υ[child::t](Π^D?(Υ[descendant-or-self::node()]))`` collapses into a
  single ``Υ[descendant::t]`` step (an instance of the paper's
  "equivalences" item; cf. Helmer et al. [12]).  The rewrite requires
  that nothing else reads the intermediate step's attribute — a
  positional predicate grouping on it would change meaning.

When the evaluation target is a stored document with fresh structural
indexes (:mod:`repro.index`), a third rewrite family routes name steps
onto the index scans:

* ``Υ[descendant::n]`` (including the merged ``//n`` shape above)
  becomes :class:`~repro.algebra.operators.IndexDescendantScan`,
* ``Υ[child::n]`` becomes
  :class:`~repro.algebra.operators.IndexNameScan`,

but only for plain (unprefixed) name tests, and only when the path
synopsis says the index prunes: a descendant rewrite is declined when
more than :data:`DESCENDANT_SELECTIVITY_LIMIT` of all elements carry
the name (the posting list would enumerate most of the subtree anyway,
plus a parent-chain decode per candidate), a child rewrite only
happens below :data:`CHILD_SELECTIVITY_LIMIT` (the interval slice
over-approximates the child set by the whole subtree).  Declined
rewrites are counted in ``OptimizerReport.index_skips`` — the
``index_mode="force"`` engine option bypasses the selectivity gate.

The pass is enabled with ``TranslationOptions(optimize=True)`` and runs
between translation and code generation; it rewrites the plan in place
(including plans nested in subscripts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.algebra import operators as ops
from repro.algebra import scalar as S
from repro.algebra.properties import (
    _order_info,
    is_document_ordered,
    is_duplicate_free,
)
from repro.xpath.axes import Axis, NodeTestKind

#: Decline a descendant-index rewrite when the name covers more than
#: this fraction of all elements (the index would not prune).
DESCENDANT_SELECTIVITY_LIMIT = 0.5
#: A child-index rewrite probes the *subtree* and filters by parent, so
#: it only pays off for rare names.
CHILD_SELECTIVITY_LIMIT = 0.1


@dataclass
class OptimizerReport:
    """What the pass did — exposed for tests and EXPLAIN output."""

    removed_dedups: int = 0
    removed_sorts: int = 0
    removed_selections: int = 0
    merged_descendant_steps: int = 0
    #: Steps routed onto index scans / rewrites declined by the
    #: selectivity gate.
    index_scans: int = 0
    index_skips: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return (
            self.removed_dedups + self.removed_sorts
            + self.removed_selections + self.merged_descendant_steps
            + self.index_scans
        )


def optimize_plan(
    plan: ops.Operator,
    index_info=None,
    index_mode: str = "auto",
) -> tuple[ops.Operator, OptimizerReport]:
    """Apply the property-driven rewrites; returns (new root, report).

    ``index_info`` is the evaluation target's
    :class:`~repro.index.runtime.DocumentIndexes` (or ``None`` when the
    target carries no fresh indexes); with it, the index-routing family
    runs after the ``//t`` merge — so a merged ``Υ[descendant::t]`` is
    itself eligible — and before property pruning.  ``index_mode``
    ``"force"`` bypasses the synopsis selectivity gate.
    """
    from repro.algebra.visitor import transform_bottom_up

    report = OptimizerReport()
    reads = _attribute_reads(plan)
    plan = transform_bottom_up(
        plan, lambda node: _merge_one(node, reads, report)
    )
    if index_info is not None:
        plan = transform_bottom_up(
            plan,
            lambda node: _index_one(node, index_info, index_mode, report),
        )
    return transform_bottom_up(
        plan, lambda node: _prune_one(node, report)
    ), report


# ----------------------------------------------------------------------
# //t merging
# ----------------------------------------------------------------------

def _attribute_reads(plan: ops.Operator) -> dict:
    """How often each attribute is *read* anywhere in the plan."""
    reads: dict = {}

    def note(name) -> None:
        if name is not None:
            reads[name] = reads.get(name, 0) + 1

    def walk(node: ops.Operator) -> None:
        if isinstance(node, ops.UnnestMap):
            note(node.in_attr)
        elif isinstance(node, ops.PosMap):
            note(node.context_attr)
        elif isinstance(node, ops.TmpCs):
            note(node.context_attr)
            note(node.cp_attr)
        elif isinstance(node, ops.MemoX):
            for key in node.key_attrs:
                note(key)
        elif isinstance(node, ops.SortOp):
            note(node.attr)
        elif isinstance(node, ops.ProjectDup):
            note(node.attr)
        elif isinstance(node, ops.Aggregate):
            note(node.input_attr)
        elif isinstance(node, ops.Project):
            for old_name in node.renames.values():
                note(old_name)
        elif isinstance(node, ops.BinaryGroup):
            note(node.left_attr)
            note(node.right_attr)
            note(node.func_attr)
        for subscript in node.subscripts():
            for name in S.referenced_attrs(subscript):
                note(name)
            for nested in S.nested_plans(subscript):
                walk(nested.plan)
        for child in node.children():
            walk(child)

    walk(plan)
    return reads


def _merge_one(
    plan: ops.Operator, reads: dict, report: OptimizerReport
) -> ops.Operator:
    """Collapse Υ[child::t]∘(Π^D?)∘Υ[descendant-or-self::node()]."""
    if not (isinstance(plan, ops.UnnestMap) and plan.axis == Axis.CHILD):
        return plan
    inner = plan.child
    consumed_dedup = None
    if isinstance(inner, ops.ProjectDup) and inner.attr == plan.in_attr:
        consumed_dedup = inner
        inner = inner.child
    if not (
        isinstance(inner, ops.UnnestMap)
        and inner.axis == Axis.DESCENDANT_OR_SELF
        and inner.test_kind == NodeTestKind.NODE
        and inner.out_attr == plan.in_attr
    ):
        return plan
    # The intermediate attribute must have exactly the reads the pattern
    # itself performs (the child step, plus the consumed Π^D).
    expected_reads = 1 + (1 if consumed_dedup is not None else 0)
    if reads.get(plan.in_attr, 0) != expected_reads:
        return plan

    merged = ops.UnnestMap(
        inner.child, inner.in_attr, plan.out_attr, Axis.DESCENDANT,
        plan.test_kind, plan.test_name,
    )
    report.merged_descendant_steps += 1
    report.notes.append(
        f"merged descendant-or-self/child into {merged.label()}"
    )
    if _order_info(inner.child).single:
        # descendant:: from a single context node is duplicate-free.
        return merged
    return ops.ProjectDup(merged, plan.out_attr)


# ----------------------------------------------------------------------
# Index routing
# ----------------------------------------------------------------------

def _index_one(
    plan: ops.Operator, index_info, index_mode: str,
    report: OptimizerReport,
) -> ops.Operator:
    """Route one eligible name step onto an index scan."""
    if isinstance(plan, (ops.IndexNameScan, ops.IndexDescendantScan)):
        return plan
    if not isinstance(plan, ops.UnnestMap):
        return plan
    if plan.axis not in (Axis.CHILD, Axis.DESCENDANT):
        return plan
    name = plan.test_name
    if (plan.test_kind != NodeTestKind.NAME or not name or ":" in name):
        # Only plain-name tests: the posting list keys the stored QName,
        # which is a superset of a plain test's matches but not of a
        # prefix-resolved one.
        return plan

    synopsis = index_info.synopsis
    count = synopsis.element_count(name)
    total = synopsis.total_elements
    limit = (
        CHILD_SELECTIVITY_LIMIT
        if plan.axis == Axis.CHILD
        else DESCENDANT_SELECTIVITY_LIMIT
    )
    if index_mode != "force" and total and count > limit * total:
        report.index_skips += 1
        report.notes.append(
            f"declined index route for {plan.label()} "
            f"({count}/{total} elements)"
        )
        return plan

    cls = (
        ops.IndexNameScan
        if plan.axis == Axis.CHILD
        else ops.IndexDescendantScan
    )
    routed = cls(plan.child, plan.in_attr, plan.out_attr, name,
                 est_count=count)
    report.index_scans += 1
    report.notes.append(f"routed {plan.label()} onto {routed.label()}")
    return routed


def _prune_one(plan: ops.Operator, report: OptimizerReport) -> ops.Operator:
    if isinstance(plan, ops.ProjectDup):
        child = plan.child
        if plan.attr == child.result_attr and is_duplicate_free(child):
            report.removed_dedups += 1
            report.notes.append(f"removed {plan.label()}")
            return child
    if isinstance(plan, ops.SortOp):
        child = plan.child
        if plan.attr == child.result_attr and is_document_ordered(child):
            report.removed_sorts += 1
            report.notes.append(f"removed {plan.label()}")
            return child
    if isinstance(plan, ops.Select):
        predicate = plan.predicate
        if isinstance(predicate, S.SConst) and predicate.value is True:
            report.removed_selections += 1
            report.notes.append("removed σ[true()]")
            return plan.child
    return plan
