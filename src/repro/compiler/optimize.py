"""Rule-driven logical plan optimization (paper section 7 outlook).

The paper closes with a list of algebraic optimizations to build on top
of the complete translation; this module implements them as a small
rule catalog (each application is recorded in the
:class:`OptimizerReport` rule trace):

* ``merge-descendant`` — the ``//t`` pattern
  ``Υ[child::t](Π^D?(Υ[descendant-or-self::node()]))`` collapses into a
  single ``Υ[descendant::t]`` step (an instance of the paper's
  "equivalences" item; cf. Helmer et al. [12]).  The rewrite requires
  that nothing else reads the intermediate step's attribute — a
  positional predicate grouping on it would change meaning.
* ``route-index-scan`` — name steps move onto
  :class:`~repro.algebra.operators.IndexNameScan` /
  :class:`~repro.algebra.operators.IndexDescendantScan` when the
  evaluation target carries fresh structural indexes.
* ``prune-dedup`` / ``prune-sort`` / ``prune-select`` — "using
  properties of the intermediate results to avoid duplicate elimination
  and sorting" [13]: a Π^D whose input is provably duplicate-free, a
  Sort whose input is provably in document order, and σ[true()] are
  removed.
* ``prune-memo`` (cost mode only) — a 𝔐 memo whose producer is cheaper
  to recompute than to cache is dropped (the memo is a pure cache, so
  answers cannot change).

Two **optimizer modes** drive the route-index-scan decision:

``optimizer="heuristic"`` (default, the oracle baseline) keeps the two
hard-coded selectivity gates: a descendant rewrite is declined when
more than :data:`DESCENDANT_SELECTIVITY_LIMIT` of all elements carry
the name (the posting list would enumerate most of the subtree anyway),
a child rewrite only happens below :data:`CHILD_SELECTIVITY_LIMIT` (the
interval slice over-approximates the child set by the whole subtree).

``optimizer="cost"`` estimates every operator's cardinality with the
DataGuide frontier walk of :mod:`repro.compiler.cost` and routes a step
onto the index iff the modelled index cost (posting pages + candidate
re-tests) undercuts the modelled navigation cost — which also catches
the case the global gates cannot see: ``/xdoc/entry`` where ``entry``
is globally rare but absent *at this tree level*, so the index probe
would grub through the whole deep posting list while navigation touches
a handful of children.

In **both** modes an index rewrite is declined when there is no
evidence for it: an empty synopsis (stale or absent indexes observed
through a half-built ``index_info``) or a name with neither a synopsis
count nor a posting list.  Routing on missing evidence used to slip
through the old ``count > limit * total`` gate as "0% selectivity" and
silently fall back at runtime; it now counts as ``index_skips``.
``index_mode="force"`` bypasses every gate in both modes.

The pass is enabled with ``TranslationOptions(optimize=True)`` and runs
between translation and code generation; it rewrites the plan in place
(including plans nested in subscripts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.algebra import operators as ops
from repro.algebra import scalar as S
from repro.algebra.properties import (
    _order_info,
    is_document_ordered,
    is_duplicate_free,
)
from repro.compiler.cost import (
    DEFAULT_MODEL,
    Dist,
    PlanEstimates,
    PlanEstimator,
)
from repro.xpath.axes import Axis, NodeTestKind

#: Decline a descendant-index rewrite when the name covers more than
#: this fraction of all elements (the index would not prune).
DESCENDANT_SELECTIVITY_LIMIT = 0.5
#: A child-index rewrite probes the *subtree* and filters by parent, so
#: it only pays off for rare names.
CHILD_SELECTIVITY_LIMIT = 0.1

#: Valid ``optimizer=`` arguments.
OPTIMIZER_MODES = ("heuristic", "cost")


@dataclass
class OptimizerReport:
    """What the pass did — exposed for tests and EXPLAIN output."""

    removed_dedups: int = 0
    removed_sorts: int = 0
    removed_selections: int = 0
    merged_descendant_steps: int = 0
    #: Steps routed onto index scans / rewrites declined by the
    #: selectivity (or cost, or evidence) gate.
    index_scans: int = 0
    index_skips: int = 0
    #: 𝔐 memos dropped by the cost model (cost mode only).
    removed_memos: int = 0
    #: Which optimizer chose the plan: "heuristic" or "cost".
    mode: str = "heuristic"
    notes: List[str] = field(default_factory=list)
    #: Structured rule trace: {"rule", "action": "fired"|"declined",
    #: "detail"} per considered rewrite, in application order.
    rules: List[dict] = field(default_factory=list)
    #: Final-plan estimates (filled whenever a synopsis or the cost
    #: mode made estimation meaningful; serialized into EXPLAIN).
    est_root_rows: Optional[float] = None
    est_cost: Optional[dict] = None
    estimates: Optional[PlanEstimates] = field(
        default=None, repr=False, compare=False
    )

    @property
    def total(self) -> int:
        return (
            self.removed_dedups + self.removed_sorts
            + self.removed_selections + self.merged_descendant_steps
            + self.index_scans + self.removed_memos
        )

    @property
    def rules_fired(self) -> int:
        return sum(1 for r in self.rules if r["action"] == "fired")

    @property
    def rules_declined(self) -> int:
        return sum(1 for r in self.rules if r["action"] == "declined")

    def _record(self, rule: str, action: str, detail: str) -> None:
        self.rules.append({"rule": rule, "action": action, "detail": detail})
        self.notes.append(detail)


def optimize_plan(
    plan: ops.Operator,
    index_info=None,
    index_mode: str = "auto",
    optimizer: str = "heuristic",
) -> tuple[ops.Operator, OptimizerReport]:
    """Apply the rule catalog; returns (new root, report).

    ``index_info`` is the evaluation target's
    :class:`~repro.index.runtime.DocumentIndexes` (or ``None`` when the
    target carries no fresh indexes); with it, the index-routing family
    runs after the ``//t`` merge — so a merged ``Υ[descendant::t]`` is
    itself eligible — and before property pruning.  ``index_mode``
    ``"force"`` bypasses every routing gate; ``optimizer`` selects the
    hard-coded selectivity gates (``"heuristic"``) or the synopsis-fed
    cost comparison (``"cost"``).
    """
    from repro.algebra.visitor import transform_bottom_up

    if optimizer not in OPTIMIZER_MODES:
        raise ValueError(
            f"unknown optimizer {optimizer!r}; expected one of "
            f"{OPTIMIZER_MODES}"
        )
    report = OptimizerReport(mode=optimizer)
    synopsis = index_info.synopsis if index_info is not None else None
    estimator = PlanEstimator(synopsis)

    reads = _attribute_reads(plan)
    plan = transform_bottom_up(
        plan, lambda node: _merge_one(node, reads, report)
    )
    if index_info is not None:
        pre = estimator.estimate(plan) if optimizer == "cost" else None
        plan = transform_bottom_up(
            plan,
            lambda node: _index_one(
                node, index_info, index_mode, report, estimator, pre
            ),
        )
    plan = transform_bottom_up(plan, lambda node: _prune_one(node, report))
    if optimizer == "cost":
        mid = estimator.estimate(plan)
        plan = transform_bottom_up(
            plan, lambda node: _memo_one(node, report, estimator, mid)
        )
    if optimizer == "cost" or synopsis is not None:
        final = estimator.estimate(plan)
        report.estimates = final
        report.est_root_rows = round(final.root_rows, 3)
        report.est_cost = {
            "data_pages": round(final.total.data_pages, 3),
            "index_pages": round(final.total.index_pages, 3),
            "cpu": round(final.total.cpu, 3),
        }
    return plan, report


# ----------------------------------------------------------------------
# //t merging
# ----------------------------------------------------------------------

def _attribute_reads(plan: ops.Operator) -> dict:
    """How often each attribute is *read* anywhere in the plan."""
    reads: dict = {}

    def note(name) -> None:
        if name is not None:
            reads[name] = reads.get(name, 0) + 1

    def walk(node: ops.Operator) -> None:
        if isinstance(node, ops.UnnestMap):
            note(node.in_attr)
        elif isinstance(node, ops.PosMap):
            note(node.context_attr)
        elif isinstance(node, ops.TmpCs):
            note(node.context_attr)
            note(node.cp_attr)
        elif isinstance(node, ops.MemoX):
            for key in node.key_attrs:
                note(key)
        elif isinstance(node, ops.SortOp):
            note(node.attr)
        elif isinstance(node, ops.ProjectDup):
            note(node.attr)
        elif isinstance(node, ops.Aggregate):
            note(node.input_attr)
        elif isinstance(node, ops.Project):
            for old_name in node.renames.values():
                note(old_name)
        elif isinstance(node, ops.BinaryGroup):
            note(node.left_attr)
            note(node.right_attr)
            note(node.func_attr)
        for subscript in node.subscripts():
            for name in S.referenced_attrs(subscript):
                note(name)
            for nested in S.nested_plans(subscript):
                walk(nested.plan)
        for child in node.children():
            walk(child)

    walk(plan)
    return reads


def _merge_one(
    plan: ops.Operator, reads: dict, report: OptimizerReport
) -> ops.Operator:
    """Collapse Υ[child::t]∘(Π^D?)∘Υ[descendant-or-self::node()]."""
    if not (isinstance(plan, ops.UnnestMap) and plan.axis == Axis.CHILD):
        return plan
    inner = plan.child
    consumed_dedup = None
    if isinstance(inner, ops.ProjectDup) and inner.attr == plan.in_attr:
        consumed_dedup = inner
        inner = inner.child
    if not (
        isinstance(inner, ops.UnnestMap)
        and inner.axis == Axis.DESCENDANT_OR_SELF
        and inner.test_kind == NodeTestKind.NODE
        and inner.out_attr == plan.in_attr
    ):
        return plan
    # The intermediate attribute must have exactly the reads the pattern
    # itself performs (the child step, plus the consumed Π^D).
    expected_reads = 1 + (1 if consumed_dedup is not None else 0)
    if reads.get(plan.in_attr, 0) != expected_reads:
        return plan

    merged = ops.UnnestMap(
        inner.child, inner.in_attr, plan.out_attr, Axis.DESCENDANT,
        plan.test_kind, plan.test_name,
    )
    report.merged_descendant_steps += 1
    report._record(
        "merge-descendant", "fired",
        f"merged descendant-or-self/child into {merged.label()}",
    )
    if _order_info(inner.child).single:
        # descendant:: from a single context node is duplicate-free.
        return merged
    return ops.ProjectDup(merged, plan.out_attr)


# ----------------------------------------------------------------------
# Index routing
# ----------------------------------------------------------------------

def _index_one(
    plan: ops.Operator, index_info, index_mode: str,
    report: OptimizerReport, estimator: PlanEstimator,
    pre: Optional[PlanEstimates],
) -> ops.Operator:
    """Route one eligible name step onto an index scan."""
    if isinstance(plan, (ops.IndexNameScan, ops.IndexDescendantScan)):
        return plan
    if not isinstance(plan, ops.UnnestMap):
        return plan
    if plan.axis not in (Axis.CHILD, Axis.DESCENDANT):
        return plan
    name = plan.test_name
    if (plan.test_kind != NodeTestKind.NAME or not name or ":" in name):
        # Only plain-name tests: the posting list keys the stored QName,
        # which is a superset of a plain test's matches but not of a
        # prefix-resolved one.
        return plan

    synopsis = index_info.synopsis
    count = synopsis.element_count(name)
    total = synopsis.total_elements
    if index_mode != "force":
        # Evidence gate (both modes): an empty synopsis means the
        # catalog was stale or half-read; a name with neither a
        # synopsis count nor a posting list would route onto an index
        # that has nothing to say and silently navigate at runtime.
        if total == 0 or (
            count == 0 and not index_info.has_element_index(name)
        ):
            report.index_skips += 1
            report._record(
                "route-index-scan", "declined",
                f"declined index route for {plan.label()} "
                f"(no index evidence: {count}/{total} elements)",
            )
            return plan
        if report.mode == "cost":
            decision = _cost_gate(plan, estimator, pre)
            if decision is not None:
                report.index_skips += 1
                report._record("route-index-scan", "declined", decision)
                return plan
        else:
            limit = (
                CHILD_SELECTIVITY_LIMIT
                if plan.axis == Axis.CHILD
                else DESCENDANT_SELECTIVITY_LIMIT
            )
            if count > limit * total:
                report.index_skips += 1
                report._record(
                    "route-index-scan", "declined",
                    f"declined index route for {plan.label()} "
                    f"({count}/{total} elements)",
                )
                return plan

    cls = (
        ops.IndexNameScan
        if plan.axis == Axis.CHILD
        else ops.IndexDescendantScan
    )
    routed = cls(plan.child, plan.in_attr, plan.out_attr, name,
                 est_count=count)
    report.index_scans += 1
    report._record(
        "route-index-scan", "fired",
        f"routed {plan.label()} onto {routed.label()}",
    )
    return routed


def _cost_gate(
    plan: ops.UnnestMap, estimator: PlanEstimator,
    pre: Optional[PlanEstimates],
) -> Optional[str]:
    """Cost-mode routing decision: ``None`` to route, else the decline
    detail."""
    in_dist = pre.unnest_inputs.get(id(plan)) if pre is not None else None
    if in_dist is None:
        # The step was not part of the estimated plan (defensive; the
        # index pass mutates in place so ids normally survive).
        in_dist = Dist(1.0, None)
    navigation = estimator.navigation_cost(
        in_dist, plan.axis, plan.test_kind, plan.test_name
    )
    index = estimator.index_scan_cost(in_dist, plan.axis, plan.test_name)
    nav_score = navigation.score(DEFAULT_MODEL)
    idx_score = index.score(DEFAULT_MODEL)
    if idx_score < nav_score:
        return None
    return (
        f"{plan.label()} navigation wins "
        f"(nav≈{nav_score:.1f} vs idx≈{idx_score:.1f})"
    )


# ----------------------------------------------------------------------
# Property pruning
# ----------------------------------------------------------------------

def _prune_one(plan: ops.Operator, report: OptimizerReport) -> ops.Operator:
    if isinstance(plan, ops.ProjectDup):
        child = plan.child
        if plan.attr == child.result_attr and is_duplicate_free(child):
            report.removed_dedups += 1
            report._record(
                "prune-dedup", "fired", f"removed {plan.label()}"
            )
            return child
    if isinstance(plan, ops.SortOp):
        child = plan.child
        if plan.attr == child.result_attr and is_document_ordered(child):
            report.removed_sorts += 1
            report._record(
                "prune-sort", "fired", f"removed {plan.label()}"
            )
            return child
    if isinstance(plan, ops.Select):
        predicate = plan.predicate
        if isinstance(predicate, S.SConst) and predicate.value is True:
            report.removed_selections += 1
            report._record("prune-select", "fired", "removed σ[true()]")
            return plan.child
    return plan


def _memo_one(
    plan: ops.Operator, report: OptimizerReport,
    estimator: PlanEstimator, estimates: PlanEstimates,
) -> ops.Operator:
    """Drop a 𝔐 whose producer is cheaper to recompute than to cache."""
    if not isinstance(plan, ops.MemoX):
        return plan
    producer_cost = estimates.subtree.get(id(plan.child))
    if producer_cost is None:
        return plan
    score = producer_cost.score(estimator.model)
    if score <= estimator.model.memo_drop_threshold:
        report.removed_memos += 1
        report._record(
            "prune-memo", "fired",
            f"removed {plan.label()} (producer score≈{score:.1f})",
        )
        return plan.child
    report._record(
        "prune-memo", "declined",
        f"kept {plan.label()} (producer score≈{score:.1f})",
    )
    return plan
