"""Phase 6: code generation — logical plans to NQE iterator trees.

Responsibilities, mirroring the paper's section 5.1/5.2:

* assign every attribute a register via the
  :class:`~repro.engine.tuples.AttributeManager`; renaming projections
  and aliasing maps (χ with a bare attribute subscript) become register
  aliases — no copy operations are emitted,
* compile every scalar subscript, either to an NVM program (default) or
  to the tree-walking reference evaluator,
* compile nested sequence-valued plans inside subscripts into nested
  iterators (section 5.2.3),
* compute the register sets materializing operators must snapshot,
* collect the iterators whose memo state must be reset between plan
  executions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.algebra import operators as ops
from repro.algebra import scalar as S
from repro.algebra.properties import attributes, free_variables
from repro.compiler.improved import TranslationOptions
from repro.engine import basic, index_scans, joins, materialize, scans, unnest
from repro.engine.iterator import Iterator, RuntimeState
from repro.engine.scans import SnapshotReplay
from repro.engine.subscripts import InterpSubscript, NestedPlan, Subscript
from repro.engine.tuples import AttributeManager
from repro.errors import CodegenError
from repro.nvm.compile_expr import compile_scalar
from repro.nvm.machine import NVMSubscript


class CodeGenerator:
    """Compiles one logical plan into a physical iterator tree."""

    def __init__(
        self,
        runtime: RuntimeState,
        manager: AttributeManager,
        options: Optional[TranslationOptions] = None,
    ):
        self.runtime = runtime
        self.manager = manager
        self.options = options or TranslationOptions()
        #: Iterators with cross-execution memo state (MatMap, MemoX).
        self.resettable: List[Iterator] = []

    # ------------------------------------------------------------------

    def build(self, plan: ops.Operator) -> Iterator:
        """Recursively compile ``plan``."""
        method = getattr(self, f"_build_{type(plan).__name__}", None)
        if method is None:
            raise CodegenError(
                f"no code generation for {type(plan).__name__}"
            )
        return method(plan)

    # -- helpers ---------------------------------------------------------

    def _slot(self, attr: str) -> int:
        return self.manager.slot(attr)

    def _owned_slots(self, plan: ops.Operator) -> List[int]:
        """Registers holding attributes produced inside ``plan``."""
        slots: Set[int] = {self._slot(a) for a in attributes(plan)}
        return sorted(slots)

    def _subscript(self, expr: S.Scalar) -> Subscript:
        """Compile a scalar subscript with its nested plans."""
        nested: Dict[int, NestedPlan] = {}
        for embedded in S.nested_plans(expr):
            iterator = self.build(embedded.plan)
            result_attr = embedded.plan.result_attr
            if result_attr is None:
                raise CodegenError("nested plan lacks a result attribute")
            nested[id(embedded)] = NestedPlan(
                iterator, embedded.agg, self._slot(result_attr)
            )
        slots = {name: self._slot(name) for name in S.referenced_attrs(expr)}
        if self.options.subscript_mode == "nvm":
            return NVMSubscript(compile_scalar(expr, slots, nested))
        return InterpSubscript(expr, slots, nested)

    def _scalar_key_slots(self, expr: S.Scalar) -> List[int]:
        """Registers that determine a subscript's value (memo keys)."""
        names: Set[str] = set(S.referenced_attrs(expr))
        for embedded in S.nested_plans(expr):
            names |= free_variables(embedded.plan)
        return sorted(self._slot(name) for name in names)

    # -- leaves ------------------------------------------------------------

    def _build_SingletonScan(self, plan: ops.SingletonScan) -> Iterator:
        return scans.SingletonScanIt(self.runtime)

    def _build_VarScan(self, plan: ops.VarScan) -> Iterator:
        return scans.VarScanIt(self.runtime, plan.variable,
                               self._slot(plan.attr))

    # -- unary pipeline ops -------------------------------------------------

    def _build_Select(self, plan: ops.Select) -> Iterator:
        child = self.build(plan.child)
        return basic.SelectIt(self.runtime, child,
                              self._subscript(plan.predicate))

    def _build_MapOp(self, plan: ops.MapOp) -> Iterator:
        if isinstance(plan.expr, S.SAttr):
            # A pure aliasing map: bind the new attribute to the same
            # register and emit no code (paper section 5.1).
            self.manager.alias(plan.attr, plan.expr.name)
            return self.build(plan.child)
        child = self.build(plan.child)
        return basic.MapIt(
            self.runtime, child, self._slot(plan.attr),
            self._subscript(plan.expr),
        )

    def _build_MatMap(self, plan: ops.MatMap) -> Iterator:
        child = self.build(plan.child)
        iterator = basic.MatMapIt(
            self.runtime,
            child,
            self._slot(plan.attr),
            self._subscript(plan.expr),
            self._scalar_key_slots(plan.expr),
        )
        self.resettable.append(iterator)
        return iterator

    def _build_PosMap(self, plan: ops.PosMap) -> Iterator:
        child = self.build(plan.child)
        context_slot = (
            self._slot(plan.context_attr)
            if plan.context_attr is not None
            else None
        )
        return basic.PosMapIt(self.runtime, child, self._slot(plan.attr),
                              context_slot)

    def _build_ProjectDup(self, plan: ops.ProjectDup) -> Iterator:
        child = self.build(plan.child)
        return basic.ProjectDupIt(self.runtime, child, self._slot(plan.attr))

    def _build_Project(self, plan: ops.Project) -> Iterator:
        # Renames become register sharing; the direction depends on which
        # side was assigned first (e.g. a union attribute precedes its
        # branch attributes).
        for new_name, old_name in plan.renames.items():
            self.manager.unify(new_name, old_name)
        child = self.build(plan.child)
        return basic.PassThroughIt(self.runtime, child)

    def _build_UnnestMap(self, plan: ops.UnnestMap) -> Iterator:
        child = self.build(plan.child)
        return unnest.UnnestMapIt(
            self.runtime,
            child,
            self._slot(plan.in_attr),
            self._slot(plan.out_attr),
            plan.axis,
            plan.test_kind,
            plan.test_name,
        )

    def _build_IndexNameScan(self, plan: ops.IndexNameScan) -> Iterator:
        child = self.build(plan.child)
        return index_scans.IndexNameScanIt(
            self.runtime, child, self._slot(plan.in_attr),
            self._slot(plan.out_attr), plan.test_name,
        )

    def _build_IndexDescendantScan(
        self, plan: ops.IndexDescendantScan
    ) -> Iterator:
        child = self.build(plan.child)
        return index_scans.IndexDescendantScanIt(
            self.runtime, child, self._slot(plan.in_attr),
            self._slot(plan.out_attr), plan.test_name,
        )

    def _build_ExprUnnestMap(self, plan: ops.ExprUnnestMap) -> Iterator:
        child = self.build(plan.child)
        return unnest.ExprUnnestMapIt(
            self.runtime, child, self._slot(plan.attr),
            self._subscript(plan.expr),
        )

    def _build_Unnest(self, plan: ops.Unnest) -> Iterator:
        # μ is the degenerate unnest-map whose subscript just reads the
        # nested attribute.
        child = self.build(plan.child)
        return unnest.ExprUnnestMapIt(
            self.runtime, child, self._slot(plan.out_attr),
            self._subscript(S.SAttr(plan.nested_attr)),
        )

    def _build_SortOp(self, plan: ops.SortOp) -> Iterator:
        # Build the child first: owned-slot computation must see the
        # register aliases the child's compilation establishes.
        child = self.build(plan.child)
        replayer = SnapshotReplay(self._owned_slots(plan.child))
        return materialize.SortIt(self.runtime, child,
                                  self._slot(plan.attr), replayer)

    def _build_TmpCs(self, plan: ops.TmpCs) -> Iterator:
        child = self.build(plan.child)
        owned = self._owned_slots(plan.child)
        cp_slot = self._slot(plan.cp_attr)
        context_slot = (
            self._slot(plan.context_attr)
            if plan.context_attr is not None
            else None
        )
        if cp_slot not in owned:
            raise CodegenError(
                "Tmp^cs input does not carry its position register"
            )
        if context_slot is not None and context_slot not in owned:
            # The grouping attribute comes from the enclosing pipeline in
            # stacked translations; snapshot it as well so the group
            # boundary detection sees it.
            owned = sorted(set(owned) | {context_slot})
        return materialize.TmpCsIt(
            self.runtime, child, self._slot(plan.cs_attr), cp_slot,
            SnapshotReplay(owned), context_slot,
        )

    def _build_Aggregate(self, plan: ops.Aggregate) -> Iterator:
        if plan.input_attr is None:
            raise CodegenError("Aggregate requires an input attribute")
        child = self.build(plan.child)
        return materialize.AggregateIt(
            self.runtime, child, self._slot(plan.attr), plan.func,
            self._slot(plan.input_attr),
        )

    def _build_MemoX(self, plan: ops.MemoX) -> Iterator:
        child = self.build(plan.child)
        replayer = SnapshotReplay(self._owned_slots(plan.child))
        iterator = materialize.MemoXIt(
            self.runtime, child,
            [self._slot(a) for a in plan.key_attrs], replayer,
        )
        self.resettable.append(iterator)
        return iterator

    # -- binary ops ----------------------------------------------------------

    def _build_DJoin(self, plan: ops.DJoin) -> Iterator:
        left = self.build(plan.left)
        right = self.build(plan.right)
        return joins.DJoinIt(self.runtime, left, right)

    def _build_CrossProduct(self, plan: ops.CrossProduct) -> Iterator:
        left = self.build(plan.left)
        right = self.build(plan.right)
        replayer = SnapshotReplay(self._owned_slots(plan.right))
        return joins.CrossIt(self.runtime, left, right, replayer)

    def _build_SemiJoin(self, plan: ops.SemiJoin) -> Iterator:
        left = self.build(plan.left)
        right = self.build(plan.right)
        return joins.SemiJoinIt(self.runtime, left, right,
                                self._subscript(plan.predicate))

    def _build_AntiJoin(self, plan: ops.AntiJoin) -> Iterator:
        left = self.build(plan.left)
        right = self.build(plan.right)
        return joins.SemiJoinIt(self.runtime, left, right,
                                self._subscript(plan.predicate), anti=True)

    def _build_BinaryGroup(self, plan: ops.BinaryGroup) -> Iterator:
        left = self.build(plan.left)
        right = self.build(plan.right)
        func_attr = plan.func_attr or plan.right_attr
        return materialize.BinaryGroupIt(
            self.runtime,
            left,
            right,
            self._slot(plan.attr),
            self._slot(plan.left_attr),
            plan.theta,
            self._slot(plan.right_attr),
            plan.func,
            self._slot(func_attr),
        )

    def _build_Concat(self, plan: ops.Concat) -> Iterator:
        # Alias every branch's result attribute to the shared union
        # attribute *before* compiling the branches, so their subtrees
        # write directly into the union register.
        self.manager.slot(plan.result_attr)
        for branch in plan.inputs:
            if branch.result_attr is None:
                raise CodegenError("union branch lacks a result attribute")
        inputs = [self.build(branch) for branch in plan.inputs]
        return joins.ConcatIt(self.runtime, inputs)
