"""Phase 4: rewrite — constant folding.

Folds constant arithmetic, comparisons, boolean connectives and pure
library functions over constant arguments.  XPath has no boolean literal,
so boolean results fold to ``true()``/``false()`` calls; string results
fold to literals and numeric results to numbers.

Folding respects IEEE semantics by delegating to the same
:mod:`repro.xpath.datamodel` routines the runtime uses, so a folded
expression is bit-identical to an evaluated one.
"""

from __future__ import annotations

from typing import Optional

from repro.xpath import functions as fnlib
from repro.xpath.datamodel import (
    XPathType,
    XPathValue,
    arith,
    compare,
    to_boolean,
    to_number,
)
from repro.xpath.xast import (
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    Number,
    PathExpr,
    Predicate,
    UnaryMinus,
    UnionExpr,
)

#: Library functions safe to fold: pure, no context, no node-sets.
_FOLDABLE_FUNCTIONS = frozenset(
    {
        "concat",
        "starts-with",
        "contains",
        "substring-before",
        "substring-after",
        "substring",
        "translate",
        "not",
        "true",
        "false",
        "floor",
        "ceiling",
        "round",
    }
)


def fold_constants(expr: Expr) -> Expr:
    """Return a constant-folded copy of ``expr`` (annotations preserved)."""
    return _fold(expr)


def _constant_value(expr: Expr) -> Optional[XPathValue]:
    """The runtime value of a constant expression, else ``None``."""
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, FunctionCall) and expr.name in ("true", "false"):
        if not expr.args:
            return expr.name == "true"
    return None


def _make_constant(value: XPathValue) -> Expr:
    if isinstance(value, bool):
        call = FunctionCall("true" if value else "false", [])
        call.static_type = XPathType.BOOLEAN
        return call
    if isinstance(value, (int, float)):
        node = Number(float(value))
        node.static_type = XPathType.NUMBER
        return node
    node = Literal(str(value))
    node.static_type = XPathType.STRING
    return node


def _fold(expr: Expr) -> Expr:
    if isinstance(expr, UnaryMinus):
        operand = _fold(expr.operand)
        value = _constant_value(operand)
        if value is not None and not isinstance(value, list):
            return _make_constant(-to_number(value))
        folded = UnaryMinus(operand)
        _copy_annotations(expr, folded)
        return folded

    if isinstance(expr, BinaryOp):
        left = _fold(expr.left)
        right = _fold(expr.right)
        lv, rv = _constant_value(left), _constant_value(right)
        if lv is not None and rv is not None:
            if expr.op in ("+", "-", "*", "div", "mod"):
                return _make_constant(
                    arith(expr.op, to_number(lv), to_number(rv))
                )
            if expr.op in ("=", "!=", "<", "<=", ">", ">="):
                return _make_constant(compare(expr.op, lv, rv))
            if expr.op == "and":
                return _make_constant(to_boolean(lv) and to_boolean(rv))
            if expr.op == "or":
                return _make_constant(to_boolean(lv) or to_boolean(rv))
        folded = BinaryOp(expr.op, left, right)
        _copy_annotations(expr, folded)
        return folded

    if isinstance(expr, FunctionCall):
        args = [_fold(arg) for arg in expr.args]
        values = [_constant_value(arg) for arg in args]
        if (
            expr.name in _FOLDABLE_FUNCTIONS
            and all(v is not None for v in values)
        ):
            result = fnlib.call(expr.name, None, list(values))
            return _make_constant(result)
        folded = FunctionCall(expr.name, args)
        _copy_annotations(expr, folded)
        return folded

    if isinstance(expr, LocationPath):
        for step in expr.steps:
            for predicate in step.predicates:
                predicate.expr = _fold(predicate.expr)
        return expr

    if isinstance(expr, PathExpr):
        folded = PathExpr(_fold(expr.source), _fold(expr.path))
        _copy_annotations(expr, folded)
        return folded

    if isinstance(expr, FilterExpr):
        primary = _fold(expr.primary)
        for predicate in expr.predicates:
            predicate.expr = _fold(predicate.expr)
        folded = FilterExpr(primary, expr.predicates)
        _copy_annotations(expr, folded)
        return folded

    if isinstance(expr, UnionExpr):
        folded = UnionExpr([_fold(op) for op in expr.operands])
        _copy_annotations(expr, folded)
        return folded

    return expr


def _copy_annotations(source: Expr, target: Expr) -> None:
    target.static_type = source.static_type
    target.uses_position = source.uses_position
    target.uses_last = source.uses_last
