"""Phase 2: normalization — predicate classification and ordering.

The paper's predicate machinery (sections 3.3 and 4.3.2) works on
predicates that have been broken into conjunctive *clauses* and
classified into the four sets

* ``pos(p)``   — clauses calling ``position()`` but not ``last()``,
* ``last(p)``  — clauses calling ``last()``,
* ``cheap(p)`` — clauses cheap to evaluate,
* ``exp(p)``   — clauses expensive to evaluate (nested paths, node-set
  aggregates), handled with memoizing χ^mat maps and evaluated last.

Normalization also performs the spec-2.4 rewriting of numeric predicates:
``p[3]`` becomes ``p[position() = 3]``, and a predicate of statically
unknown type (a bare variable) is marked ``dynamic_truth`` so translation
can emit the runtime number-vs-boolean dispatch.

The classification uses the paper's "simple cost model ... the number of
instructions that are necessary to evaluate a clause": the cost estimate
counts AST nodes, with location paths weighted by an estimated per-step
fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.xpath.datamodel import XPathType
from repro.xpath.xast import (
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    LocationPath,
    Number,
    PathExpr,
    Predicate,
    UnionExpr,
    iter_child_exprs,
)

#: Clauses costing more than this many estimated instructions are ``exp``.
DEFAULT_EXPENSIVE_THRESHOLD = 40

#: Estimated instruction cost of evaluating one location step.
_STEP_COST = 25


@dataclass
class Clause:
    """One conjunct of a predicate with its classification."""

    expr: Expr
    uses_position: bool
    uses_last: bool
    has_nested_path: bool
    cost: int
    expensive: bool

    def describe(self) -> str:
        tags = []
        if self.uses_position:
            tags.append("pos")
        if self.uses_last:
            tags.append("last")
        tags.append("exp" if self.expensive else "cheap")
        return f"{self.expr.unparse()} [{', '.join(tags)}]"


@dataclass
class PredicateInfo:
    """Normalization result attached to each predicate."""

    clauses: List[Clause]
    #: The predicate's value may be a number at runtime (variable) — the
    #: translator must emit the dynamic position-vs-boolean dispatch.
    dynamic_truth: bool = False

    @property
    def uses_position(self) -> bool:
        return any(c.uses_position for c in self.clauses)

    @property
    def uses_last(self) -> bool:
        return any(c.uses_last for c in self.clauses)

    @property
    def positional(self) -> bool:
        return self.dynamic_truth or self.uses_position or self.uses_last

    @property
    def has_nested_path(self) -> bool:
        return any(c.has_nested_path for c in self.clauses)

    def ordered_clauses(self) -> List[Clause]:
        """Clauses in evaluation order (section 4.3.2).

        cheap-without-last first (cheapest first), then cheap-with-last,
        then expensive clauses (again cheapest first).  The translator
        inserts the Tmp^cs operator between the first two groups.
        """
        cheap_no_last = [c for c in self.clauses
                         if not c.expensive and not c.uses_last]
        cheap_last = [c for c in self.clauses
                      if not c.expensive and c.uses_last]
        expensive = [c for c in self.clauses if c.expensive]
        key = lambda c: c.cost  # noqa: E731 - tiny local ordering key
        return (
            sorted(cheap_no_last, key=key)
            + sorted(cheap_last, key=key)
            + sorted(expensive, key=key)
        )


def normalize(expr: Expr,
              expensive_threshold: int = DEFAULT_EXPENSIVE_THRESHOLD) -> Expr:
    """Annotate every predicate below ``expr`` with a PredicateInfo.

    Must run after semantic analysis (needs ``static_type`` and the
    positional flags).
    """
    for predicate in _iter_predicates(expr):
        predicate.info = _normalize_predicate(predicate, expensive_threshold)
    return expr


def _iter_predicates(expr: Expr):
    if isinstance(expr, LocationPath):
        for step in expr.steps:
            for predicate in step.predicates:
                yield predicate
                yield from _iter_predicates(predicate.expr)
    elif isinstance(expr, FilterExpr):
        yield from _iter_predicates(expr.primary)
        for predicate in expr.predicates:
            yield predicate
            yield from _iter_predicates(predicate.expr)
    elif isinstance(expr, PathExpr):
        yield from _iter_predicates(expr.source)
        yield from _iter_predicates(expr.path)
    else:
        for child in iter_child_exprs(expr):
            yield from _iter_predicates(child)


def _normalize_predicate(predicate: Predicate, threshold: int) -> PredicateInfo:
    expr = predicate.expr
    dynamic_truth = False
    if expr.static_type == XPathType.NUMBER:
        # Spec 2.4: a number predicate is a position test.  The rewrite is
        # performed structurally so translation sees an ordinary
        # positional comparison clause.
        position_call = FunctionCall("position", [])
        position_call.static_type = XPathType.NUMBER
        position_call.uses_position = True
        rewritten = BinaryOp("=", position_call, expr)
        rewritten.static_type = XPathType.BOOLEAN
        rewritten.uses_position = True
        rewritten.uses_last = expr.uses_last
        predicate.expr = rewritten
        expr = rewritten
    elif expr.static_type == XPathType.ANY:
        dynamic_truth = True

    clauses = [
        _make_clause(conjunct, threshold)
        for conjunct in _split_conjunction(expr)
    ]
    return PredicateInfo(clauses=clauses, dynamic_truth=dynamic_truth)


def _split_conjunction(expr: Expr) -> List[Expr]:
    """Split top-level ``and`` into clauses, preserving order."""
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return _split_conjunction(expr.left) + _split_conjunction(expr.right)
    return [expr]


def _make_clause(expr: Expr, threshold: int) -> Clause:
    cost = _estimate_cost(expr)
    return Clause(
        expr=expr,
        uses_position=expr.uses_position,
        uses_last=expr.uses_last,
        has_nested_path=_has_nested_path(expr),
        cost=cost,
        expensive=cost > threshold,
    )


def _has_nested_path(expr: Expr) -> bool:
    """Does the clause contain a path evaluated from the predicate context?

    Any location path, path expression, filter expression or union below
    the clause (at any depth — even inside function arguments) makes the
    clause depend on the context node.
    """
    if isinstance(expr, (LocationPath, PathExpr, FilterExpr, UnionExpr)):
        return True
    return any(_has_nested_path(child) for child in iter_child_exprs(expr))


def _estimate_cost(expr: Expr) -> int:
    """Instruction-count estimate of evaluating a clause once."""
    cost = 1
    if isinstance(expr, LocationPath):
        cost += _STEP_COST * len(expr.steps)
        for step in expr.steps:
            for predicate in step.predicates:
                cost += _estimate_cost(predicate.expr)
        return cost
    if isinstance(expr, PathExpr):
        return cost + _estimate_cost(expr.source) + _estimate_cost(expr.path)
    if isinstance(expr, FunctionCall) and expr.name in ("count", "sum", "id"):
        cost += _STEP_COST  # draining a node sequence
    for child in iter_child_exprs(expr):
        cost += _estimate_cost(child)
    return cost
