"""Phase 5: translation of XPath ASTs into the logical algebra.

Implements the complete translation function T[·] of the paper's
section 3 — location paths (3.1), location steps (3.2), predicates
(3.3), filter expressions (3.4), general path expressions (3.5),
function calls including node-set comparisons and ``id()`` (3.6),
constants and variables (3.7) — together with the section-4
improvements selected by
:class:`~repro.compiler.improved.TranslationOptions`.

Attribute naming.  The paper names every step's output ``c_i`` and keeps
an invariant alias ``cn`` ("the node last added").  This translator
generates globally fresh attribute names (``c1``, ``c2``, ...) and tracks
the ``cn`` of each sub-plan as the plan's ``result_attr`` metadata; the
code generator's attribute manager realizes the paper's copy-free
aliasing (section 5.1).  The free context node of the whole expression
is the reserved attribute ``cn``, bound by the execution context; a
top-level ``position()``/``last()`` reads the reserved ``cp_top``/
``cs_top`` attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.algebra import operators as ops
from repro.algebra import scalar as S
from repro.algebra.properties import free_variables
from repro.compiler.improved import TranslationOptions
from repro.compiler.normalize import PredicateInfo, normalize
from repro.errors import TranslationError
from repro.xpath import functions as fnlib
from repro.xpath.axes import Axis
from repro.xpath.datamodel import XPathType
from repro.xpath.xast import (
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    Number,
    PathExpr,
    Predicate,
    Step,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)

#: Reserved free attributes bound by the execution context.
TOP_CONTEXT_ATTR = "cn"
TOP_POSITION_ATTR = "cp_top"
TOP_SIZE_ATTR = "cs_top"


@dataclass(frozen=True)
class ScalarEnv:
    """Context for scalar translation inside one predicate level."""

    #: Attribute holding the context node of this level.
    context_attr: str
    #: Attribute holding ``position()`` at this level.
    cp_attr: str
    #: Attribute holding ``last()`` at this level.
    cs_attr: str
    #: Axis of the location step whose predicate we are inside
    #: (``None`` at the top level and in filter expressions) — drives the
    #: MemoX decision of section 4.2.2.
    outer_axis: Optional[Axis] = None


@dataclass
class TranslationResult:
    """Output of T[·] for a complete expression."""

    kind: str  # 'sequence' or 'scalar'
    plan: Optional[ops.Operator]
    scalar: Optional[S.Scalar]
    result_attr: Optional[str]


class Translator:
    """Stateful translator (fresh-name counter); one instance per query."""

    def __init__(self, options: Optional[TranslationOptions] = None):
        self.options = options or TranslationOptions()
        self._counter = 0

    # ------------------------------------------------------------------

    def fresh(self, prefix: str = "c") -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def top_env(self) -> ScalarEnv:
        return ScalarEnv(TOP_CONTEXT_ATTR, TOP_POSITION_ATTR, TOP_SIZE_ATTR)

    def translate(self, expr: Expr) -> TranslationResult:
        """T[·] for a complete, analyzed and normalized expression."""
        env = self.top_env()
        if expr.static_type == XPathType.NODE_SET:
            plan, attr = self.seq_plan(expr, env)
            return TranslationResult("sequence", plan, None, attr)
        # Scalar or dynamically typed (a bare variable): evaluate as a
        # scalar — a node-set-valued variable simply passes through as
        # its (duplicate-free) list value.
        scalar = self.scalar(expr, env)
        return TranslationResult("scalar", None, scalar, None)

    # ------------------------------------------------------------------
    # Sequence-valued translation (node-set expressions)
    # ------------------------------------------------------------------

    def seq_plan(self, expr: Expr, env: ScalarEnv) -> Tuple[ops.Operator, str]:
        """Translate a node-set expression; output is duplicate-free."""
        if isinstance(expr, LocationPath):
            return self._location_path(expr, env)
        if isinstance(expr, PathExpr):
            return self._path_expr(expr, env)
        if isinstance(expr, FilterExpr):
            return self._filter_expr(expr, env)
        if isinstance(expr, UnionExpr):
            return self._union(expr, env)
        if isinstance(expr, VariableRef):
            attr = self.fresh()
            return ops.VarScan(expr.name, attr), attr
        if isinstance(expr, FunctionCall) and expr.name == "id":
            return self._id_call(expr, env)
        raise TranslationError(
            f"{type(expr).__name__} cannot be used as a node-set"
        )

    # -- location paths (3.1, 4.1, 4.2.1) -------------------------------

    def _location_path(
        self, path: LocationPath, env: ScalarEnv
    ) -> Tuple[ops.Operator, str]:
        start_attr = self.fresh()
        # Absolute paths root at the document, not at the local context:
        # deriving the root from the reserved top-level ``cn`` keeps
        # absolute inner paths free of predicate-context variables, so
        # they are translated "like outer paths" (section 4.2.2) and
        # their χ^mat/bound computations are context-independent.
        start_expr: S.Scalar = (
            S.SRoot(S.SAttr(TOP_CONTEXT_ATTR))
            if path.absolute
            else S.SAttr(env.context_attr)
        )
        plan: ops.Operator = ops.MapOp(
            ops.SingletonScan(), start_attr, start_expr, is_result=True
        )
        return self._apply_steps(plan, start_attr, path.steps, env)

    def _apply_steps(
        self,
        plan: ops.Operator,
        current_attr: str,
        steps: List[Step],
        env: ScalarEnv,
    ) -> Tuple[ops.Operator, str]:
        deduped = True  # the single start tuple is trivially duplicate-free
        for step in steps:
            plan, current_attr, deduped = self._apply_step(
                plan, current_attr, step, env, deduped
            )
        # Canonical translation: one final Π^D on cn, unconditionally
        # (3.1.1).  With pushed duplicate elimination (4.1) the Π^D after
        # every ppd step makes the output provably duplicate-free, so the
        # final one is only needed when the proof fails.
        if steps and (not deduped or not self.options.push_dup_elimination):
            plan = ops.ProjectDup(plan, current_attr)
        return plan, current_attr

    def _apply_step(
        self,
        plan: ops.Operator,
        in_attr: str,
        step: Step,
        env: ScalarEnv,
        input_deduped: bool,
    ) -> Tuple[ops.Operator, str, bool]:
        """One location step; returns (plan, out_attr, provably_dedup)."""
        from repro.xpath.axes import ppd

        out_attr = self.fresh()
        if self.options.stacked:
            # Stacked translation (4.2.1): the unnest-map consumes the
            # previous pipeline directly.
            step_plan: ops.Operator = ops.UnnestMap(
                plan, in_attr, out_attr, step.axis, step.test_kind,
                step.test_name,
            )
            step_plan = self._apply_step_predicates(
                step_plan, step, in_attr, out_attr, stacked=True
            )
        else:
            # Canonical translation (3.1.1): a d-join whose dependent side
            # evaluates the step for the context node handed over in
            # ``in_attr`` (a free variable of the dependent side).
            dependent: ops.Operator = ops.UnnestMap(
                ops.SingletonScan(), in_attr, out_attr, step.axis,
                step.test_kind, step.test_name,
            )
            dependent = self._apply_step_predicates(
                dependent, step, in_attr, out_attr, stacked=False
            )
            step_plan = ops.DJoin(plan, dependent)

        if self.options.dedup_after_step(step.axis):
            return ops.ProjectDup(step_plan, out_attr), out_attr, True
        # A non-ppd step preserves duplicate-freeness but cannot create
        # it: duplicate inputs (canonical mode) yield duplicate outputs.
        return step_plan, out_attr, input_deduped and not ppd(step.axis)

    # -- predicates (3.3, 4.3) ------------------------------------------

    def _apply_step_predicates(
        self,
        plan: ops.Operator,
        step: Step,
        in_attr: str,
        out_attr: str,
        stacked: bool,
    ) -> ops.Operator:
        for predicate in step.predicates:
            plan = self._apply_predicate(
                plan,
                predicate,
                context_attr=out_attr,
                group_attr=in_attr if stacked else None,
                outer_axis=step.axis,
            )
        return plan

    def _apply_predicate(
        self,
        plan: ops.Operator,
        predicate: Predicate,
        context_attr: str,
        group_attr: Optional[str],
        outer_axis: Optional[Axis],
    ) -> ops.Operator:
        """Φ[p] — the predicate filtering functor (3.3/4.3.2).

        ``group_attr`` is the input context node attribute c_{i-1} for
        the stacked translation (position counters reset and Tmp^cs_c
        groups on it); ``None`` means each ``open()`` of the pipeline is
        one context (canonical d-join / filter expressions).
        """
        info = self._predicate_info(predicate)
        cp_attr = self.fresh("cp")
        cs_attr = self.fresh("cs")
        env = ScalarEnv(context_attr, cp_attr, cs_attr, outer_axis)

        if info.positional:
            plan = ops.PosMap(plan, cp_attr, context_attr=group_attr)

        if info.dynamic_truth:
            # Runtime dispatch: a numeric value is a position test,
            # anything else converts to boolean (spec 2.4).
            value = self._dynamic_value(predicate.expr, env)
            return ops.Select(
                plan, S.SFunc("pred_truth", (value, S.SAttr(cp_attr)))
            )

        if self.options.mat_expensive:
            clauses = info.ordered_clauses()
        else:
            clauses = list(info.clauses)
            # Canonical clause order (3.3.4): Tmp^cs before any selection
            # when last() occurs; emulate by putting last-clauses after
            # the materialization point but keeping relative order.
            clauses.sort(key=lambda c: c.uses_last)

        materialized = False
        for clause in clauses:
            if clause.uses_last and not materialized:
                plan = ops.TmpCs(plan, cs_attr, cp_attr, group_attr)
                materialized = True
            condition = self.operand_scalar(
                clause.expr, XPathType.BOOLEAN, env
            )
            if self.options.mat_expensive and clause.expensive:
                value_attr = self.fresh("v")
                plan = ops.MatMap(plan, value_attr, condition)
                plan = ops.Select(plan, S.SAttr(value_attr))
            else:
                plan = ops.Select(plan, condition)
        return plan

    @staticmethod
    def _predicate_info(predicate: Predicate) -> PredicateInfo:
        if not isinstance(predicate.info, PredicateInfo):
            raise TranslationError(
                "predicate was not normalized; run the full pipeline"
            )
        return predicate.info

    def _dynamic_value(self, expr: Expr, env: ScalarEnv) -> S.Scalar:
        """A runtime value preserving its dynamic type (for variables)."""
        if expr.static_type in (XPathType.NODE_SET,):
            plan, attr = self.seq_plan_memo(expr, env)
            return S.SNested(plan, "collect")
        return self.scalar(expr, env)

    # -- filter expressions (3.4) ---------------------------------------

    def _filter_expr(
        self, expr: FilterExpr, env: ScalarEnv
    ) -> Tuple[ops.Operator, str]:
        plan, attr = self.seq_plan(expr.primary, env)
        if any(
            self._predicate_info(p).positional for p in expr.predicates
        ):
            # Positional predicates on filter expressions count along the
            # child axis: establish document order first (3.4.2).
            plan = ops.SortOp(plan, attr)
        for predicate in expr.predicates:
            plan = self._apply_predicate(
                plan, predicate, context_attr=attr, group_attr=None,
                outer_axis=None,
            )
        return plan, attr

    # -- general path expressions (3.5) ----------------------------------

    def _path_expr(
        self, expr: PathExpr, env: ScalarEnv
    ) -> Tuple[ops.Operator, str]:
        source_plan, source_attr = self.seq_plan(expr.source, env)
        inner_env = replace(env, context_attr=source_attr)
        return self._apply_steps(
            source_plan, source_attr, expr.path.steps, inner_env
        )

    # -- unions (3.1.3) ----------------------------------------------------

    def _union(
        self, expr: UnionExpr, env: ScalarEnv
    ) -> Tuple[ops.Operator, str]:
        union_attr = self.fresh("u")
        branches: List[ops.Operator] = []
        for operand in expr.operands:
            plan, attr = self.seq_plan(operand, env)
            # The logical rename Π_{u:attr}; the attribute manager makes
            # this a register alias, not a copy.
            branches.append(
                ops.Project(plan, (attr,), renames={union_attr: attr},
                            result_attr=union_attr)
            )
        concat = ops.Concat(branches, union_attr)
        return ops.ProjectDup(concat, union_attr), union_attr

    # -- id() (3.6.3) -----------------------------------------------------

    def _id_call(
        self, call: FunctionCall, env: ScalarEnv
    ) -> Tuple[ops.Operator, str]:
        argument = call.args[0]
        token_attr = self.fresh("t")
        if argument.static_type == XPathType.NODE_SET:
            source_plan, source_attr = self.seq_plan(argument, env)
            tokens: ops.Operator = ops.ExprUnnestMap(
                source_plan,
                token_attr,
                S.STokenize(S.SStringValue(S.SAttr(source_attr))),
            )
        else:
            string_ir = self.operand_scalar(argument, XPathType.STRING, env)
            tokens = ops.ExprUnnestMap(
                ops.SingletonScan(), token_attr, S.STokenize(string_ir)
            )
        out_attr = self.fresh()
        deref = ops.ExprUnnestMap(
            tokens, out_attr, S.SDeref(S.SAttr(token_attr))
        )
        return ops.ProjectDup(deref, out_attr), out_attr

    # ------------------------------------------------------------------
    # Inner paths with memoization (4.2.2)
    # ------------------------------------------------------------------

    def seq_plan_memo(
        self, expr: Expr, env: ScalarEnv
    ) -> Tuple[ops.Operator, str]:
        """seq_plan for a nested path, optionally wrapped in MemoX."""
        plan, attr = self.seq_plan(expr, env)
        if self.options.memoize_inner_path(env.outer_axis):
            if env.context_attr in free_variables(plan):
                plan = ops.MemoX(plan, (env.context_attr,))
        return plan, attr

    # ------------------------------------------------------------------
    # Scalar translation
    # ------------------------------------------------------------------

    def operand_scalar(
        self, expr: Expr, target: XPathType, env: ScalarEnv
    ) -> S.Scalar:
        """Translate an operand and convert it to ``target``."""
        if expr.static_type == XPathType.NODE_SET:
            plan, attr = self.seq_plan_memo(expr, env)
            if target == XPathType.BOOLEAN:
                return S.SNested(plan, "exists")
            if target == XPathType.STRING:
                return S.SNested(plan, "first_string")
            if target == XPathType.NUMBER:
                return S.SConvert(
                    XPathType.NUMBER, S.SNested(plan, "first_string")
                )
            return S.SNested(plan, "collect")
        scalar = self.scalar(expr, env)
        if target in (XPathType.BOOLEAN, XPathType.NUMBER, XPathType.STRING):
            if expr.static_type != target:
                return S.SConvert(target, scalar)
        return scalar

    def scalar(self, expr: Expr, env: ScalarEnv) -> S.Scalar:
        """Translate a non-node-set expression to scalar IR."""
        if isinstance(expr, Number):
            return S.SConst(expr.value)
        if isinstance(expr, Literal):
            return S.SConst(expr.value)
        if isinstance(expr, VariableRef):
            return S.SVar(expr.name)
        if isinstance(expr, UnaryMinus):
            return S.SNeg(self.operand_scalar(expr.operand,
                                              XPathType.NUMBER, env))
        if isinstance(expr, BinaryOp):
            if expr.op in ("and", "or"):
                return S.SBool(
                    expr.op,
                    self.operand_scalar(expr.left, XPathType.BOOLEAN, env),
                    self.operand_scalar(expr.right, XPathType.BOOLEAN, env),
                )
            if expr.op in ("=", "!=", "<", "<=", ">", ">="):
                return self._comparison(expr.op, expr.left, expr.right, env)
            return S.SArith(
                expr.op,
                self.operand_scalar(expr.left, XPathType.NUMBER, env),
                self.operand_scalar(expr.right, XPathType.NUMBER, env),
            )
        if isinstance(expr, FunctionCall):
            return self._function_call(expr, env)
        raise TranslationError(
            f"{type(expr).__name__} cannot be translated as a scalar"
        )

    # -- node-set comparisons (3.6.2) -------------------------------------

    def _comparison(
        self, op: str, left: Expr, right: Expr, env: ScalarEnv
    ) -> S.Scalar:
        left_ns = left.static_type == XPathType.NODE_SET
        right_ns = right.static_type == XPathType.NODE_SET
        dynamic = (
            left.static_type == XPathType.ANY
            or right.static_type == XPathType.ANY
        )
        if dynamic:
            return S.SCmp(
                op, self._dynamic_value(left, env),
                self._dynamic_value(right, env),
            )
        if left_ns and right_ns:
            return self._nodeset_nodeset(op, left, right, env)
        if left_ns or right_ns:
            return self._nodeset_scalar(op, left, right, left_ns, env)
        return S.SCmp(op, self.scalar(left, env), self.scalar(right, env))

    def _nodeset_nodeset(
        self, op: str, left: Expr, right: Expr, env: ScalarEnv
    ) -> S.Scalar:
        left_plan, left_attr = self.seq_plan_memo(left, env)
        right_plan, right_attr = self.seq_plan_memo(right, env)
        left_sv = S.SStringValue(S.SAttr(left_attr))
        right_sv = S.SStringValue(S.SAttr(right_attr))

        if op == "=":
            join: ops.Operator = ops.SemiJoin(
                left_plan, right_plan, S.SCmp("=", left_sv, right_sv)
            )
            return S.SNested(join, "exists")
        if op == "!=":
            if self.options.paper_neq:
                # The paper's anti-join translation (3.6.2); differs from
                # the W3C semantics exactly when every left string-value
                # also occurs on the right but the right has more values.
                join = ops.AntiJoin(
                    left_plan, right_plan, S.SCmp("=", left_sv, right_sv)
                )
            else:
                join = ops.SemiJoin(
                    left_plan, right_plan, S.SCmp("!=", left_sv, right_sv)
                )
            return S.SNested(join, "exists")

        # Relational: compare against max(e2) for < <=, min(e2) for > >=.
        agg = "max" if op in ("<", "<=") else "min"
        bound_attr = self.fresh("m")
        annotated = ops.MatMap(
            left_plan, bound_attr, S.SNested(right_plan, agg)
        )
        selected = ops.Select(
            annotated,
            S.SCmp(
                op,
                S.SConvert(XPathType.NUMBER, left_sv),
                S.SAttr(bound_attr),
            ),
        )
        return S.SNested(selected, "exists")

    def _nodeset_scalar(
        self, op: str, left: Expr, right: Expr, left_ns: bool, env: ScalarEnv
    ) -> S.Scalar:
        nodes_expr, other_expr = (left, right) if left_ns else (right, left)
        other_type = other_expr.static_type

        if other_type == XPathType.BOOLEAN:
            # ns cmp bool: the node-set is converted with boolean() for
            # *every* operator (spec 3.4), so no existential scan —
            # relational operators then compare the two booleans as
            # numbers, which makes operand order significant.
            nodes_scalar = self.operand_scalar(
                nodes_expr, XPathType.BOOLEAN, env
            )
            other_scalar = self.scalar(other_expr, env)
            left_ir, right_ir = (
                (nodes_scalar, other_scalar)
                if left_ns
                else (other_scalar, nodes_scalar)
            )
            return S.SCmp(op, left_ir, right_ir)

        plan, attr = self.seq_plan_memo(nodes_expr, env)
        node_sv = S.SStringValue(S.SAttr(attr))
        if op in ("=", "!=") and other_type == XPathType.STRING:
            node_side: S.Scalar = node_sv
            other_side = self.scalar(other_expr, env)
        else:
            node_side = S.SConvert(XPathType.NUMBER, node_sv)
            other_side = self.operand_scalar(
                other_expr, XPathType.NUMBER, env
            )
        left_ir, right_ir = (
            (node_side, other_side) if left_ns else (other_side, node_side)
        )
        return S.SNested(
            ops.Select(plan, S.SCmp(op, left_ir, right_ir)), "exists"
        )

    # -- function calls (3.6) ---------------------------------------------

    def _function_call(self, call: FunctionCall, env: ScalarEnv) -> S.Scalar:
        name = call.name
        args = call.args

        if name == "position":
            return S.SAttr(env.cp_attr)
        if name == "last":
            return S.SAttr(env.cs_attr)
        if name == "true":
            return S.SConst(True)
        if name == "false":
            return S.SConst(False)
        if name == "not":
            return S.SNot(
                self.operand_scalar(args[0], XPathType.BOOLEAN, env)
            )
        if name == "boolean":
            return self.operand_scalar(args[0], XPathType.BOOLEAN, env)

        if name in ("count", "sum"):
            argument = args[0]
            if argument.static_type == XPathType.NODE_SET:
                plan, _attr = self.seq_plan_memo(argument, env)
                return S.SNested(plan, name)
            # A dynamically typed variable: check and count at runtime.
            return S.SFunc(name, (self._dynamic_value(argument, env),))

        if name == "string":
            if not args:
                return S.SStringValue(S.SAttr(env.context_attr))
            return self.operand_scalar(args[0], XPathType.STRING, env)
        if name == "number":
            if not args:
                return S.SConvert(
                    XPathType.NUMBER,
                    S.SStringValue(S.SAttr(env.context_attr)),
                )
            return self.operand_scalar(args[0], XPathType.NUMBER, env)
        if name in ("string-length", "normalize-space"):
            if not args:
                operand: S.Scalar = S.SStringValue(S.SAttr(env.context_attr))
            else:
                operand = self.operand_scalar(args[0], XPathType.STRING, env)
            return S.SFunc(name, (operand,))

        if name in ("name", "local-name", "namespace-uri"):
            builtin = {
                "name": "name_of",
                "local-name": "local_name_of",
                "namespace-uri": "namespace_uri_of",
            }[name]
            if not args:
                return S.SFunc(builtin, (S.SAttr(env.context_attr),))
            argument = args[0]
            if argument.static_type == XPathType.NODE_SET:
                plan, _attr = self.seq_plan_memo(argument, env)
                return S.SFunc(builtin, (S.SNested(plan, "first_node"),))
            return S.SFunc(builtin, (self._dynamic_value(argument, env),))

        if name == "lang":
            return S.SFunc(
                "lang_of",
                (
                    S.SAttr(env.context_attr),
                    self.operand_scalar(args[0], XPathType.STRING, env),
                ),
            )

        if name == "id":
            raise TranslationError(
                "id() in a scalar position must pass through operand_scalar"
            )

        # Remaining library functions take string/number parameters only
        # (3.6.1): translate arguments with their declared conversions.
        signature = fnlib.lookup(name)
        translated = tuple(
            self.operand_scalar(arg, signature.param_type(index), env)
            for index, arg in enumerate(args)
        )
        return S.SFunc(name, translated)


def translate(
    expr: Expr, options: Optional[TranslationOptions] = None
) -> TranslationResult:
    """Convenience: translate an analyzed + normalized expression."""
    return Translator(options).translate(expr)
