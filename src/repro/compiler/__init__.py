"""The six-phase XPath compiler (paper section 5.1).

(1) parsing — :mod:`repro.xpath.parser`,
(2) normalization — :mod:`repro.compiler.normalize`,
(3) semantic analysis — :mod:`repro.compiler.semantic`,
(4) rewrite (constant folding) — :mod:`repro.compiler.rewrite`,
(5) translation into the algebra — :mod:`repro.compiler.translate`
    with the improved-translation policies in
    :mod:`repro.compiler.improved`,
(6) code generation to an NQE plan — :mod:`repro.compiler.codegen`.

:class:`repro.compiler.pipeline.XPathCompiler` orchestrates the phases.
"""

from repro.compiler.pipeline import CompiledQuery, XPathCompiler
from repro.compiler.improved import TranslationOptions

__all__ = ["XPathCompiler", "CompiledQuery", "TranslationOptions"]
