"""Cardinality estimation and cost modelling over logical plans.

The cost-based optimizer (``docs/optimizer.md``) needs two things the
heuristic gates never had: *how many tuples* flow through every operator
of a plan, and *what each operator pays* to produce them.  This module
supplies both, driven by the DataGuide path synopsis
(:class:`repro.index.synopsis.PathSynopsis`).

Cardinalities are **distributions over synopsis entries**, not plain
numbers: a node attribute's estimate says "36 nodes, all on the
``/xdoc/section/item`` path".  Location steps then *walk the DataGuide*
— a child step maps each frontier entry to its child entries, a
descendant step to the entries below it — so a query like
``/xdoc/entry`` is correctly estimated at zero even though the document
holds 216 ``entry`` elements on a deeper path.  This is exactly the
frontier walk :meth:`PathSynopsis.path_count` performs, generalized to
fractional counts and every axis.  Without a synopsis (no store, or
stale indexes) the estimator falls back to conservative per-axis
fanouts, so estimates always exist.

Costs separate **data pages**, **index pages** (mirroring the buffer
manager's ``kind`` split) and **CPU** (per-``next()`` plus per-node
visit charges); :meth:`Cost.score` folds them into one comparable
number.  The unit is "one iterator step"; a page fault costs
:attr:`CostModel.page_cost` of them.

Everything here is *advisory*: estimates pick between plans that return
identical answers (index routing, memo placement), never between
different answers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.algebra import operators as ops
from repro.algebra import scalar as S
from repro.index.synopsis import (
    KIND_ATTRIBUTE,
    KIND_ELEMENT,
    ROOT_ENTRY,
    PathSynopsis,
)
from repro.xpath.axes import Axis, NodeTestKind

#: Entry-count maps: synopsis entry index -> expected number of stream
#: tuples whose node lies on that path (absolute, summed over the whole
#: stream; ``ROOT_ENTRY`` stands for the document root node).
EntryCounts = Dict[int, float]


@dataclass(frozen=True)
class Cost:
    """Page and CPU charges of (part of) a plan."""

    data_pages: float = 0.0
    index_pages: float = 0.0
    cpu: float = 0.0

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(
            self.data_pages + other.data_pages,
            self.index_pages + other.index_pages,
            self.cpu + other.cpu,
        )

    def score(self, model: "CostModel") -> float:
        """Single comparable number (CPU units)."""
        return (self.data_pages + self.index_pages) * model.page_cost + self.cpu


ZERO_COST = Cost()


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the cost formulas.

    The page geometry mirrors the storage layer (small fixed-size node
    records, dense posting/extent arrays); the CPU charges are relative
    — only ratios matter, the unit is one iterator transition.
    """

    #: Stored node records per data page (record slots are small).
    records_per_page: float = 24.0
    #: Posting-list node ids per index page.
    ids_per_index_page: float = 256.0
    #: (pre, post) extents per index page.
    extents_per_index_page: float = 128.0
    #: One page fault costs this many CPU units.
    page_cost: float = 40.0
    #: Visiting (loading + testing) one candidate node.
    cpu_visit: float = 1.0
    #: Producing one output tuple (one ``next()``).
    cpu_next: float = 0.1
    #: One posting-list binary search (per context tuple).
    cpu_bisect: float = 1.0
    #: Default selectivity of a predicate with unknown shape.
    select_selectivity: float = 0.5
    #: Child/NODE steps also enumerate text nodes the synopsis ignores.
    text_fudge: float = 1.25
    #: Fraction of nodes a name test keeps when nothing is known.
    name_test_selectivity: float = 0.3
    #: Rows a ``$variable`` scan yields when nothing is known.
    default_var_rows: float = 4.0
    #: Rows an expression unnest (``id()`` tokenizing etc.) multiplies by.
    default_unnest_fanout: float = 4.0
    #: Per-probe charge of the memo table (hash + copy-out).
    memo_probe_cost: float = 0.5
    #: A memo whose producer costs no more than this (score units) is
    #: cheaper to recompute than to cache: the prune-memo rule drops it.
    memo_drop_threshold: float = 20.0
    #: Per-axis output fanout used when no synopsis applies.
    default_fanouts: Tuple[Tuple[Axis, float], ...] = (
        (Axis.CHILD, 4.0),
        (Axis.DESCENDANT, 16.0),
        (Axis.DESCENDANT_OR_SELF, 17.0),
        (Axis.SELF, 1.0),
        (Axis.PARENT, 1.0),
        (Axis.ATTRIBUTE, 1.0),
        (Axis.ANCESTOR, 2.0),
        (Axis.ANCESTOR_OR_SELF, 3.0),
        (Axis.FOLLOWING_SIBLING, 2.0),
        (Axis.PRECEDING_SIBLING, 2.0),
        (Axis.FOLLOWING, 8.0),
        (Axis.PRECEDING, 8.0),
        (Axis.NAMESPACE, 1.0),
    )

    def fanout(self, axis: Axis) -> float:
        for known, value in self.default_fanouts:
            if known == axis:
                return value
        return 4.0


DEFAULT_MODEL = CostModel()


@dataclass
class Dist:
    """Estimated tuple stream restricted to one node attribute.

    ``rows`` is the expected number of tuples; ``entries`` (when known)
    distributes them over synopsis entries and sums to ``rows``.
    """

    rows: float
    entries: Optional[EntryCounts] = None

    def scaled(self, factor: float) -> "Dist":
        if factor == 1.0:
            return self
        entries = (
            {e: c * factor for e, c in self.entries.items()}
            if self.entries is not None
            else None
        )
        return Dist(self.rows * factor, entries)


@dataclass
class OpEstimate:
    """Per-operator annotation: output rows and the operator's own cost."""

    label: str
    rows: float
    cost: Cost


@dataclass
class PlanEstimates:
    """Everything one estimation pass learned about a plan."""

    #: id(op) -> that operator's estimate.
    by_op: Dict[int, OpEstimate] = field(default_factory=dict)
    #: id(op) -> the *input* context distribution of each UnnestMap
    #: (including index scans) — what the route enumerator needs.
    unnest_inputs: Dict[int, Dist] = field(default_factory=dict)
    #: id(op) -> cumulative cost of the operator's whole subtree.
    subtree: Dict[int, Cost] = field(default_factory=dict)
    root_rows: float = 0.0
    total: Cost = ZERO_COST

    def rows_of(self, op: ops.Operator) -> Optional[float]:
        estimate = self.by_op.get(id(op))
        return None if estimate is None else estimate.rows


class PlanEstimator:
    """Bottom-up cardinality + cost estimation of one logical plan.

    A single instance is cheap and stateless between :meth:`estimate`
    calls; ``synopsis`` may be ``None`` (defaults-only mode).
    """

    def __init__(self, synopsis: Optional[PathSynopsis] = None,
                 model: CostModel = DEFAULT_MODEL):
        self.synopsis = synopsis if synopsis and len(synopsis) else None
        self.model = model

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def estimate(self, plan: ops.Operator) -> PlanEstimates:
        estimates = PlanEstimates()
        rows, _env = self._visit(plan, {}, estimates)
        estimates.root_rows = rows
        estimates.total = estimates.subtree.get(id(plan), ZERO_COST)
        return estimates

    def navigation_cost(self, in_dist: Dist, axis: Axis,
                        test_kind: NodeTestKind,
                        test_name: Optional[str]) -> Cost:
        """What a plain navigating unnest-map would pay for this step."""
        out, visited = self._step(in_dist, axis, test_kind, test_name)
        return Cost(
            data_pages=visited / self.model.records_per_page,
            cpu=(visited * self.model.cpu_visit
                 + out.rows * self.model.cpu_next),
        )

    def index_scan_cost(self, in_dist: Dist, axis: Axis, name: str) -> Cost:
        """What an index scan (IdxName/IdxDesc) would pay for this step.

        Candidates are the *descendant* name matches below the context —
        both scans slice the posting list by the context's subtree
        interval, the child variant additionally parent-checks each
        candidate.
        """
        model = self.model
        candidates, _ = self._step(
            in_dist, Axis.DESCENDANT, NodeTestKind.NAME, name
        )
        global_count = self._global_count(name)
        # The posting list is decoded once per store open and cached;
        # the extent array is probed per context tuple.
        index_pages = (
            global_count / model.ids_per_index_page
            + in_dist.rows / model.extents_per_index_page
        )
        # Every candidate is re-loaded for the exactness re-test (and,
        # for the child variant, the parent check): a data-page touch.
        check_factor = 2.0 if axis == Axis.CHILD else 1.0
        return Cost(
            data_pages=candidates.rows / model.records_per_page,
            index_pages=index_pages,
            cpu=(in_dist.rows * model.cpu_bisect
                 + candidates.rows * model.cpu_visit * check_factor
                 + candidates.rows * model.cpu_next),
        )

    # ------------------------------------------------------------------
    # recursion
    # ------------------------------------------------------------------

    def _visit(self, op: ops.Operator, env: Dict[str, Dist],
               estimates: PlanEstimates) -> Tuple[float, Dict[str, Dist]]:
        """Returns (stream rows, attr -> distribution) below ``op``."""
        model = self.model
        handler = getattr(self, "_visit_" + type(op).__name__, None)
        children_cost = ZERO_COST
        sub_env = None
        if handler is not None:
            result = handler(op, env, estimates)
            if len(result) == 4:
                # Handlers may name a distinct environment for their
                # subscripts (a Select's predicate sees the *input*
                # stream, not the filtered output).
                rows, out_env, own, sub_env = result
            else:
                rows, out_env, own = result
            for child in op.children():
                children_cost += estimates.subtree.get(id(child), ZERO_COST)
        else:
            # Unknown operator: pass the first child through unchanged.
            rows, out_env = 1.0, dict(env)
            for child in op.children():
                rows, out_env = self._visit(child, env, estimates)
                children_cost += estimates.subtree.get(id(child), ZERO_COST)
            own = Cost(cpu=rows * model.cpu_next)
        own += self._subscript_cost(
            op, out_env if sub_env is None else sub_env, estimates
        )
        estimates.by_op[id(op)] = OpEstimate(op.label(), rows, own)
        estimates.subtree[id(op)] = own + children_cost
        return rows, out_env

    def _subscript_cost(self, op: ops.Operator, env: Dict[str, Dist],
                        estimates: PlanEstimates) -> Cost:
        """Charge plans nested in this operator's subscripts.

        Nested plans see the consumer's environment: their anchoring
        ``χ[alias:outer_attr]`` map then restores the absolute row count
        (the plan runs once per consumer tuple).
        """
        nested_cost = ZERO_COST
        for subscript in op.subscripts():
            for nested in S.nested_plans(subscript):
                self._visit(nested.plan, env, estimates)
                nested_cost += estimates.subtree.get(
                    id(nested.plan), ZERO_COST
                )
        return nested_cost

    # -- leaves ---------------------------------------------------------

    def _visit_SingletonScan(self, op, env, estimates):
        return 1.0, dict(env), ZERO_COST

    def _visit_VarScan(self, op, env, estimates):
        rows = self.model.default_var_rows
        out_env = dict(env)
        out_env[op.attr] = Dist(rows, None)
        return rows, out_env, Cost(cpu=rows * self.model.cpu_next)

    # -- maps -----------------------------------------------------------

    def _map_like(self, op, env, estimates):
        rows, out_env = self._visit(op.child, env, estimates)
        dist: Optional[Dist] = None
        expr = op.expr
        if isinstance(expr, S.SRoot):
            dist = Dist(rows, {ROOT_ENTRY: rows})
        elif isinstance(expr, S.SAttr):
            known = out_env.get(expr.name)
            if known is not None:
                if isinstance(op.child, ops.SingletonScan):
                    # Nested-plan anchor (χ[alias:outer] over □): the
                    # plan runs once per outer tuple — restore the
                    # absolute stream size.
                    rows = known.rows
                dist = known
        out_env = dict(out_env)
        out_env[op.attr] = dist if dist is not None else Dist(rows, None)
        return rows, out_env, Cost(cpu=rows * self.model.cpu_next)

    _visit_MapOp = _map_like
    _visit_MatMap = _map_like

    def _visit_PosMap(self, op, env, estimates):
        rows, out_env = self._visit(op.child, env, estimates)
        out_env = dict(out_env)
        out_env[op.attr] = Dist(rows, None)
        return rows, out_env, Cost(cpu=rows * self.model.cpu_next)

    # -- steps ----------------------------------------------------------

    def _visit_UnnestMap(self, op, env, estimates):
        model = self.model
        rows, out_env = self._visit(op.child, env, estimates)
        in_dist = out_env.get(op.in_attr)
        if in_dist is None:
            in_dist = (
                Dist(rows, {ROOT_ENTRY: rows})
                if self.synopsis is not None and rows <= 1.0
                else Dist(rows, None)
            )
        estimates.unnest_inputs[id(op)] = in_dist
        if isinstance(op, (ops.IndexNameScan, ops.IndexDescendantScan)):
            out, _ = self._step(in_dist, op.axis, op.test_kind, op.test_name)
            own = self.index_scan_cost(in_dist, op.axis, op.test_name)
        else:
            out, visited = self._step(
                in_dist, op.axis, op.test_kind, op.test_name
            )
            own = Cost(
                data_pages=visited / model.records_per_page,
                cpu=(visited * model.cpu_visit
                     + out.rows * model.cpu_next),
            )
        out_env = dict(out_env)
        out_env[op.out_attr] = out
        return out.rows, out_env, own

    # Dispatch is by concrete type name; the index scans subclass
    # UnnestMap and share its handler (it branches on isinstance).
    _visit_IndexNameScan = _visit_UnnestMap
    _visit_IndexDescendantScan = _visit_UnnestMap

    def _visit_ExprUnnestMap(self, op, env, estimates):
        rows, out_env = self._visit(op.child, env, estimates)
        out_rows = rows * self.model.default_unnest_fanout
        out_env = dict(out_env)
        out_env[op.attr] = Dist(out_rows, None)
        return out_rows, out_env, Cost(cpu=out_rows * self.model.cpu_next)

    _visit_Unnest = _visit_ExprUnnestMap

    # -- filters and shapers --------------------------------------------

    def _visit_Select(self, op, env, estimates):
        rows, in_env = self._visit(op.child, env, estimates)
        predicate = op.predicate
        if isinstance(predicate, S.SConst) and predicate.value is True:
            factor = 1.0
        else:
            factor = self.model.select_selectivity
        out_env = {a: d.scaled(factor) for a, d in in_env.items()}
        return (rows * factor, out_env,
                Cost(cpu=rows * self.model.cpu_visit), in_env)

    def _visit_ProjectDup(self, op, env, estimates):
        rows, out_env = self._visit(op.child, env, estimates)
        dist = out_env.get(op.attr)
        out_rows = rows
        if dist is not None and dist.entries is not None:
            # Dedup caps each path at its document node count — a path
            # fully present stays fully present, only the over-counted
            # ones shrink (no global scaling).
            capped = {
                entry: min(count, self._entry_count(entry))
                for entry, count in dist.entries.items()
            }
            out_rows = min(rows, sum(capped.values()))
            out_env = dict(out_env)
            out_env[op.attr] = Dist(out_rows, capped)
        elif rows > 0 and out_rows < rows:
            factor = out_rows / rows
            out_env = {a: d.scaled(factor) for a, d in out_env.items()}
        return out_rows, out_env, Cost(cpu=rows * self.model.cpu_visit)

    def _visit_Project(self, op, env, estimates):
        rows, out_env = self._visit(op.child, env, estimates)
        out_env = dict(out_env)
        for new, old in op.renames.items():
            if old in out_env:
                out_env[new] = out_env[old]
        return rows, out_env, Cost(cpu=rows * self.model.cpu_next)

    def _visit_SortOp(self, op, env, estimates):
        rows, out_env = self._visit(op.child, env, estimates)
        cpu = rows * math.log2(rows + 2.0) * self.model.cpu_visit
        return rows, out_env, Cost(cpu=cpu)

    def _visit_TmpCs(self, op, env, estimates):
        rows, out_env = self._visit(op.child, env, estimates)
        out_env = dict(out_env)
        out_env[op.cs_attr] = Dist(rows, None)
        # Materializes one context at a time: a visit + a next per tuple.
        cpu = rows * (self.model.cpu_visit + self.model.cpu_next)
        return rows, out_env, Cost(cpu=cpu)

    def _visit_MemoX(self, op, env, estimates):
        rows, out_env = self._visit(op.child, env, estimates)
        return rows, out_env, Cost(cpu=rows * self.model.memo_probe_cost)

    # -- combinators ----------------------------------------------------

    def _visit_Concat(self, op, env, estimates):
        total = 0.0
        merged: EntryCounts = {}
        entries_known = True
        for branch in op.inputs:
            rows, branch_env = self._visit(branch, env, estimates)
            total += rows
            dist = branch_env.get(op.result_attr)
            if dist is not None and dist.entries is not None:
                for entry, count in dist.entries.items():
                    merged[entry] = merged.get(entry, 0.0) + count
            else:
                entries_known = False
        out_env = dict(env)
        out_env[op.result_attr] = Dist(
            total, merged if entries_known and merged else None
        )
        return total, out_env, Cost(cpu=total * self.model.cpu_next)

    def _visit_CrossProduct(self, op, env, estimates):
        left_rows, left_env = self._visit(op.left, env, estimates)
        right_rows, right_env = self._visit(op.right, env, estimates)
        rows = left_rows * right_rows
        out_env = dict(left_env)
        out_env.update(right_env)
        factor = rows / right_rows if right_rows > 0 else 0.0
        if op.result_attr in out_env and factor != 1.0:
            out_env[op.result_attr] = out_env[op.result_attr].scaled(factor)
        return rows, out_env, Cost(cpu=rows * self.model.cpu_next)

    def _visit_DJoin(self, op, env, estimates):
        left_rows, left_env = self._visit(op.left, env, estimates)
        # The dependent side sees the left attributes as free variables;
        # its own estimate is already absolute under that environment.
        right_rows, right_env = self._visit(op.right, left_env, estimates)
        out_env = dict(left_env)
        out_env.update(right_env)
        return right_rows, out_env, Cost(
            cpu=(left_rows + right_rows) * self.model.cpu_next
        )

    def _semi_like(self, op, env, estimates):
        left_rows, left_env = self._visit(op.left, env, estimates)
        self._visit(op.right, left_env, estimates)
        factor = self.model.select_selectivity
        out_env = {a: d.scaled(factor) for a, d in left_env.items()}
        return left_rows * factor, out_env, Cost(
            cpu=left_rows * self.model.cpu_visit
        )

    _visit_SemiJoin = _semi_like
    _visit_AntiJoin = _semi_like

    def _visit_Aggregate(self, op, env, estimates):
        rows, _child_env = self._visit(op.child, env, estimates)
        out_env = dict(env)
        out_env[op.attr] = Dist(1.0, None)
        return 1.0, out_env, Cost(cpu=rows * self.model.cpu_visit)

    def _visit_BinaryGroup(self, op, env, estimates):
        left_rows, left_env = self._visit(op.left, env, estimates)
        right_rows, _ = self._visit(op.right, left_env, estimates)
        out_env = dict(left_env)
        out_env[op.attr] = Dist(left_rows, None)
        return left_rows, out_env, Cost(
            cpu=(left_rows + right_rows) * self.model.cpu_visit
        )

    # ------------------------------------------------------------------
    # DataGuide stepping
    # ------------------------------------------------------------------

    def _step(self, in_dist: Dist, axis: Axis, test_kind: NodeTestKind,
              test_name: Optional[str]) -> Tuple[Dist, float]:
        """Estimate one location step: (output dist, nodes visited).

        ``visited`` is what plain navigation enumerates before the node
        test (the whole subtree for descendant axes, all children for
        the child axis) — the basis of the navigation cost.
        """
        synopsis = self.synopsis
        if synopsis is None or in_dist.entries is None:
            return self._default_step(in_dist, axis, test_kind, test_name)
        if test_kind in (NodeTestKind.COMMENT, NodeTestKind.PI):
            # The synopsis records no comment/PI paths.
            return self._default_step(in_dist, axis, test_kind, test_name)

        model = self.model
        out: EntryCounts = {}
        visited = 0.0
        default_rows = 0.0  # contributions with no entry attribution

        def emit(entry: int, count: float) -> None:
            if count > 0:
                out[entry] = out.get(entry, 0.0) + count

        for entry, count in in_dist.entries.items():
            share = self._share(entry, count)
            if axis == Axis.CHILD or axis == Axis.ATTRIBUTE:
                wanted = (
                    KIND_ATTRIBUTE if axis == Axis.ATTRIBUTE
                    else KIND_ELEMENT
                )
                for child in self._children(entry):
                    centry = synopsis.entries[child]
                    if centry.kind != wanted:
                        continue
                    visited += centry.count * share
                    if self._matches(centry.name, test_kind, test_name,
                                     centry.kind):
                        emit(child, centry.count * share)
            elif axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
                if axis == Axis.DESCENDANT_OR_SELF and entry != ROOT_ENTRY:
                    sentry = synopsis.entries[entry]
                    visited += count
                    if self._matches(sentry.name, test_kind, test_name,
                                     sentry.kind):
                        emit(entry, count)
                elif axis == Axis.DESCENDANT_OR_SELF:
                    visited += count
                    if test_kind == NodeTestKind.NODE:
                        emit(ROOT_ENTRY, count)
                for below in self._descendant_entries(entry):
                    bentry = synopsis.entries[below]
                    if bentry.kind != KIND_ELEMENT:
                        continue
                    visited += bentry.count * share
                    if self._matches(bentry.name, test_kind, test_name,
                                     bentry.kind):
                        emit(below, bentry.count * share)
            elif axis == Axis.SELF:
                visited += count
                if entry == ROOT_ENTRY:
                    if test_kind == NodeTestKind.NODE:
                        emit(entry, count)
                else:
                    sentry = synopsis.entries[entry]
                    if self._matches(sentry.name, test_kind, test_name,
                                     sentry.kind):
                        emit(entry, count)
            elif axis == Axis.PARENT:
                if entry == ROOT_ENTRY:
                    continue
                parent = synopsis.entries[entry].parent
                visited += count
                reach = min(count, self._entry_count(parent))
                if parent == ROOT_ENTRY:
                    if test_kind == NodeTestKind.NODE:
                        emit(parent, reach)
                else:
                    pentry = synopsis.entries[parent]
                    if self._matches(pentry.name, test_kind, test_name,
                                     pentry.kind):
                        emit(parent, reach)
            elif axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
                chain = entry
                if axis == Axis.ANCESTOR:
                    chain = (
                        ROOT_ENTRY if entry == ROOT_ENTRY
                        else synopsis.entries[entry].parent
                    )
                current = chain
                reach = count
                while True:
                    visited += reach
                    if current == ROOT_ENTRY:
                        if test_kind == NodeTestKind.NODE:
                            emit(current, reach)
                        break
                    aentry = synopsis.entries[current]
                    reach = min(reach, aentry.count)
                    if self._matches(aentry.name, test_kind, test_name,
                                     aentry.kind):
                        emit(current, reach)
                    current = aentry.parent
            elif axis in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING):
                if entry == ROOT_ENTRY:
                    continue
                parent = synopsis.entries[entry].parent
                parent_count = max(self._entry_count(parent), 1.0)
                for sibling in self._children(parent):
                    sentry = synopsis.entries[sibling]
                    if sentry.kind != KIND_ELEMENT:
                        continue
                    expected = 0.5 * count * sentry.count / parent_count
                    visited += expected
                    if self._matches(sentry.name, test_kind, test_name,
                                     sentry.kind):
                        emit(sibling, expected)
            else:
                # FOLLOWING / PRECEDING / NAMESPACE: no tree locality the
                # DataGuide can exploit — defaults for this entry.
                partial, partial_visited = self._default_step(
                    Dist(count, None), axis, test_kind, test_name
                )
                visited += partial_visited
                default_rows += partial.rows

        rows = sum(out.values()) + default_rows
        if test_kind == NodeTestKind.NODE and axis in (
            Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF
        ):
            # Text children exist but are not synopsis entries.
            rows *= model.text_fudge
            visited *= model.text_fudge
        if test_kind == NodeTestKind.TEXT:
            # Approximate: one text child per visited element — text
            # nodes have no synopsis entries, so no attribution.
            return Dist(visited, None), visited
        if default_rows:
            return Dist(rows, None), visited
        entries = {e: c for e, c in out.items() if c > 0}
        return Dist(rows, entries), visited

    def _default_step(self, in_dist: Dist, axis: Axis,
                      test_kind: NodeTestKind,
                      test_name: Optional[str]) -> Tuple[Dist, float]:
        """Synopsis-free fallback: conservative per-axis fanouts."""
        model = self.model
        visited = in_dist.rows * model.fanout(axis)
        rows = visited
        if test_kind == NodeTestKind.NAME and test_name is not None:
            rows *= model.name_test_selectivity
        return Dist(rows, None), visited

    # -- synopsis helpers ----------------------------------------------

    def _children(self, entry: int) -> Tuple[int, ...]:
        return self.synopsis.children_of(entry)

    def _descendant_entries(self, entry: int) -> List[int]:
        below: List[int] = []
        stack = list(self._children(entry))
        while stack:
            current = stack.pop()
            below.append(current)
            stack.extend(self._children(current))
        return below

    def _entry_count(self, entry: int) -> float:
        if entry == ROOT_ENTRY:
            return 1.0
        if self.synopsis is None or entry >= len(self.synopsis.entries):
            return 1.0
        return float(self.synopsis.entries[entry].count)

    def _share(self, entry: int, count: float) -> float:
        """Fraction of the entry's document nodes present in the stream."""
        total = self._entry_count(entry)
        return min(count / total, 1.0) if total > 0 else 0.0

    def _global_count(self, name: str) -> float:
        if self.synopsis is not None:
            return float(self.synopsis.element_count(name))
        return self.model.default_var_rows * self.model.fanout(Axis.DESCENDANT)

    @staticmethod
    def _matches(name: str, test_kind: NodeTestKind,
                 test_name: Optional[str], kind: int) -> bool:
        if test_kind == NodeTestKind.NODE:
            return True
        if test_kind == NodeTestKind.NAME:
            return name == test_name
        if test_kind == NodeTestKind.ANY_NAME:
            return True
        # text()/comment()/pi() never match element or attribute entries.
        return False


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def _round(value: float) -> float:
    return round(value, 3)


def explain_with_costs(plan: ops.Operator,
                       estimates: PlanEstimates) -> str:
    """The plan printer's tree, annotated with rows and cost per line."""
    lines: List[str] = []
    _render(plan, 0, lines, estimates)
    return "\n".join(lines)


def _render(op: ops.Operator, depth: int, lines: List[str],
            estimates: PlanEstimates) -> None:
    pad = "  " * depth
    suffix = f"  -> {op.result_attr}" if op.result_attr else ""
    estimate = estimates.by_op.get(id(op))
    note = ""
    if estimate is not None:
        cost = estimate.cost
        note = (
            f"  [rows≈{_round(estimate.rows)}"
            f" pages≈{_round(cost.data_pages + cost.index_pages)}"
            f" cpu≈{_round(cost.cpu)}]"
        )
    lines.append(f"{pad}{op.label()}{suffix}{note}")
    for subscript in op.subscripts():
        for nested in S.nested_plans(subscript):
            lines.append(f"{pad}  [nested {nested.agg}]")
            _render(nested.plan, depth + 2, lines, estimates)
    for child in op.children():
        _render(child, depth + 1, lines, estimates)


def summarize_plan(plan: ops.Operator,
                   estimates: Optional[PlanEstimates]) -> dict:
    """Deterministic JSON-friendly operator tree with estimates.

    The shape is the plan-corpus format (``tests/corpus/plans.json``):
    nested plans appear under ``"nested"``, children under
    ``"children"``; floats are rounded so replays compare exactly.
    """
    node: dict = {"op": plan.label()}
    if plan.result_attr:
        node["attr"] = plan.result_attr
    if estimates is not None:
        estimate = estimates.by_op.get(id(plan))
        if estimate is not None:
            node["rows"] = _round(estimate.rows)
            node["cost"] = {
                "data_pages": _round(estimate.cost.data_pages),
                "index_pages": _round(estimate.cost.index_pages),
                "cpu": _round(estimate.cost.cpu),
            }
    nested_nodes = []
    for subscript in plan.subscripts():
        for nested in S.nested_plans(subscript):
            nested_nodes.append({
                "agg": nested.agg,
                "plan": summarize_plan(nested.plan, estimates),
            })
    if nested_nodes:
        node["nested"] = nested_nodes
    children = [summarize_plan(child, estimates) for child in plan.children()]
    if children:
        node["children"] = children
    return node
