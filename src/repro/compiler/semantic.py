"""Phase 3: semantic analysis.

Annotates every expression node in place with

* ``static_type`` — the XPath basic type the expression evaluates to
  (variables are ``ANY``: XPath 1.0 variables are dynamically typed),
* ``uses_position`` / ``uses_last`` — whether the expression calls
  ``position()``/``last()`` *in its own context* (calls inside nested
  predicates establish their own context and do not count),

and checks function names/arity and the node-set requirements of the
grammar (path sources, union operands, filtered expressions).
"""

from __future__ import annotations

from repro.errors import XPathTypeError
from repro.xpath import functions as fnlib
from repro.xpath.datamodel import XPathType
from repro.xpath.xast import (
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    Number,
    PathExpr,
    Predicate,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)

_NODESET_OK = (XPathType.NODE_SET, XPathType.ANY)


def analyze(expr: Expr) -> Expr:
    """Annotate ``expr`` (recursively, in place) and return it."""
    _analyze(expr)
    return expr


def _analyze(expr: Expr) -> None:
    if isinstance(expr, Number):
        expr.static_type = XPathType.NUMBER
    elif isinstance(expr, Literal):
        expr.static_type = XPathType.STRING
    elif isinstance(expr, VariableRef):
        expr.static_type = XPathType.ANY
    elif isinstance(expr, FunctionCall):
        _analyze_call(expr)
    elif isinstance(expr, UnaryMinus):
        _analyze(expr.operand)
        expr.static_type = XPathType.NUMBER
        _inherit_positional(expr, expr.operand)
    elif isinstance(expr, BinaryOp):
        _analyze(expr.left)
        _analyze(expr.right)
        if expr.op in ("or", "and", "=", "!=", "<", "<=", ">", ">="):
            expr.static_type = XPathType.BOOLEAN
        else:
            expr.static_type = XPathType.NUMBER
        _inherit_positional(expr, expr.left)
        _inherit_positional(expr, expr.right)
    elif isinstance(expr, LocationPath):
        expr.static_type = XPathType.NODE_SET
        for step in expr.steps:
            for predicate in step.predicates:
                _analyze_predicate(predicate)
    elif isinstance(expr, PathExpr):
        _analyze(expr.source)
        if expr.source.static_type not in _NODESET_OK:
            raise XPathTypeError(
                "the source of a path expression must be a node-set, not "
                f"{expr.source.static_type.value}"
            )
        _analyze(expr.path)
        expr.static_type = XPathType.NODE_SET
        _inherit_positional(expr, expr.source)
    elif isinstance(expr, FilterExpr):
        _analyze(expr.primary)
        if expr.primary.static_type not in _NODESET_OK:
            raise XPathTypeError(
                "predicates can only filter node-sets, not "
                f"{expr.primary.static_type.value}"
            )
        for predicate in expr.predicates:
            _analyze_predicate(predicate)
        expr.static_type = XPathType.NODE_SET
        _inherit_positional(expr, expr.primary)
    elif isinstance(expr, UnionExpr):
        for operand in expr.operands:
            _analyze(operand)
            if operand.static_type not in _NODESET_OK:
                raise XPathTypeError(
                    "union operands must be node-sets, not "
                    f"{operand.static_type.value}"
                )
            _inherit_positional(expr, operand)
        expr.static_type = XPathType.NODE_SET
    else:  # pragma: no cover - parser produces no other nodes
        raise XPathTypeError(f"unknown expression {type(expr).__name__}")


def _analyze_predicate(predicate: Predicate) -> None:
    """Predicates establish a fresh position context."""
    _analyze(predicate.expr)


def _inherit_positional(parent: Expr, child: Expr) -> None:
    parent.uses_position = parent.uses_position or child.uses_position
    parent.uses_last = parent.uses_last or child.uses_last


def _analyze_call(expr: FunctionCall) -> None:
    signature = fnlib.lookup(expr.name)
    arity = len(expr.args)
    if arity < signature.min_args or (
        signature.max_args is not None and arity > signature.max_args
    ):
        raise XPathTypeError(
            f"{expr.name}() called with {arity} argument(s); expected "
            f"{signature.min_args}"
            + (
                f"..{signature.max_args}"
                if signature.max_args != signature.min_args
                else ""
            )
        )
    for index, arg in enumerate(expr.args):
        _analyze(arg)
        wanted = signature.param_type(index)
        if wanted == XPathType.NODE_SET and arg.static_type not in _NODESET_OK:
            raise XPathTypeError(
                f"argument {index + 1} of {expr.name}() must be a node-set, "
                f"not {arg.static_type.value}"
            )
        _inherit_positional(expr, arg)
    expr.static_type = signature.return_type
    if expr.name == "position":
        expr.uses_position = True
    elif expr.name == "last":
        expr.uses_last = True
