"""Rendering logical plans as indented trees.

The output mirrors the paper's figures 2–4: one operator per line, with
nested (dependent or subscript) plans indented under their consumer.
Used by tests, examples and documentation.
"""

from __future__ import annotations

from typing import List

from repro.algebra.operators import Operator
from repro.algebra.scalar import nested_plans


def plan_to_string(plan: Operator, indent: int = 0) -> str:
    """Render ``plan`` as an indented multi-line string."""
    lines: List[str] = []
    _render(plan, indent, lines)
    return "\n".join(lines)


def _render(op: Operator, depth: int, lines: List[str]) -> None:
    pad = "  " * depth
    suffix = f"  -> {op.result_attr}" if op.result_attr else ""
    lines.append(f"{pad}{op.label()}{suffix}")
    for subscript in op.subscripts():
        for nested in nested_plans(subscript):
            lines.append(f"{pad}  [nested {nested.agg}]")
            _render(nested.plan, depth + 2, lines)
    for child in op.children():
        _render(child, depth + 1, lines)
