"""Generic traversal and transformation of logical plans.

Plans are trees of :class:`~repro.algebra.operators.Operator` whose
subscripts may embed nested plans (:class:`~repro.algebra.scalar.SNested`);
both traversals descend into them.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.algebra import operators as ops
from repro.algebra import scalar as S

Transform = Callable[[ops.Operator], ops.Operator]


def walk_plan(plan: ops.Operator,
              include_nested: bool = True) -> Iterator[ops.Operator]:
    """Pre-order iteration, optionally descending into nested plans."""
    yield plan
    if include_nested:
        for subscript in plan.subscripts():
            for nested in S.nested_plans(subscript):
                yield from walk_plan(nested.plan, include_nested)
    for child in plan.children():
        yield from walk_plan(child, include_nested)


def transform_bottom_up(plan: ops.Operator, fn: Transform) -> ops.Operator:
    """Rewrite a plan bottom-up, in place.

    Children (and plans nested in subscripts) are transformed first, the
    rewritten children are re-attached, then ``fn`` is applied to the
    node itself; ``fn`` returns the (possibly replaced) node.
    """
    if isinstance(plan, ops.UnaryOperator):
        plan.child = transform_bottom_up(plan.child, fn)
    elif isinstance(plan, ops.BinaryOperator):
        plan.left = transform_bottom_up(plan.left, fn)
        plan.right = transform_bottom_up(plan.right, fn)
    elif isinstance(plan, ops.Concat):
        plan.inputs = tuple(
            transform_bottom_up(branch, fn) for branch in plan.inputs
        )
    for subscript in plan.subscripts():
        for nested in S.nested_plans(subscript):
            nested.plan = transform_bottom_up(nested.plan, fn)
    return fn(plan)
