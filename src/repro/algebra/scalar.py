"""Scalar (subscript) expressions of the algebra.

The sequence-valued operators of the algebra carry *subscripts*: the
predicate of a selection, the value expression of a map, the join
predicate of a semi-join.  Subscripts are scalar expressions over the
attributes of the current tuple; in Natix they are compiled to NVM
programs (section 5.2.2), and this module defines the intermediate
representation they are compiled from.

A subscript may embed *nested sequence-valued plans* (:class:`SNested`) —
for example ``count(π)`` inside a predicate becomes an aggregation over a
nested algebra plan.  The physical engine exposes these to NVM programs as
nested iterators (section 5.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.xpath.datamodel import XPathType

if TYPE_CHECKING:  # pragma: no cover
    from repro.algebra.operators import Operator


class Scalar:
    """Base class of scalar expression nodes."""

    __slots__ = ()

    def children(self) -> Tuple["Scalar", ...]:
        return ()

    def unparse(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SConst(Scalar):
    """A literal constant (string, number or boolean)."""

    value: object

    def unparse(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        if isinstance(self.value, bool):
            return "true()" if self.value else "false()"
        return str(self.value)


@dataclass(frozen=True)
class SAttr(Scalar):
    """Reads an attribute of the current tuple (a register at runtime)."""

    name: str

    def unparse(self) -> str:
        return self.name


@dataclass(frozen=True)
class SVar(Scalar):
    """Reads an XPath ``$variable`` from the execution context."""

    name: str

    def unparse(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class SFunc(Scalar):
    """Applies a library function to already-evaluated arguments.

    ``position()`` and ``last()`` never appear here — the translator turns
    them into :class:`SAttr` reads of the predicate's ``cp``/``cs``
    attributes, as in the paper's section 3.3.
    """

    name: str
    args: Tuple[Scalar, ...]

    def children(self) -> Tuple[Scalar, ...]:
        return self.args

    def unparse(self) -> str:
        return f"{self.name}({', '.join(a.unparse() for a in self.args)})"


@dataclass(frozen=True)
class SStringValue(Scalar):
    """The XPath string-value of a node-valued operand."""

    operand: Scalar

    def children(self) -> Tuple[Scalar, ...]:
        return (self.operand,)

    def unparse(self) -> str:
        return f"sv({self.operand.unparse()})"


@dataclass(frozen=True)
class SArith(Scalar):
    """``+ - * div mod`` over numbers (IEEE 754)."""

    op: str
    left: Scalar
    right: Scalar

    def children(self) -> Tuple[Scalar, ...]:
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass(frozen=True)
class SNeg(Scalar):
    """Unary minus."""

    operand: Scalar

    def children(self) -> Tuple[Scalar, ...]:
        return (self.operand,)

    def unparse(self) -> str:
        return f"-{self.operand.unparse()}"


@dataclass(frozen=True)
class SCmp(Scalar):
    """A comparison with the full dynamic XPath semantics.

    When operand static types are known, the translator emits pre-converted
    operands so this reduces to an atomic comparison; operands of unknown
    type (variables) fall back to the complete cross-type matrix at
    runtime.
    """

    op: str
    left: Scalar
    right: Scalar

    def children(self) -> Tuple[Scalar, ...]:
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass(frozen=True)
class SBool(Scalar):
    """Short-circuiting ``and`` / ``or``."""

    op: str
    left: Scalar
    right: Scalar

    def children(self) -> Tuple[Scalar, ...]:
        return (self.left, self.right)

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass(frozen=True)
class SNot(Scalar):
    operand: Scalar

    def children(self) -> Tuple[Scalar, ...]:
        return (self.operand,)

    def unparse(self) -> str:
        return f"not({self.operand.unparse()})"


@dataclass(frozen=True)
class SConvert(Scalar):
    """Implicit conversion to a basic type (spec section 3/4 rules)."""

    target: XPathType
    operand: Scalar

    def children(self) -> Tuple[Scalar, ...]:
        return (self.operand,)

    def unparse(self) -> str:
        return f"{self.target.value}({self.operand.unparse()})"


#: Aggregation functions supported by the 𝔄 operator and SNested.
#: ``exists`` supports the smart-aggregation early exit (section 5.2.5);
#: ``first_string``/``first_node`` implement the document-order-first rule
#: of ``string(node-set)``; ``collect`` materializes the node sequence for
#: node-set-valued arguments like ``id(e)``.
AGG_FUNCTIONS = (
    "exists",
    "count",
    "sum",
    "max",
    "min",
    "first_string",
    "first_node",
    "collect",
)


class SNested(Scalar):
    """A nested sequence-valued plan aggregated to a scalar.

    ``agg`` is one of :data:`AGG_FUNCTIONS`, applied to the values of the
    plan's result attribute.  Not frozen/hashable by value — plans are
    identity-compared.
    """

    __slots__ = ("plan", "agg")

    def __init__(self, plan: "Operator", agg: str):
        if agg not in AGG_FUNCTIONS:
            raise ValueError(f"unknown aggregate {agg!r}")
        self.plan = plan
        self.agg = agg

    def children(self) -> Tuple[Scalar, ...]:
        return ()

    def unparse(self) -> str:
        return f"𝔄[{self.agg}](<plan {self.plan.result_attr}>)"


@dataclass(frozen=True)
class SDeref(Scalar):
    """Dereference an ID string to the element node carrying it.

    Used by the translation of ``id()`` (section 3.6.3); evaluates to the
    element or to ``None`` when the ID is unknown (the unnest above drops
    empty results).
    """

    operand: Scalar

    def children(self) -> Tuple[Scalar, ...]:
        return (self.operand,)

    def unparse(self) -> str:
        return f"deref({self.operand.unparse()})"


@dataclass(frozen=True)
class STokenize(Scalar):
    """Whitespace-tokenize a string into a sequence (for ``id()``)."""

    operand: Scalar

    def children(self) -> Tuple[Scalar, ...]:
        return (self.operand,)

    def unparse(self) -> str:
        return f"tokenize({self.operand.unparse()})"


@dataclass(frozen=True)
class SRoot(Scalar):
    """The document root of a node-valued operand (``root(cn)``)."""

    operand: Scalar

    def children(self) -> Tuple[Scalar, ...]:
        return (self.operand,)

    def unparse(self) -> str:
        return f"root({self.operand.unparse()})"


def iter_scalar_tree(expr: Scalar):
    """Pre-order iteration over a scalar expression tree."""
    yield expr
    for child in expr.children():
        yield from iter_scalar_tree(child)


def nested_plans(expr: Scalar) -> List[SNested]:
    """All nested plans embedded in a scalar expression."""
    return [node for node in iter_scalar_tree(expr) if isinstance(node, SNested)]


def referenced_attrs(expr: Scalar) -> set[str]:
    """Attribute names read by the scalar expression itself.

    Attributes read by nested plans are *free variables of those plans*
    and are accounted for by plan-level free-variable inference.
    """
    return {
        node.name for node in iter_scalar_tree(expr) if isinstance(node, SAttr)
    }
