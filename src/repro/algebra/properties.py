"""Inferred properties of logical plans.

Implements the paper's notational devices as executable inference:

* ``A(e)`` — the attributes produced by a plan (section 2.2.2),
* ``F(e)`` — the free variables of a plan: attributes referenced by
  subscripts or operators that no child produces (these must be bound by
  an enclosing d-join or by the top-level execution context),
* duplicate-freeness and document-order inference in the spirit of
  Hidders & Michiels [13], which the paper names as the refinement of its
  axis-wise ppd classification (section 4.1).  The order/duplicate
  analysis is used by tests and by the optional ``hidders_michiels``
  translation refinement.
"""

from __future__ import annotations

from typing import Set

from repro.algebra import operators as ops
from repro.algebra.scalar import nested_plans, referenced_attrs
from repro.xpath.axes import Axis


def attributes(plan: ops.Operator) -> Set[str]:
    """A(e): all attributes present in the plan's output tuples."""
    attrs: Set[str] = set()
    for child in plan.children():
        attrs |= attributes(child)
    if isinstance(plan, ops.Project):
        # Projection keeps the listed attributes and exposes renames.
        return (attrs & set(plan.attrs)) | set(plan.renames)
    attrs.update(plan.produced_attrs())
    return attrs


def free_variables(plan: ops.Operator) -> Set[str]:
    """F(e): attributes the plan reads but does not produce itself."""
    produced: Set[str] = set()
    free: Set[str] = set()
    _collect_free(plan, produced, free)
    return free


def _collect_free(plan: ops.Operator, produced: Set[str], free: Set[str]) -> None:
    # Post-order: children first so 'produced' is known for subscripts.
    children = plan.children()
    if isinstance(plan, (ops.DJoin, ops.CrossProduct, ops.SemiJoin,
                         ops.AntiJoin, ops.BinaryGroup)):
        left, right = children
        left_produced: Set[str] = set()
        _collect_free(left, left_produced, free)
        right_produced: Set[str] = set()
        right_free: Set[str] = set()
        _collect_free(right, right_produced, right_free)
        if isinstance(plan, ops.DJoin):
            # The dependent side sees the left attributes.
            free |= right_free - left_produced
        else:
            free |= right_free
        produced |= left_produced | right_produced
    else:
        for child in children:
            _collect_free(child, produced, free)

    for subscript in plan.subscripts():
        free |= referenced_attrs(subscript) - produced
        for nested in nested_plans(subscript):
            free |= free_variables(nested.plan) - produced

    if isinstance(plan, ops.UnnestMap):
        if plan.in_attr not in produced:
            free.add(plan.in_attr)
    if isinstance(plan, ops.MemoX):
        for key in plan.key_attrs:
            if key not in produced:
                free.add(key)

    produced.update(plan.produced_attrs())


# ----------------------------------------------------------------------
# Order / duplicate analysis (Hidders & Michiels style)
# ----------------------------------------------------------------------

#: Axes whose step output is in document order *per context node*.
_FORWARD_AXES = frozenset(
    {
        Axis.CHILD,
        Axis.DESCENDANT,
        Axis.DESCENDANT_OR_SELF,
        Axis.FOLLOWING,
        Axis.FOLLOWING_SIBLING,
        Axis.SELF,
        Axis.ATTRIBUTE,
        Axis.NAMESPACE,
    }
)


def step_preserves_ddo(axis: Axis, input_ddo: bool, input_single: bool) -> bool:
    """Does a step yield distinct nodes in document order (DDO)?

    This is the core transition of Hidders & Michiels' automaton,
    restricted to the facts the translator needs: starting from a single
    context node, ``self``, ``child``, ``attribute``, ``descendant`` and
    ``descendant-or-self`` produce DDO output; from a DDO *sequence*, only
    steps that cannot interleave or duplicate do.
    """
    if input_single:
        return axis in _FORWARD_AXES
    if not input_ddo:
        return False
    # From a duplicate-free document-ordered sequence: child keeps order
    # only if contexts are siblings, which we cannot assume; the safe
    # subset is self and attribute (disjoint per context, nested order).
    return axis in (Axis.SELF, Axis.ATTRIBUTE)


def is_document_ordered(plan: ops.Operator) -> bool:
    """Conservative document-order (DDO) inference on the result attr.

    True when the plan provably yields its result nodes in document
    order.  Together with :func:`is_duplicate_free` this implements the
    Hidders–Michiels-style property propagation the paper lists as
    future work ("using properties of the intermediate results to avoid
    duplicate elimination and sorting", section 7).
    """
    return _order_info(plan).ordered


class _OrderState:
    """Abstract state of the H-M-style order automaton.

    ``ordered``   — output is in document order,
    ``unrelated`` — no output node is an ancestor of another,
    ``single``    — at most one output tuple.
    """

    __slots__ = ("ordered", "unrelated", "single")

    def __init__(self, ordered: bool, unrelated: bool, single: bool):
        self.ordered = ordered
        self.unrelated = unrelated
        self.single = single


_BOTTOM = _OrderState(False, False, False)


def _step_transition(axis: Axis, state: _OrderState) -> _OrderState:
    """Order-automaton transition for one location step."""
    if state.single:
        # From one context node every forward axis enumerates in
        # document order; sibling axes and child/attribute also keep
        # nodes mutually unrelated.
        if axis in (Axis.CHILD, Axis.ATTRIBUTE, Axis.NAMESPACE,
                    Axis.FOLLOWING_SIBLING):
            return _OrderState(True, True, False)
        if axis == Axis.SELF:
            return _OrderState(True, True, True)
        if axis == Axis.PARENT:
            return _OrderState(True, True, True)
        if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF,
                    Axis.FOLLOWING):
            return _OrderState(True, False, False)
        return _BOTTOM  # reverse axes enumerate in reverse order
    if not state.ordered:
        return _BOTTOM
    if axis == Axis.SELF:
        return state
    if not state.unrelated:
        return _BOTTOM
    # Ordered + mutually unrelated contexts: subtrees are disjoint
    # blocks in context order.
    if axis in (Axis.CHILD, Axis.ATTRIBUTE, Axis.NAMESPACE):
        return _OrderState(True, True, False)
    if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
        return _OrderState(True, False, False)
    return _BOTTOM


def _order_info(plan: ops.Operator) -> _OrderState:
    if isinstance(plan, ops.SingletonScan):
        return _OrderState(True, True, True)
    if isinstance(plan, ops.SortOp):
        return _OrderState(True, False, False)
    if isinstance(plan, ops.VarScan):
        return _BOTTOM  # binding order is caller-defined
    if isinstance(plan, (ops.Select, ops.PosMap, ops.TmpCs, ops.MatMap,
                         ops.MemoX, ops.ProjectDup, ops.Project,
                         ops.MapOp)):
        return _order_info(plan.child)  # type: ignore[attr-defined]
    if isinstance(plan, ops.UnnestMap):
        return _step_transition(plan.axis, _order_info(plan.child))
    if isinstance(plan, (ops.SemiJoin, ops.AntiJoin)):
        return _order_info(plan.left)
    if isinstance(plan, ops.Aggregate):
        return _OrderState(True, True, True)
    return _BOTTOM


def is_duplicate_free(plan: ops.Operator) -> bool:
    """Conservative duplicate-freeness of the plan's result attribute.

    True when the plan provably yields each node at most once.  Used by
    tests and by the dedup-pruning refinement.
    """
    if isinstance(plan, ops.ProjectDup):
        return plan.attr == plan.result_attr
    if isinstance(plan, ops.SingletonScan):
        return True
    if isinstance(plan, ops.VarScan):
        return True  # node-set values are duplicate-free by definition
    if isinstance(plan, (ops.Select, ops.SortOp, ops.TmpCs, ops.PosMap,
                         ops.MemoX, ops.MatMap)):
        return is_duplicate_free(plan.child)  # type: ignore[attr-defined]
    if isinstance(plan, ops.MapOp):
        return is_duplicate_free(plan.child)
    if isinstance(plan, ops.Project):
        return is_duplicate_free(plan.child)
    if isinstance(plan, (ops.SemiJoin, ops.AntiJoin)):
        return is_duplicate_free(plan.left)
    if isinstance(plan, ops.UnnestMap):
        # A non-ppd axis from duplicate-free input is duplicate-free.
        from repro.xpath.axes import ppd

        return (not ppd(plan.axis)) and is_duplicate_free(plan.child)
    if isinstance(plan, ops.DJoin):
        from repro.xpath.axes import ppd

        right = plan.right
        # A d-join whose dependent side is a single non-ppd unnest-map
        # over the singleton scan inherits the left side's property.
        if isinstance(right, ops.UnnestMap) and isinstance(
            right.child, ops.SingletonScan
        ):
            return (not ppd(right.axis)) and is_duplicate_free(plan.left)
        return False
    return False
