"""Sequence-valued operators of the logical algebra (paper Fig. 1).

Every operator is a node in a logical plan tree.  Following the paper's
convention (section 3.1.1), each sequence-valued plan designates a
*result attribute* — the attribute the paper always calls ``cn`` ("we
always want the cn attribute to contain the node attribute that was last
added").  Rather than physically renaming attributes to ``cn`` at every
step, plans carry ``result_attr`` metadata, mirroring the paper's
attribute manager which "does not emit actual copy operations" for the
``cn`` aliasing maps (section 5.1).

Operator inventory (paper notation in brackets):

=====================  =======================================================
:class:`SingletonScan`  □ — singleton sequence of the empty tuple
:class:`VarScan`        scan of a node-set-valued ``$variable``
:class:`Select`         σ_p
:class:`ProjectDup`     Π^D — duplicate elimination on one attribute
:class:`Project`        Π_A — projection (and Π_{a':a} renaming)
:class:`MapOp`          χ_{a:e} — attach a computed attribute
:class:`MatMap`         χ^mat — memoizing map for expensive expressions (4.3.2)
:class:`PosMap`         χ_{cp:counter++} — position counting with context reset
:class:`UnnestMap`      Υ_{c_i : c_{i-1}/a::t} — location step evaluation
:class:`ExprUnnestMap`  Υ over a sequence-valued scalar (id() tokenizing)
:class:`CrossProduct`   ×
:class:`DJoin`          <e> — dependent join
:class:`SemiJoin`       ⋉_p
:class:`AntiJoin`       ▷_p
:class:`Concat`         ⊕ — sequence concatenation (unions)
:class:`SortOp`         Sort_a — document-order sort
:class:`Aggregate`      𝔄_{a;f}
:class:`BinaryGroup`    Γ — binary grouping (defines Tmp^cs_c logically, 4.3.1)
:class:`TmpCs`          Tmp^cs / Tmp^cs_c — context-size annotation (3.3.4/4.3.1)
:class:`MemoX`          𝔐 — memoizing sequence operator (4.2.2)
=====================  =======================================================
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.algebra.scalar import Scalar
from repro.xpath.axes import Axis, NodeTestKind


class Operator:
    """Base class of all logical operators."""

    __slots__ = ("result_attr",)

    #: Short name used by the plan printer.
    symbol = "?"

    def __init__(self, result_attr: Optional[str]):
        #: The attribute holding "the node last added" (paper's cn).
        #: ``None`` for plans that do not produce context nodes.
        self.result_attr = result_attr

    def children(self) -> Tuple["Operator", ...]:
        return ()

    def subscripts(self) -> Tuple[Scalar, ...]:
        """Scalar subscript expressions attached to this operator."""
        return ()

    def produced_attrs(self) -> Tuple[str, ...]:
        """Attributes introduced by this operator itself."""
        return ()

    def label(self) -> str:
        """One-line description used by the plan printer."""
        return self.symbol


class SingletonScan(Operator):
    """□ — produces exactly one empty tuple."""

    __slots__ = ()
    symbol = "□"

    def __init__(self):
        super().__init__(None)


class VarScan(Operator):
    """Unnests a node-set-valued XPath variable into tuples.

    ``$v/child::a`` needs the variable's nodes as a tuple sequence; this
    scan produces one tuple per node, in the order stored in the binding.
    """

    __slots__ = ("variable", "attr")
    symbol = "VarScan"

    def __init__(self, variable: str, attr: str):
        super().__init__(attr)
        self.variable = variable
        self.attr = attr

    def produced_attrs(self) -> Tuple[str, ...]:
        return (self.attr,)

    def label(self) -> str:
        return f"VarScan[{self.attr}:${self.variable}]"


class UnaryOperator(Operator):
    """Base for operators with a single sequence-valued input."""

    __slots__ = ("child",)

    def __init__(self, child: Operator, result_attr: Optional[str]):
        super().__init__(result_attr)
        self.child = child

    def children(self) -> Tuple[Operator, ...]:
        return (self.child,)


class BinaryOperator(Operator):
    """Base for operators with two sequence-valued inputs."""

    __slots__ = ("left", "right")

    def __init__(self, left: Operator, right: Operator,
                 result_attr: Optional[str]):
        super().__init__(result_attr)
        self.left = left
        self.right = right

    def children(self) -> Tuple[Operator, ...]:
        return (self.left, self.right)


class Select(UnaryOperator):
    """σ_p — keeps tuples whose predicate evaluates to true."""

    __slots__ = ("predicate",)
    symbol = "σ"

    def __init__(self, child: Operator, predicate: Scalar):
        super().__init__(child, child.result_attr)
        self.predicate = predicate

    def subscripts(self) -> Tuple[Scalar, ...]:
        return (self.predicate,)

    def label(self) -> str:
        return f"σ[{self.predicate.unparse()}]"


class ProjectDup(UnaryOperator):
    """Π^D — duplicate elimination on ``attr`` without projecting.

    Exactly the paper's usage: "the duplicate elimination only operates on
    the relevant context node attribute cn of the tuple, without
    projecting away the remaining attributes" (section 3.1.1).
    """

    __slots__ = ("attr",)
    symbol = "Π^D"

    def __init__(self, child: Operator, attr: Optional[str] = None):
        attr = attr if attr is not None else child.result_attr
        if attr is None:
            raise ValueError("ProjectDup requires an attribute")
        super().__init__(child, child.result_attr)
        self.attr = attr

    def label(self) -> str:
        return f"Π^D[{self.attr}]"


class Project(UnaryOperator):
    """Π_A — keep only the attributes in ``attrs`` (with optional rename).

    ``renames`` maps new names to existing ones (the paper's Π_{a':a}).
    The physical attribute manager implements renames as register aliases.
    """

    __slots__ = ("attrs", "renames")
    symbol = "Π"

    def __init__(
        self,
        child: Operator,
        attrs: Sequence[str],
        renames: Optional[dict[str, str]] = None,
        result_attr: Optional[str] = None,
    ):
        super().__init__(child, result_attr or child.result_attr)
        self.attrs = tuple(attrs)
        self.renames = dict(renames or {})

    def produced_attrs(self) -> Tuple[str, ...]:
        # A rename introduces the new attribute name.
        return tuple(self.renames)

    def label(self) -> str:
        parts = list(self.attrs)
        parts.extend(f"{new}:{old}" for new, old in self.renames.items())
        return f"Π[{', '.join(parts)}]"


class MapOp(UnaryOperator):
    """χ_{attr : expr} — extends every tuple with a computed attribute."""

    __slots__ = ("attr", "expr")
    symbol = "χ"

    def __init__(self, child: Operator, attr: str, expr: Scalar,
                 is_result: bool = False):
        super().__init__(child, attr if is_result else child.result_attr)
        self.attr = attr
        self.expr = expr

    def subscripts(self) -> Tuple[Scalar, ...]:
        return (self.expr,)

    def produced_attrs(self) -> Tuple[str, ...]:
        return (self.attr,)

    def label(self) -> str:
        return f"χ[{self.attr}:{self.expr.unparse()}]"


class MatMap(MapOp):
    """χ^mat — a map that memoizes results keyed by its free variables.

    Used for expensive predicate clauses (section 4.3.2), following
    Hellerstein & Naughton's cached expensive methods.
    """

    __slots__ = ()
    symbol = "χ^mat"

    def label(self) -> str:
        return f"χ^mat[{self.attr}:{self.expr.unparse()}]"


class PosMap(UnaryOperator):
    """χ_{cp : counter++} — attaches 1-based context positions.

    In the canonical translation the counter resets when the operator is
    re-opened (each dependent d-join evaluation is one context).  In the
    stacked translation the operator watches ``context_attr`` (the input
    context node c_{i-1}) and resets the counter whenever it changes
    (section 4.3.1).
    """

    __slots__ = ("attr", "context_attr")
    symbol = "χ#"

    def __init__(self, child: Operator, attr: str,
                 context_attr: Optional[str] = None):
        super().__init__(child, child.result_attr)
        self.attr = attr
        self.context_attr = context_attr

    def produced_attrs(self) -> Tuple[str, ...]:
        return (self.attr,)

    def label(self) -> str:
        reset = f", reset on {self.context_attr}" if self.context_attr else ""
        return f"χ[{self.attr}:counter++{reset}]"


class UnnestMap(UnaryOperator):
    """Υ_{out : in/axis::test} — evaluates one location step.

    For every input tuple, enumerates the axis from the node bound to
    ``in_attr``, filters by the node test, and emits one output tuple per
    result node (in axis order) with the node bound to ``out_attr``.
    This is the paper's Υ with the navigation subscript executed by NVM
    commands against the storage layer (section 5.2.2).
    """

    __slots__ = ("in_attr", "out_attr", "axis", "test_kind", "test_name")
    symbol = "Υ"

    def __init__(
        self,
        child: Operator,
        in_attr: str,
        out_attr: str,
        axis: Axis,
        test_kind: NodeTestKind,
        test_name: Optional[str],
    ):
        super().__init__(child, out_attr)
        self.in_attr = in_attr
        self.out_attr = out_attr
        self.axis = axis
        self.test_kind = test_kind
        self.test_name = test_name

    def produced_attrs(self) -> Tuple[str, ...]:
        return (self.out_attr,)

    def step_display(self) -> str:
        from repro.xpath.xast import Step

        return Step(self.axis, self.test_kind, self.test_name).unparse()

    def label(self) -> str:
        return f"Υ[{self.out_attr}:{self.in_attr}/{self.step_display()}]"


class IndexNameScan(UnnestMap):
    """Υ[out : in/child::name] routed through the element name index.

    Logically identical to the child-axis unnest-map it replaces — same
    attributes, same per-context document order, same duplicates — which
    is why it subclasses :class:`UnnestMap`: every property inference
    (order, duplicate-freeness, free variables) applies unchanged.  The
    physical operator probes the posting list of ``name`` restricted to
    the context's subtree interval and keeps the ids whose parent is the
    context node, falling back to plain axis navigation per tuple when
    the context's document carries no fresh indexes.

    ``est_count`` is the path-synopsis cardinality the optimizer saw
    when it chose the index route (kept for EXPLAIN output).
    """

    __slots__ = ("est_count",)
    symbol = "IdxName"

    def __init__(self, child: Operator, in_attr: str, out_attr: str,
                 name: str, est_count: Optional[int] = None):
        super().__init__(child, in_attr, out_attr, Axis.CHILD,
                         NodeTestKind.NAME, name)
        self.est_count = est_count

    def label(self) -> str:
        return (
            f"IdxName[{self.out_attr}:{self.in_attr}/child::"
            f"{self.test_name}]"
        )


class IndexDescendantScan(UnnestMap):
    """Υ[out : in/descendant::name] answered from the name index.

    The posting list of ``name`` is sliced to the context node's
    (pre, post) interval with two binary searches — no subtree walk, no
    data-page reads for non-matching nodes.  Ascending node ids are
    document order, so the output keeps exactly the order and duplicate
    behaviour of the descendant-axis unnest-map it replaces.
    """

    __slots__ = ("est_count",)
    symbol = "IdxDesc"

    def __init__(self, child: Operator, in_attr: str, out_attr: str,
                 name: str, est_count: Optional[int] = None):
        super().__init__(child, in_attr, out_attr, Axis.DESCENDANT,
                         NodeTestKind.NAME, name)
        self.est_count = est_count

    def label(self) -> str:
        return (
            f"IdxDesc[{self.out_attr}:{self.in_attr}/descendant::"
            f"{self.test_name}]"
        )


class Unnest(UnaryOperator):
    """μ_g — unnests a sequence-valued attribute (paper Fig. 1).

    Each input tuple carrying a list in ``nested_attr`` yields one output
    tuple per list element, the element bound to ``out_attr``.  The
    translator itself only uses the fused Υ (unnest-map); μ is provided
    for Fig.-1 completeness and for plans built programmatically.
    """

    __slots__ = ("nested_attr", "out_attr")
    symbol = "μ"

    def __init__(self, child: Operator, nested_attr: str, out_attr: str):
        super().__init__(child, out_attr)
        self.nested_attr = nested_attr
        self.out_attr = out_attr

    def produced_attrs(self) -> Tuple[str, ...]:
        return (self.out_attr,)

    def label(self) -> str:
        return f"μ[{self.out_attr}:{self.nested_attr}]"


class ExprUnnestMap(UnaryOperator):
    """Υ over a sequence-valued scalar expression.

    Used by the translation of ``id()`` on non-node-set input, where the
    subscript tokenizes a string into a sequence (section 3.6.3), and for
    unnesting node-set values produced by scalar machinery.
    """

    __slots__ = ("attr", "expr")
    symbol = "Υ*"

    def __init__(self, child: Operator, attr: str, expr: Scalar):
        super().__init__(child, attr)
        self.attr = attr
        self.expr = expr

    def subscripts(self) -> Tuple[Scalar, ...]:
        return (self.expr,)

    def produced_attrs(self) -> Tuple[str, ...]:
        return (self.attr,)

    def label(self) -> str:
        return f"Υ[{self.attr}:{self.expr.unparse()}]"


class CrossProduct(BinaryOperator):
    """× — all combinations of left and right tuples."""

    __slots__ = ()
    symbol = "×"

    def __init__(self, left: Operator, right: Operator):
        super().__init__(left, right, right.result_attr or left.result_attr)


class DJoin(BinaryOperator):
    """<e> — dependent join (the paper's d-join).

    For every left tuple, the right (dependent) side is re-evaluated with
    the left tuple's attributes visible as free variables; the left tuple
    is concatenated with every right result tuple.
    """

    __slots__ = ()
    symbol = "◁▷"

    def __init__(self, left: Operator, right: Operator):
        super().__init__(left, right, right.result_attr or left.result_attr)

    def label(self) -> str:
        return "d-join"


class SemiJoin(BinaryOperator):
    """⋉_p — keeps left tuples for which some right tuple satisfies p."""

    __slots__ = ("predicate",)
    symbol = "⋉"

    def __init__(self, left: Operator, right: Operator, predicate: Scalar):
        super().__init__(left, right, left.result_attr)
        self.predicate = predicate

    def subscripts(self) -> Tuple[Scalar, ...]:
        return (self.predicate,)

    def label(self) -> str:
        return f"⋉[{self.predicate.unparse()}]"


class AntiJoin(BinaryOperator):
    """▷_p — keeps left tuples for which no right tuple satisfies p."""

    __slots__ = ("predicate",)
    symbol = "▷"

    def __init__(self, left: Operator, right: Operator, predicate: Scalar):
        super().__init__(left, right, left.result_attr)
        self.predicate = predicate

    def subscripts(self) -> Tuple[Scalar, ...]:
        return (self.predicate,)

    def label(self) -> str:
        return f"▷[{self.predicate.unparse()}]"


class Concat(Operator):
    """⊕ — concatenation of several sequences (union translation 3.1.3).

    All inputs must expose their result under the same attribute; the
    translator arranges this via ``result_attr`` metadata and the
    attribute manager aliases the registers.
    """

    __slots__ = ("inputs",)
    symbol = "⊕"

    def __init__(self, inputs: Sequence[Operator], result_attr: str):
        super().__init__(result_attr)
        self.inputs = tuple(inputs)

    def children(self) -> Tuple[Operator, ...]:
        return self.inputs


class SortOp(UnaryOperator):
    """Sort_a — sorts the sequence by document order of a node attribute."""

    __slots__ = ("attr",)
    symbol = "Sort"

    def __init__(self, child: Operator, attr: str):
        super().__init__(child, child.result_attr)
        self.attr = attr

    def label(self) -> str:
        return f"Sort[{self.attr}]"


class Aggregate(UnaryOperator):
    """𝔄_{a;f} — aggregates the input into a single one-attribute tuple.

    ``func`` is one of :data:`repro.algebra.scalar.AGG_FUNCTIONS`;
    ``input_attr`` defaults to the child's result attribute.  The physical
    implementation signals early exit for ``exists`` (section 5.2.5).
    """

    __slots__ = ("attr", "func", "input_attr")
    symbol = "𝔄"

    def __init__(self, child: Operator, attr: str, func: str,
                 input_attr: Optional[str] = None):
        super().__init__(child, None)
        self.attr = attr
        self.func = func
        self.input_attr = input_attr or child.result_attr

    def produced_attrs(self) -> Tuple[str, ...]:
        return (self.attr,)

    def label(self) -> str:
        return f"𝔄[{self.attr};{self.func}({self.input_attr})]"


class BinaryGroup(BinaryOperator):
    """Γ_{g; A1 θ A2; f} — binary grouping (paper Fig. 1).

    Adds to each left tuple an attribute ``g`` holding ``f`` aggregated
    over the right tuples matching ``left.A1 θ right.A2``.  The paper uses
    Γ to *define* Tmp^cs_c; the physical algebra implements
    :class:`TmpCs` directly, but Γ is provided for completeness and for
    the logical-definition tests.
    """

    __slots__ = ("attr", "left_attr", "theta", "right_attr", "func",
                 "func_attr")
    symbol = "Γ"

    def __init__(
        self,
        left: Operator,
        right: Operator,
        attr: str,
        left_attr: str,
        theta: str,
        right_attr: str,
        func: str,
        func_attr: Optional[str] = None,
    ):
        super().__init__(left, right, left.result_attr)
        self.attr = attr
        self.left_attr = left_attr
        self.theta = theta
        self.right_attr = right_attr
        self.func = func
        self.func_attr = func_attr

    def produced_attrs(self) -> Tuple[str, ...]:
        return (self.attr,)

    def label(self) -> str:
        return (
            f"Γ[{self.attr};{self.left_attr}{self.theta}{self.right_attr};"
            f"{self.func}]"
        )


class TmpCs(UnaryOperator):
    """Tmp^cs / Tmp^cs_c — materialize a context and annotate its size.

    With ``context_attr=None`` this is Tmp^cs (section 3.3.4): the whole
    input is one context.  With a context attribute it is Tmp^cs_c
    (section 4.3.1): a context ends when the input context node changes.
    As in the paper (section 5.2.4) there is a single implementation; the
    context size is taken from the position counter ``cp_attr`` of the
    final tuple of each context, so the input must already carry positions.
    """

    __slots__ = ("cs_attr", "cp_attr", "context_attr")
    symbol = "Tmp^cs"

    def __init__(self, child: Operator, cs_attr: str, cp_attr: str,
                 context_attr: Optional[str] = None):
        super().__init__(child, child.result_attr)
        self.cs_attr = cs_attr
        self.cp_attr = cp_attr
        self.context_attr = context_attr

    def produced_attrs(self) -> Tuple[str, ...]:
        return (self.cs_attr,)

    def label(self) -> str:
        if self.context_attr:
            return f"Tmp^cs_{self.context_attr}[{self.cs_attr}]"
        return f"Tmp^cs[{self.cs_attr}]"


class MemoX(UnaryOperator):
    """𝔐 — the paper's memoizing sequence-valued operator (section 4.2.2).

    Subscripted with the free variables of its producer; on evaluation it
    returns the memoized result sequence when the key variables were seen
    before, otherwise it evaluates the producer and records the result.
    """

    __slots__ = ("key_attrs",)
    symbol = "𝔐"

    def __init__(self, child: Operator, key_attrs: Sequence[str]):
        super().__init__(child, child.result_attr)
        self.key_attrs = tuple(key_attrs)

    def label(self) -> str:
        return f"𝔐[{', '.join(self.key_attrs)}]"


def iter_plan(op: Operator):
    """Pre-order iteration over a plan, *excluding* nested scalar plans."""
    yield op
    for child in op.children():
        yield from iter_plan(child)


def plan_operators(op: Operator) -> List[Operator]:
    """All operators of a plan including those inside nested subscripts."""
    from repro.algebra.scalar import nested_plans

    out: List[Operator] = []
    for node in iter_plan(op):
        out.append(node)
        for sub in node.subscripts():
            for nested in nested_plans(sub):
                out.extend(plan_operators(nested.plan))
    return out
