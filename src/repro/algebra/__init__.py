"""The logical tuple-sequence algebra of the paper (Fig. 1).

Sequence-valued operators live in :mod:`repro.algebra.operators`; the
scalar (subscript) expression language evaluated by the NVM lives in
:mod:`repro.algebra.scalar`.  :mod:`repro.algebra.printer` renders plans
as trees, and :mod:`repro.algebra.properties` infers attribute sets, free
variables and order/duplicate properties.
"""

from repro.algebra import operators, scalar
from repro.algebra.printer import plan_to_string

__all__ = ["operators", "scalar", "plan_to_string"]
