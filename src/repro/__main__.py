"""Command-line interface: evaluate XPath against XML files or stores.

Examples::

    python -m repro '//book/title' catalog.xml
    python -m repro --engine naive 'count(//book)' catalog.xml
    python -m repro --explain '/a/b[position() = last()]'
    python -m repro --store catalog.natix '//book' catalog.xml
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import (
    ENGINES,
    TranslationOptions,
    compile_xpath,
    evaluate,
    open_store,
    parse_document,
    store_document,
)
from repro.dom.node import Node, NodeKind
from repro.dom.serializer import serialize
from repro.errors import ReproError
from repro.xpath.datamodel import number_to_string


def _render_node(node: Node) -> str:
    if node.kind == NodeKind.ATTRIBUTE:
        return f'{node.name}="{node.value}"'
    if node.kind in (NodeKind.TEXT, NodeKind.COMMENT):
        return node.value or ""
    if node.kind == NodeKind.ROOT:
        return "(document root)"
    return serialize(node)


def _render_result(value) -> List[str]:
    if isinstance(value, list):
        ordered = sorted(value, key=lambda n: n.sort_key)
        return [_render_node(node) for node in ordered]
    if isinstance(value, bool):
        return ["true" if value else "false"]
    if isinstance(value, float):
        return [number_to_string(value)]
    return [str(value)]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Algebraic XPath 1.0 processor (ICDE 2005 reproduction)",
    )
    parser.add_argument("query", help="XPath 1.0 expression")
    parser.add_argument(
        "document", nargs="?",
        help="XML file to query ('-' for stdin); omit with --explain",
    )
    parser.add_argument(
        "--engine", choices=ENGINES, default="natix",
        help="evaluation engine (default: natix)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the logical algebra plan instead of evaluating",
    )
    parser.add_argument(
        "--optimize", action="store_true",
        help="enable the property-driven plan optimizer",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print runtime operator counters after evaluation",
    )
    parser.add_argument(
        "--store", metavar="PATH",
        help="store the parsed document as a page file, then query it",
    )
    arguments = parser.parse_args(argv)

    options = TranslationOptions(optimize=arguments.optimize)

    try:
        if arguments.explain:
            compiled = compile_xpath(arguments.query, options)
            print(compiled.explain())
            if compiled.optimizer_report:
                for note in compiled.optimizer_report.notes:
                    print(f"; optimizer: {note}")
            return 0

        if not arguments.document:
            parser.error("a document is required unless --explain is given")
        if arguments.document == "-":
            text = sys.stdin.read()
        else:
            with open(arguments.document, "r", encoding="utf-8") as handle:
                text = handle.read()
        document = parse_document(text)

        if arguments.store:
            store_document(document, arguments.store)
            with open_store(arguments.store) as stored:
                result = _evaluate(arguments, stored.root, options)
                _print_result(arguments, result)
                if arguments.stats:
                    print(f"; buffer: {stored.buffer.stats}",
                          file=sys.stderr)
            return 0

        result = _evaluate(arguments, document.root, options)
        _print_result(arguments, result)
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _evaluate(arguments, context_node, options):
    if arguments.engine == "natix":
        compiled = compile_xpath(arguments.query, options)
        result = compiled.evaluate(context_node)
        if arguments.stats:
            print(f"; stats: {dict(compiled.stats)}", file=sys.stderr)
        return result
    return evaluate(arguments.query, context_node, engine=arguments.engine)


def _print_result(arguments, result) -> None:
    for line in _render_result(result):
        print(line)


if __name__ == "__main__":
    sys.exit(main())
