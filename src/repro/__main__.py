"""Command-line interface: evaluate XPath against XML files or stores.

Examples::

    python -m repro '//book/title' catalog.xml
    python -m repro --engine naive 'count(//book)' catalog.xml
    python -m repro --explain '/a/b[position() = last()]'
    python -m repro --store catalog.natix '//book' catalog.xml
    python -m repro --explain-stats --repeat 10 '//book' catalog.xml
    python -m repro --repeat 64 --workers 4 '//book' catalog.xml
    python -m repro --codegen force --repeat 100 '//book' catalog.xml

Evaluation runs through an :class:`~repro.engine.session.XPathEngine`
session; ``--explain-stats`` prints its full JSON stats snapshot (plan
cache, per-phase compile timings, per-operator counters, buffer stats)
after the query result.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import ExitStack
from typing import List, Optional

from repro import (
    EvalOptions,
    TranslationOptions,
    XPathEngine,
    __version__,
    create_collection,
    engine_names,
    evaluate,
    open_collection,
    open_store,
    parse_document,
    store_document,
)
from repro.dom.node import Node, NodeKind
from repro.dom.serializer import serialize
from repro.errors import ReproError
from repro.xpath.datamodel import number_to_string

#: Engines the CLI runs through the session layer (plan cache + stats).
_SESSION_ENGINES = {
    "natix": TranslationOptions.improved,
    "natix-canonical": TranslationOptions.canonical,
}


def _render_node(node: Node) -> str:
    if node.kind == NodeKind.ATTRIBUTE:
        return f'{node.name}="{node.value}"'
    if node.kind in (NodeKind.TEXT, NodeKind.COMMENT):
        return node.value or ""
    if node.kind == NodeKind.ROOT:
        return "(document root)"
    return serialize(node)


def _render_result(value) -> List[str]:
    if isinstance(value, list):
        ordered = sorted(value, key=lambda n: n.sort_key)
        return [_render_node(node) for node in ordered]
    if isinstance(value, bool):
        return ["true" if value else "false"]
    if isinstance(value, float):
        return [number_to_string(value)]
    return [str(value)]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Algebraic XPath 1.0 processor (ICDE 2005 reproduction)",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {__version__}",
    )
    parser.add_argument("query", help="XPath 1.0 expression")
    parser.add_argument(
        "document", nargs="?",
        help="XML file to query ('-' for stdin); omit with --explain",
    )
    parser.add_argument(
        "--engine", choices=engine_names(), default="natix",
        help="evaluation engine (default: natix)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the logical algebra plan instead of evaluating",
    )
    parser.add_argument(
        "--explain-cost", action="store_true",
        help="like --explain, but annotate every operator with the "
             "optimizer's cardinality and cost estimates (synopsis-fed "
             "when a --store document with indexes is given)",
    )
    parser.add_argument(
        "--optimize", action="store_true",
        help="enable the property-driven plan optimizer",
    )
    parser.add_argument(
        "--optimizer", choices=("heuristic", "cost"), default="heuristic",
        help="plan-choice mode: the paper's selectivity gates "
             "('heuristic') or the synopsis-fed cost model ('cost'); "
             "answers are identical (session engines only)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print runtime operator counters after evaluation",
    )
    parser.add_argument(
        "--explain-stats", action="store_true",
        help="print the engine session's JSON stats snapshot after "
             "evaluation (plan cache, compile phases, operators, buffer)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="evaluate the query N times (exercises the plan cache)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run the --repeat evaluations through a thread pool of N "
             "workers (session engines only)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="abort the evaluation with a QueryTimeoutError after this "
             "many seconds (algebraic engines only)",
    )
    parser.add_argument(
        "--max-tuples", type=int, default=None, metavar="N",
        help="abort with a QueryBudgetError once the iterator tree has "
             "produced N tuples (algebraic engines only)",
    )
    parser.add_argument(
        "--codegen", choices=("auto", "off", "force"), default="off",
        help="compile plans to generated Python: 'auto' falls back to "
             "the interpreter on unsupported operators, 'force' fails "
             "instead (session engines only; default: off)",
    )
    parser.add_argument(
        "--store", metavar="PATH",
        help="store the parsed document as a page file, then query it",
    )
    parser.add_argument(
        "--collection", metavar="DIR",
        help="serve the query from a sharded collection directory: with "
             "a document argument, split it into --shards shards and "
             "write the collection there first; without one, open the "
             "existing collection (scatter-gather across --workers "
             "processes; session engines only)",
    )
    parser.add_argument(
        "--shards", type=int, default=4, metavar="N",
        help="shard count when building a collection from a document "
             "with --collection (default: 4)",
    )
    parser.add_argument(
        "--pruning", action=argparse.BooleanOptionalAction, default=True,
        help="skip collection shards whose path synopsis proves the "
             "query empty there (default on; --no-pruning scatters to "
             "every shard — results are identical either way)",
    )
    parser.add_argument(
        "--indexes", action=argparse.BooleanOptionalAction, default=True,
        help="build structural indexes when storing with --store, and "
             "route eligible steps onto them (session engines; default "
             "on, --no-indexes disables both)",
    )
    arguments = parser.parse_args(argv)

    if arguments.workers < 1:
        parser.error("--workers must be at least 1")
    if arguments.workers > 1 and arguments.engine not in _SESSION_ENGINES:
        parser.error(
            f"--workers requires a session engine "
            f"({sorted(_SESSION_ENGINES)}); {arguments.engine!r} has no "
            "concurrent evaluation path"
        )
    governed = (
        arguments.timeout is not None or arguments.max_tuples is not None
    )
    if governed and arguments.engine not in _SESSION_ENGINES:
        parser.error(
            f"--timeout/--max-tuples require an algebraic engine "
            f"({sorted(_SESSION_ENGINES)}); {arguments.engine!r} has no "
            "governance checkpoints"
        )
    if (
        arguments.codegen != "off"
        and arguments.engine not in _SESSION_ENGINES
    ):
        parser.error(
            f"--codegen requires a session engine "
            f"({sorted(_SESSION_ENGINES)}); {arguments.engine!r} has no "
            "generated-code backend"
        )
    if (
        arguments.optimizer != "heuristic"
        and arguments.engine not in _SESSION_ENGINES
    ):
        parser.error(
            f"--optimizer requires a session engine "
            f"({sorted(_SESSION_ENGINES)}); {arguments.engine!r} has no "
            "plan optimizer"
        )
    if arguments.timeout is not None and arguments.timeout <= 0:
        parser.error("--timeout must be positive")
    if arguments.max_tuples is not None and arguments.max_tuples <= 0:
        parser.error("--max-tuples must be positive")
    if arguments.collection:
        if arguments.engine not in _SESSION_ENGINES:
            parser.error(
                f"--collection requires a session engine "
                f"({sorted(_SESSION_ENGINES)}); {arguments.engine!r} "
                "cannot scatter across processes"
            )
        if arguments.store:
            parser.error("--collection and --store are mutually exclusive")
        if arguments.codegen != "off":
            parser.error(
                "--codegen is not supported with --collection "
                "(workers interpret shipped plans)"
            )
        if arguments.shards < 1:
            parser.error("--shards must be at least 1")

    options = TranslationOptions(optimize=arguments.optimize)

    try:
        if arguments.explain or arguments.explain_cost:
            # An optional document (and --store) makes the plan compile
            # against a real target, so index routing and synopsis-fed
            # estimates show up in the output.
            engine = XPathEngine(
                options,
                index="auto" if arguments.indexes else "off",
                optimizer=arguments.optimizer,
            )
            with ExitStack() as stack:
                target = None
                if arguments.document:
                    document = parse_document(
                        _read_document(arguments.document)
                    )
                    target = document
                    if arguments.store:
                        store_document(
                            document, arguments.store,
                            indexes=arguments.indexes,
                        )
                        target = stack.enter_context(
                            open_store(arguments.store)
                        )
                compiled = engine.compile(arguments.query, target=target)
                print(
                    compiled.explain_cost() if arguments.explain_cost
                    else compiled.explain()
                )
                if compiled.optimizer_report:
                    for note in compiled.optimizer_report.notes:
                        print(f"; optimizer: {note}")
            return 0

        if arguments.collection:
            if arguments.document:
                document = parse_document(
                    _read_document(arguments.document)
                )
                create_collection(
                    document, arguments.collection,
                    shards=arguments.shards, indexes=arguments.indexes,
                )
            _run_collection(arguments)
            return 0

        if not arguments.document:
            parser.error(
                "a document is required unless --explain/--explain-cost "
                "is given"
            )
        document = parse_document(_read_document(arguments.document))

        if arguments.store:
            store_document(
                document, arguments.store, indexes=arguments.indexes
            )
            with open_store(arguments.store) as stored:
                _run_query(arguments, stored)
            return 0

        _run_query(arguments, document)
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _read_document(path: str) -> str:
    """The document text: a file path or '-' for stdin."""
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _run_collection(arguments) -> None:
    """Serve the query from a collection through the session layer."""
    name = arguments.engine
    session = XPathEngine(
        _SESSION_ENGINES[name](optimize=arguments.optimize),
        index="auto" if arguments.indexes else "off",
        optimizer=arguments.optimizer,
        default_timeout=arguments.timeout,
        default_max_tuples=arguments.max_tuples,
    )
    with open_collection(
        arguments.collection,
        workers=arguments.workers,
        index="auto" if arguments.indexes else "off",
        optimizer=arguments.optimizer,
        pruning=arguments.pruning,
    ) as collection:
        for _ in range(max(1, arguments.repeat)):
            result = session.evaluate_collection(
                arguments.query, collection
            )
        merged = result.merged()
        if result.kind == "node-set":
            for record in merged:
                label = record.name or "(text)"
                print(
                    f"[shard {record.shard}] {label}: "
                    f"{record.string_value}"
                )
        else:
            for shard, value in enumerate(merged):
                rendered = (
                    number_to_string(value)
                    if isinstance(value, float) and not isinstance(
                        value, bool
                    )
                    else value
                )
                print(f"[shard {shard}] {rendered}")
        if arguments.stats:
            stats = collection.stats()
            print(
                f"; collection: queries={stats.queries} "
                f"submitted={stats.submitted} "
                f"completed={stats.completed} "
                f"timed_out={stats.timed_out} "
                f"cancelled={stats.cancelled} failed={stats.failed} "
                f"pruned={stats.shards_pruned} "
                f"recycles={stats.recycles}",
                file=sys.stderr,
            )
        if arguments.explain_stats:
            print(session.stats().to_json(indent=2), file=sys.stderr)


def _run_query(arguments, target) -> None:
    """Evaluate (possibly repeatedly), print the result, then stats."""
    name = arguments.engine
    session: Optional[XPathEngine] = None
    if name in _SESSION_ENGINES:
        session = XPathEngine(
            _SESSION_ENGINES[name](optimize=arguments.optimize),
            index="auto" if arguments.indexes else "off",
            codegen=arguments.codegen,
            optimizer=arguments.optimizer,
            default_timeout=arguments.timeout,
            default_max_tuples=arguments.max_tuples,
        )
        if arguments.workers > 1:
            batch = [arguments.query] * max(1, arguments.repeat)
            results = session.evaluate_concurrent(
                batch, target, max_workers=arguments.workers
            )
            result = results[-1]
        else:
            for _ in range(max(1, arguments.repeat)):
                result = session.evaluate(arguments.query, target)
    else:
        eval_options = EvalOptions(engine=name)
        for _ in range(max(1, arguments.repeat)):
            result = evaluate(arguments.query, target, eval_options)

    for line in _render_result(result):
        print(line)

    if arguments.stats and session is not None:
        compiled = session.compile(arguments.query, target=target)
        print(f"; stats: {dict(compiled.stats)}", file=sys.stderr)
    buffer = getattr(target, "buffer", None)
    if arguments.stats and buffer is not None:
        print(f"; buffer: {buffer.stats}", file=sys.stderr)
    if arguments.explain_stats:
        if session is None:
            print(
                f"; --explain-stats requires a session engine "
                f"({sorted(_SESSION_ENGINES)}); {name!r} has no session "
                "instrumentation",
                file=sys.stderr,
            )
        else:
            print(session.stats().to_json(indent=2), file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
