"""Textual NVM assembly: disassemble programs and assemble them back.

The format is one instruction per line::

    0: load_slot  r0, s3
    1: strval     r1, r0
    2: load_const r2, c0          ; '1991'
    3: cmp_eq     r3, r1, r2
    4: ret        r3

Operand sigils: ``r`` local register, ``s`` tuple slot, ``c`` constant
pool index, ``n`` name pool index, ``p`` nested plan index, ``@`` jump
target.  ``assemble`` parses this format back into a program (pools for
constants/names must be supplied; nested plans cannot be expressed in
text and are carried over from a template program).
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence

from repro.errors import NVMError
from repro.nvm.isa import Instruction, Opcode, make
from repro.nvm.machine import NVMProgram

#: Operand sigils per opcode, aligned with the operand tuple.
_SIGILS = {
    Opcode.LOAD_CONST: ("r", "c"),
    Opcode.LOAD_SLOT: ("r", "s"),
    Opcode.LOAD_VAR: ("r", "n"),
    Opcode.MOV: ("r", "r"),
    Opcode.ADD: ("r", "r", "r"),
    Opcode.SUB: ("r", "r", "r"),
    Opcode.MUL: ("r", "r", "r"),
    Opcode.DIV: ("r", "r", "r"),
    Opcode.MOD: ("r", "r", "r"),
    Opcode.NEG: ("r", "r"),
    Opcode.CMP_EQ: ("r", "r", "r"),
    Opcode.CMP_NE: ("r", "r", "r"),
    Opcode.CMP_LT: ("r", "r", "r"),
    Opcode.CMP_LE: ("r", "r", "r"),
    Opcode.CMP_GT: ("r", "r", "r"),
    Opcode.CMP_GE: ("r", "r", "r"),
    Opcode.NOT: ("r", "r"),
    Opcode.TO_BOOL: ("r", "r"),
    Opcode.TO_NUM: ("r", "r"),
    Opcode.TO_STR: ("r", "r"),
    Opcode.STRVAL: ("r", "r"),
    Opcode.DEREF: ("r", "r"),
    Opcode.TOKENIZE: ("r", "r"),
    Opcode.ROOT: ("r", "r"),
    Opcode.JUMP: ("@",),
    Opcode.JUMP_IF_FALSE: ("r", "@"),
    Opcode.JUMP_IF_TRUE: ("r", "@"),
    Opcode.EXEC_NESTED: ("r", "p"),
    Opcode.RET: ("r",),
}

_OPCODES_BY_NAME = {op.value: op for op in Opcode}
_OPERAND_RE = re.compile(r"^([rscnp@])(\d+)$")


def disassemble(program: NVMProgram) -> str:
    """Render a program as assembly text."""
    lines: List[str] = []
    for pc, instruction in enumerate(program.instructions):
        opcode, operands = instruction
        if opcode == Opcode.CALL:
            sigils: Sequence[str] = ("r", "n") + ("r",) * (len(operands) - 2)
        else:
            sigils = _SIGILS[opcode]
        rendered = ", ".join(
            f"{sigil if sigil != '@' else '@'}{value}"
            for sigil, value in zip(sigils, operands)
        )
        comment = _comment_for(program, instruction)
        suffix = f"    ; {comment}" if comment else ""
        lines.append(f"{pc:3d}: {opcode.value:<14}{rendered}{suffix}")
    return "\n".join(lines)


def _comment_for(program: NVMProgram, instruction: Instruction) -> Optional[str]:
    opcode, operands = instruction
    if opcode == Opcode.LOAD_CONST:
        return repr(program.constants[operands[1]])
    if opcode in (Opcode.LOAD_VAR,):
        return f"${program.names[operands[1]]}"
    if opcode == Opcode.CALL:
        return f"{program.names[operands[1]]}()"
    return None


def assemble(
    text: str,
    constants: Sequence[object] = (),
    names: Sequence[str] = (),
    template: Optional[NVMProgram] = None,
) -> NVMProgram:
    """Parse assembly text back into a program.

    ``constants``/``names`` supply the pools; when re-assembling a
    disassembled program, pass it as ``template`` to reuse its pools and
    nested plans.
    """
    if template is not None:
        constants = template.constants
        names = template.names
        nested = template.nested
    else:
        nested = ()
    instructions: List[Instruction] = []
    max_register = -1
    for raw_line in text.splitlines():
        line = raw_line.split(";")[0].strip()
        if not line:
            continue
        line = re.sub(r"^\d+:\s*", "", line)
        parts = line.split(None, 1)
        mnemonic = parts[0]
        opcode = _OPCODES_BY_NAME.get(mnemonic)
        if opcode is None:
            raise NVMError(f"unknown mnemonic {mnemonic!r}")
        operands: List[int] = []
        if len(parts) > 1:
            for token in parts[1].split(","):
                token = token.strip()
                match = _OPERAND_RE.match(token)
                if not match:
                    raise NVMError(f"bad operand {token!r}")
                sigil, number = match.groups()
                value = int(number)
                if sigil == "r":
                    max_register = max(max_register, value)
                operands.append(value)
        if opcode == Opcode.CALL:
            instructions.append(Instruction(opcode, tuple(operands)))
        else:
            instructions.append(make(opcode, *operands))
    program = NVMProgram(
        instructions, constants, names, nested, max_register + 1
    )
    program.validate()
    return program
