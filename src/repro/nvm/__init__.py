"""NVM — the Natix Virtual Machine (paper section 5.2.2).

Non-sequence-valued subscripts of the physical algebra are compiled to
assembler-like register programs and interpreted by this VM.  The VM can

* read attributes of the current tuple (``load_slot``),
* execute XPath basic-type functions and operators as single commands,
* access the results of nested iterators (``exec_nested``,
  section 5.2.3),
* navigate to node properties (string-value, ID dereferencing, document
  root).

:mod:`repro.nvm.compile_expr` compiles scalar IR to programs;
:mod:`repro.nvm.assembler` provides a textual assembly round-trip.
"""

from repro.nvm.isa import Instruction, Opcode
from repro.nvm.machine import NVMProgram, NVMSubscript
from repro.nvm.compile_expr import compile_scalar
from repro.nvm.assembler import assemble, disassemble

__all__ = [
    "Instruction",
    "Opcode",
    "NVMProgram",
    "NVMSubscript",
    "compile_scalar",
    "assemble",
    "disassemble",
]
