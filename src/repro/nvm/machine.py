"""The NVM interpreter.

:class:`NVMProgram` is a compiled program: instructions plus constant,
name and nested-plan pools.  :class:`NVMSubscript` adapts a program to
the engine's :class:`~repro.engine.subscripts.Subscript` protocol, so
physical operators are agnostic about which subscript backend they run.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.dom.node import Node
from repro.engine.subscripts import (
    NestedPlan,
    Subscript,
    call_builtin,
    coerce,
    deref,
)
from repro.errors import NVMError
from repro.nvm.isa import Instruction, Opcode
from repro.xpath.datamodel import (
    XPathType,
    arith,
    compare,
    to_boolean,
    to_number,
    to_string,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.iterator import RuntimeState


class NVMProgram:
    """A compiled NVM program with its pools."""

    __slots__ = ("instructions", "constants", "names", "nested", "n_registers")

    def __init__(
        self,
        instructions: Sequence[Instruction],
        constants: Sequence[object],
        names: Sequence[str],
        nested: Sequence[NestedPlan],
        n_registers: int,
    ):
        self.instructions = tuple(instructions)
        self.constants = tuple(constants)
        self.names = tuple(names)
        self.nested = tuple(nested)
        self.n_registers = n_registers

    def validate(self) -> None:
        """Static checks: operand ranges and jump targets."""
        size = len(self.instructions)
        for pc, instruction in enumerate(self.instructions):
            op, operands = instruction.opcode, instruction.operands
            if op in (Opcode.JUMP, Opcode.JUMP_IF_FALSE, Opcode.JUMP_IF_TRUE):
                target = operands[-1]
                if not 0 <= target <= size:
                    raise NVMError(f"jump target {target} out of range at {pc}")
            if op == Opcode.LOAD_CONST and operands[1] >= len(self.constants):
                raise NVMError(f"constant index out of range at {pc}")
            if op == Opcode.LOAD_VAR and operands[1] >= len(self.names):
                raise NVMError(f"name index out of range at {pc}")
            if op == Opcode.EXEC_NESTED and operands[1] >= len(self.nested):
                raise NVMError(f"nested plan index out of range at {pc}")


def _num(value: object) -> float:
    if isinstance(value, Node):
        return to_number(value.string_value())
    return to_number(value)  # type: ignore[arg-type]


def _cmp_operand(value: object) -> object:
    if isinstance(value, Node):
        return [value]
    return value


_ARITH_OPS = {
    Opcode.ADD: "+",
    Opcode.SUB: "-",
    Opcode.MUL: "*",
    Opcode.DIV: "div",
    Opcode.MOD: "mod",
}

_CMP_OPS = {
    Opcode.CMP_EQ: "=",
    Opcode.CMP_NE: "!=",
    Opcode.CMP_LT: "<",
    Opcode.CMP_LE: "<=",
    Opcode.CMP_GT: ">",
    Opcode.CMP_GE: ">=",
}


def execute(program: NVMProgram, runtime: "RuntimeState") -> object:
    """Run ``program`` against the current tuple; return its result."""
    regs: List[object] = [None] * program.n_registers
    slots = runtime.regs
    instructions = program.instructions
    pc = 0
    size = len(instructions)
    while pc < size:
        opcode, operands = instructions[pc]
        pc += 1
        if opcode == Opcode.LOAD_SLOT:
            regs[operands[0]] = slots[operands[1]]
        elif opcode == Opcode.LOAD_CONST:
            regs[operands[0]] = program.constants[operands[1]]
        elif opcode == Opcode.LOAD_VAR:
            regs[operands[0]] = runtime.context.variable(
                program.names[operands[1]]
            )
        elif opcode == Opcode.MOV:
            regs[operands[0]] = regs[operands[1]]
        elif opcode in _ARITH_OPS:
            regs[operands[0]] = arith(
                _ARITH_OPS[opcode], _num(regs[operands[1]]),
                _num(regs[operands[2]]),
            )
        elif opcode == Opcode.NEG:
            regs[operands[0]] = -_num(regs[operands[1]])
        elif opcode in _CMP_OPS:
            regs[operands[0]] = compare(
                _CMP_OPS[opcode],
                _cmp_operand(regs[operands[1]]),
                _cmp_operand(regs[operands[2]]),
            )
        elif opcode == Opcode.NOT:
            regs[operands[0]] = not to_boolean(regs[operands[1]])  # type: ignore[arg-type]
        elif opcode == Opcode.TO_BOOL:
            regs[operands[0]] = coerce(regs[operands[1]], XPathType.BOOLEAN)
        elif opcode == Opcode.TO_NUM:
            regs[operands[0]] = coerce(regs[operands[1]], XPathType.NUMBER)
        elif opcode == Opcode.TO_STR:
            regs[operands[0]] = coerce(regs[operands[1]], XPathType.STRING)
        elif opcode == Opcode.STRVAL:
            value = regs[operands[1]]
            if isinstance(value, Node):
                regs[operands[0]] = value.string_value()
            else:
                regs[operands[0]] = to_string(value)  # type: ignore[arg-type]
        elif opcode == Opcode.DEREF:
            regs[operands[0]] = deref(regs[operands[1]], runtime)
        elif opcode == Opcode.TOKENIZE:
            value = regs[operands[1]]
            text = value.string_value() if isinstance(value, Node) else to_string(value)  # type: ignore[arg-type]
            regs[operands[0]] = text.split()
        elif opcode == Opcode.ROOT:
            node = regs[operands[1]]
            if not isinstance(node, Node):
                raise NVMError("root: operand is not a node")
            regs[operands[0]] = node.root()
        elif opcode == Opcode.JUMP:
            pc = operands[0]
        elif opcode == Opcode.JUMP_IF_FALSE:
            if not to_boolean(regs[operands[0]]):  # type: ignore[arg-type]
                pc = operands[1]
        elif opcode == Opcode.JUMP_IF_TRUE:
            if to_boolean(regs[operands[0]]):  # type: ignore[arg-type]
                pc = operands[1]
        elif opcode == Opcode.CALL:
            dst, name_index = operands[0], operands[1]
            args = [regs[r] for r in operands[2:]]
            regs[dst] = call_builtin(program.names[name_index], args, runtime)
        elif opcode == Opcode.EXEC_NESTED:
            regs[operands[0]] = program.nested[operands[1]].evaluate(runtime)
        elif opcode == Opcode.RET:
            return regs[operands[0]]
        else:  # pragma: no cover - exhaustive over the ISA
            raise NVMError(f"unknown opcode {opcode}")
    raise NVMError("program ended without ret")


class NVMSubscript(Subscript):
    """Adapter: run an NVM program as an operator subscript."""

    __slots__ = ("program",)

    def __init__(self, program: NVMProgram):
        program.validate()
        self.program = program

    def evaluate(self, runtime: "RuntimeState") -> object:
        runtime.stats["nvm_invocations"] += 1
        return execute(self.program, runtime)
