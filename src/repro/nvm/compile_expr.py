"""Compiling scalar IR to NVM programs.

Single-pass code generation with a linear register allocator (registers
are never reused across subexpressions; programs are tiny).  Boolean
``and``/``or`` compile to short-circuit jumps; everything else is
straight-line code.
"""

from __future__ import annotations

from typing import Dict, List

from repro.algebra import scalar as S
from repro.engine.subscripts import NestedPlan
from repro.errors import CodegenError
from repro.nvm.isa import Instruction, Opcode, make
from repro.nvm.machine import NVMProgram
from repro.xpath.datamodel import XPathType

_ARITH = {"+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL,
          "div": Opcode.DIV, "mod": Opcode.MOD}
_CMP = {"=": Opcode.CMP_EQ, "!=": Opcode.CMP_NE, "<": Opcode.CMP_LT,
        "<=": Opcode.CMP_LE, ">": Opcode.CMP_GT, ">=": Opcode.CMP_GE}
_CONVERT = {
    XPathType.BOOLEAN: Opcode.TO_BOOL,
    XPathType.NUMBER: Opcode.TO_NUM,
    XPathType.STRING: Opcode.TO_STR,
}


class _Compiler:
    def __init__(self, slots: Dict[str, int], nested: Dict[int, NestedPlan]):
        self.slots = slots
        self.nested_map = nested
        self.instructions: List[Instruction] = []
        self.constants: List[object] = []
        self.names: List[str] = []
        self.nested: List[NestedPlan] = []
        self.n_registers = 0

    # ------------------------------------------------------------------

    def fresh(self) -> int:
        register = self.n_registers
        self.n_registers += 1
        return register

    def const_index(self, value: object) -> int:
        # Constants are few; linear identity-aware search suffices and
        # avoids hashing unhashable values.
        for index, existing in enumerate(self.constants):
            if existing is value or (
                type(existing) is type(value) and existing == value
            ):
                return index
        self.constants.append(value)
        return len(self.constants) - 1

    def name_index(self, name: str) -> int:
        if name in self.names:
            return self.names.index(name)
        self.names.append(name)
        return len(self.names) - 1

    def emit(self, opcode: Opcode, *operands: int) -> None:
        self.instructions.append(make(opcode, *operands))

    def emit_call(self, dst: int, name: str, args: List[int]) -> None:
        self.instructions.append(
            Instruction(Opcode.CALL, (dst, self.name_index(name), *args))
        )

    # ------------------------------------------------------------------

    def compile(self, expr: S.Scalar) -> int:
        """Emit code computing ``expr``; return its result register."""
        if isinstance(expr, S.SConst):
            dst = self.fresh()
            self.emit(Opcode.LOAD_CONST, dst, self.const_index(expr.value))
            return dst
        if isinstance(expr, S.SAttr):
            try:
                slot = self.slots[expr.name]
            except KeyError:
                raise CodegenError(
                    f"attribute {expr.name!r} has no register"
                ) from None
            dst = self.fresh()
            self.emit(Opcode.LOAD_SLOT, dst, slot)
            return dst
        if isinstance(expr, S.SVar):
            dst = self.fresh()
            self.emit(Opcode.LOAD_VAR, dst, self.name_index(expr.name))
            return dst
        if isinstance(expr, S.SNested):
            plan = self.nested_map.get(id(expr))
            if plan is None:
                raise CodegenError("nested plan was not compiled")
            self.nested.append(plan)
            dst = self.fresh()
            self.emit(Opcode.EXEC_NESTED, dst, len(self.nested) - 1)
            return dst
        if isinstance(expr, S.SStringValue):
            src = self.compile(expr.operand)
            dst = self.fresh()
            self.emit(Opcode.STRVAL, dst, src)
            return dst
        if isinstance(expr, S.SConvert):
            src = self.compile(expr.operand)
            opcode = _CONVERT.get(expr.target)
            if opcode is None:
                return src  # ANY/identity conversion
            dst = self.fresh()
            self.emit(opcode, dst, src)
            return dst
        if isinstance(expr, S.SArith):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            dst = self.fresh()
            self.emit(_ARITH[expr.op], dst, left, right)
            return dst
        if isinstance(expr, S.SNeg):
            src = self.compile(expr.operand)
            dst = self.fresh()
            self.emit(Opcode.NEG, dst, src)
            return dst
        if isinstance(expr, S.SCmp):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            dst = self.fresh()
            self.emit(_CMP[expr.op], dst, left, right)
            return dst
        if isinstance(expr, S.SNot):
            src = self.compile(expr.operand)
            dst = self.fresh()
            self.emit(Opcode.NOT, dst, src)
            return dst
        if isinstance(expr, S.SBool):
            return self._compile_bool(expr)
        if isinstance(expr, S.SFunc):
            args = [self.compile(arg) for arg in expr.args]
            dst = self.fresh()
            self.emit_call(dst, expr.name, args)
            return dst
        if isinstance(expr, S.SDeref):
            src = self.compile(expr.operand)
            dst = self.fresh()
            self.emit(Opcode.DEREF, dst, src)
            return dst
        if isinstance(expr, S.STokenize):
            src = self.compile(expr.operand)
            dst = self.fresh()
            self.emit(Opcode.TOKENIZE, dst, src)
            return dst
        if isinstance(expr, S.SRoot):
            src = self.compile(expr.operand)
            dst = self.fresh()
            self.emit(Opcode.ROOT, dst, src)
            return dst
        raise CodegenError(f"cannot compile scalar {type(expr).__name__}")

    def _compile_bool(self, expr: S.SBool) -> int:
        """Short-circuit ``and``/``or`` via conditional jumps."""
        dst = self.fresh()
        left = self.compile(expr.left)
        self.emit(Opcode.TO_BOOL, dst, left)
        jump_opcode = (
            Opcode.JUMP_IF_FALSE if expr.op == "and" else Opcode.JUMP_IF_TRUE
        )
        patch_at = len(self.instructions)
        self.emit(jump_opcode, dst, 0)  # patched below
        right = self.compile(expr.right)
        self.emit(Opcode.TO_BOOL, dst, right)
        target = len(self.instructions)
        self.instructions[patch_at] = make(jump_opcode, dst, target)
        return dst


def compile_scalar(
    expr: S.Scalar,
    slots: Dict[str, int],
    nested: Dict[int, NestedPlan],
) -> NVMProgram:
    """Compile scalar IR into a validated NVM program.

    ``slots`` maps attribute names to tuple registers; ``nested`` maps
    embedded :class:`~repro.algebra.scalar.SNested` nodes (by ``id``) to
    their compiled nested plans.
    """
    compiler = _Compiler(slots, nested)
    result = compiler.compile(expr)
    compiler.emit(Opcode.RET, result)
    program = NVMProgram(
        compiler.instructions,
        compiler.constants,
        compiler.names,
        compiler.nested,
        compiler.n_registers,
    )
    program.validate()
    return program
