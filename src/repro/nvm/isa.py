"""The NVM instruction set.

A program operates on a file of *local* registers (``r0``, ``r1``, ...)
private to one program invocation, plus read access to the plan's shared
tuple registers ("slots").  Programs are straight-line code with
conditional jumps for the short-circuiting ``and``/``or`` operators.

Instruction operands are small integers: register numbers, slot numbers,
indices into the program's constant/name pools, nested-plan indices, or
jump targets.  The textual form (see :mod:`repro.nvm.assembler`) writes
one instruction per line, e.g.::

    load_slot   r0, s2        ; r0 := tuple attribute in slot 2
    strval      r1, r0        ; r1 := string-value(r0)
    load_const  r2, c0        ; r2 := '1991'
    cmp_eq      r3, r1, r2
    ret         r3
"""

from __future__ import annotations

from enum import Enum
from typing import NamedTuple, Tuple


class Opcode(Enum):
    """NVM opcodes.  Operand conventions are documented per group."""

    # Data movement: (dst, src_index)
    LOAD_CONST = "load_const"   # dst := constants[src]
    LOAD_SLOT = "load_slot"     # dst := tuple slot src
    LOAD_VAR = "load_var"       # dst := $names[src] from execution context
    MOV = "mov"                 # dst := register src

    # Arithmetic (dst, a, b) — operands coerced to number, IEEE 754.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    NEG = "neg"                 # (dst, a)

    # Comparisons (dst, a, b) — full dynamic XPath comparison matrix.
    CMP_EQ = "cmp_eq"
    CMP_NE = "cmp_ne"
    CMP_LT = "cmp_lt"
    CMP_LE = "cmp_le"
    CMP_GT = "cmp_gt"
    CMP_GE = "cmp_ge"

    # Boolean (dst, a).
    NOT = "not"

    # Conversions (dst, a).
    TO_BOOL = "to_bool"
    TO_NUM = "to_num"
    TO_STR = "to_str"
    STRVAL = "strval"           # XPath string-value of a node operand

    # Node commands (dst, a).
    DEREF = "deref"             # ID string -> element (or None)
    TOKENIZE = "tokenize"       # string -> whitespace token list
    ROOT = "root"               # node -> document root node

    # Control flow.
    JUMP = "jump"               # (target)
    JUMP_IF_FALSE = "jump_if_false"  # (cond_reg, target)
    JUMP_IF_TRUE = "jump_if_true"    # (cond_reg, target)

    # Calls.
    CALL = "call"               # (dst, name_index, arg_reg...) builtin call
    EXEC_NESTED = "exec_nested"  # (dst, nested_index) nested iterator result

    RET = "ret"                 # (src) — program result


class Instruction(NamedTuple):
    """One NVM instruction: an opcode plus integer operands."""

    opcode: Opcode
    operands: Tuple[int, ...]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(str(o) for o in self.operands)
        return f"{self.opcode.value} {args}"


def make(opcode: Opcode, *operands: int) -> Instruction:
    """Construct an instruction (validates operand counts)."""
    expected = _ARITY.get(opcode)
    if expected is not None and len(operands) != expected:
        raise ValueError(
            f"{opcode.value} expects {expected} operands, got {len(operands)}"
        )
    return Instruction(opcode, tuple(operands))


#: Fixed operand counts (CALL is variadic and absent).
_ARITY = {
    Opcode.LOAD_CONST: 2,
    Opcode.LOAD_SLOT: 2,
    Opcode.LOAD_VAR: 2,
    Opcode.MOV: 2,
    Opcode.ADD: 3,
    Opcode.SUB: 3,
    Opcode.MUL: 3,
    Opcode.DIV: 3,
    Opcode.MOD: 3,
    Opcode.NEG: 2,
    Opcode.CMP_EQ: 3,
    Opcode.CMP_NE: 3,
    Opcode.CMP_LT: 3,
    Opcode.CMP_LE: 3,
    Opcode.CMP_GT: 3,
    Opcode.CMP_GE: 3,
    Opcode.NOT: 2,
    Opcode.TO_BOOL: 2,
    Opcode.TO_NUM: 2,
    Opcode.TO_STR: 2,
    Opcode.STRVAL: 2,
    Opcode.DEREF: 2,
    Opcode.TOKENIZE: 2,
    Opcode.ROOT: 2,
    Opcode.JUMP: 1,
    Opcode.JUMP_IF_FALSE: 2,
    Opcode.JUMP_IF_TRUE: 2,
    Opcode.EXEC_NESTED: 2,
    Opcode.RET: 1,
}
