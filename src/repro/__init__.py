"""repro — full-fledged algebraic XPath processing.

A from-scratch Python reproduction of *Full-fledged Algebraic XPath
Processing in Natix* (Brantner, Helmer, Kanne, Moerkotte; ICDE 2005):
the complete translation of XPath 1.0 into a tuple-sequence algebra, an
iterator-based physical algebra (NQE), the NVM subscript virtual machine,
the improved polynomial-time translation, baseline interpreters, and the
paper's full evaluation harness.

Quick start::

    from repro import parse_document, evaluate

    doc = parse_document("<a><b>x</b><b>y</b></a>")
    evaluate("/a/b[2]/text()", doc)

Serving repeated queries, use a session — compiled plans are cached and
every layer is instrumented::

    from repro import XPathEngine

    engine = XPathEngine()
    engine.evaluate("count(//b)", doc)
    engine.evaluate("count(//b)", doc)   # plan-cache hit
    engine.stats().cache.hits            # 1
"""

from repro.api import (
    ENGINE_REGISTRY,
    ENGINES,
    CancelToken,
    EngineStats,
    EvalOptions,
    ResourceGovernor,
    XPathEngine,
    build_indexes,
    compile_xpath,
    create_collection,
    engine_names,
    evaluate,
    evaluate_concurrent,
    get_engine_factory,
    open_collection,
    open_store,
    parse_document,
    register_engine,
    resolve_context_node,
    store_document,
    unregister_engine,
)
from repro.compiler import TranslationOptions, XPathCompiler
from repro.dom import Document, DocumentBuilder, Node, NodeKind, serialize
from repro.errors import (
    QueryBudgetError,
    QueryCancelledError,
    QueryGovernanceError,
    QueryTimeoutError,
)

__version__ = "1.7.0"

#: The curated public surface: ``from repro import *`` and the docs
#: cover exactly these names; everything else is internal.
__all__ = [
    "ENGINES",
    "ENGINE_REGISTRY",
    "CancelToken",
    "Document",
    "DocumentBuilder",
    "EngineStats",
    "EvalOptions",
    "Node",
    "NodeKind",
    "QueryBudgetError",
    "QueryCancelledError",
    "QueryGovernanceError",
    "QueryTimeoutError",
    "ResourceGovernor",
    "TranslationOptions",
    "XPathCompiler",
    "XPathEngine",
    "build_indexes",
    "compile_xpath",
    "create_collection",
    "engine_names",
    "evaluate",
    "evaluate_concurrent",
    "get_engine_factory",
    "open_collection",
    "open_store",
    "parse_document",
    "register_engine",
    "resolve_context_node",
    "store_document",
    "serialize",
    "unregister_engine",
    "__version__",
]
