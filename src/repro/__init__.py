"""repro — full-fledged algebraic XPath processing.

A from-scratch Python reproduction of *Full-fledged Algebraic XPath
Processing in Natix* (Brantner, Helmer, Kanne, Moerkotte; ICDE 2005):
the complete translation of XPath 1.0 into a tuple-sequence algebra, an
iterator-based physical algebra (NQE), the NVM subscript virtual machine,
the improved polynomial-time translation, baseline interpreters, and the
paper's full evaluation harness.

Quick start::

    from repro import parse_document, evaluate

    doc = parse_document("<a><b>x</b><b>y</b></a>")
    evaluate("/a/b[2]/text()", doc)
"""

from repro.api import (
    ENGINES,
    compile_xpath,
    evaluate,
    open_store,
    parse_document,
    store_document,
)
from repro.compiler import TranslationOptions, XPathCompiler
from repro.dom import Document, DocumentBuilder, Node, NodeKind, serialize

__version__ = "1.0.0"

__all__ = [
    "ENGINES",
    "Document",
    "DocumentBuilder",
    "Node",
    "NodeKind",
    "TranslationOptions",
    "XPathCompiler",
    "compile_xpath",
    "evaluate",
    "open_store",
    "parse_document",
    "store_document",
    "serialize",
    "__version__",
]
