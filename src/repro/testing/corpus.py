"""The persistent regression corpus.

Every divergence the fuzzer ever found — plus the paper's benchmark
queries and the hand-written conformance workloads — lives in
``tests/corpus/*.json`` and is replayed through the full nine-way
differential oracle by ``tests/test_corpus_regressions.py`` forever
after.

A corpus file is a JSON object::

    {
      "description": "...",
      "entries": [
        {
          "name": "unique-name",
          "query": "//a[last()]",
          "document": {"kind": "xml", "xml": "<xdoc>...</xdoc>"},
          "variables": {"num": 2},          # optional
          "namespaces": {"p": "urn:..."},   # optional
          "source": "fuzz seed=0 n=500",    # optional provenance
          "notes": "what went wrong"        # optional
        }
      ]
    }

``document.kind`` selects a builder: ``xml`` (inline markup), or the
deterministic workload generators ``generated`` (the paper's section
6.2.1 generator; args ``max_elements``/``fanout``/``depth``) and
``dblp`` (args ``publications``/``seed``).  Builder-based entries keep
the checked-in corpus small while still covering the paper's documents.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.dom.document import Document
from repro.dom.parser import parse as parse_xml

#: Default corpus location, relative to the repository root.
DEFAULT_CORPUS_DIR = Path("tests") / "corpus"

#: The corpus file new fuzz findings are appended to.
REGRESSIONS_FILE = "regressions.json"


@dataclass
class CorpusEntry:
    """One replayable reproducer."""

    name: str
    query: str
    document: Mapping[str, object]
    variables: Dict[str, object] = field(default_factory=dict)
    namespaces: Dict[str, str] = field(default_factory=dict)
    source: str = ""
    notes: str = ""

    def build_document(self) -> Document:
        return build_document(self.document)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "query": self.query,
            "document": dict(self.document),
        }
        if self.variables:
            data["variables"] = dict(self.variables)
        if self.namespaces:
            data["namespaces"] = dict(self.namespaces)
        if self.source:
            data["source"] = self.source
        if self.notes:
            data["notes"] = self.notes
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CorpusEntry":
        return cls(
            name=str(data["name"]),
            query=str(data["query"]),
            document=dict(data["document"]),  # type: ignore[arg-type]
            variables=dict(data.get("variables", {})),  # type: ignore[arg-type]
            namespaces=dict(data.get("namespaces", {})),  # type: ignore[arg-type]
            source=str(data.get("source", "")),
            notes=str(data.get("notes", "")),
        )


def build_document(spec: Mapping[str, object]) -> Document:
    """Materialize a corpus document spec."""
    kind = spec.get("kind", "xml")
    if kind == "xml":
        return parse_xml(str(spec["xml"]))
    if kind == "generated":
        from repro.workloads.docgen import generate_document

        return generate_document(
            int(spec.get("max_elements", 120)),
            int(spec.get("fanout", 4)),
            int(spec.get("depth", 3)),
        )
    if kind == "dblp":
        from repro.workloads.dblp import generate_dblp

        kwargs = {}
        if "seed" in spec:
            kwargs["seed"] = int(spec["seed"])
        return generate_dblp(int(spec.get("publications", 120)), **kwargs)
    raise ValueError(f"unknown corpus document kind {kind!r}")


def document_cache_key(spec: Mapping[str, object]) -> Tuple:
    """Hashable identity of a document spec (for runner reuse)."""
    return tuple(sorted((k, str(v)) for k, v in spec.items()))


# ----------------------------------------------------------------------
# File IO
# ----------------------------------------------------------------------


def load_corpus_file(path: Path) -> List[CorpusEntry]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return [CorpusEntry.from_dict(item) for item in data.get("entries", [])]


def load_corpus(
    directory: Path = DEFAULT_CORPUS_DIR,
) -> Iterator[Tuple[Path, CorpusEntry]]:
    """All entries of every ``*.json`` file under ``directory``."""
    for path in sorted(Path(directory).glob("*.json")):
        for entry in load_corpus_file(path):
            yield path, entry


def save_corpus_file(
    path: Path, description: str, entries: List[CorpusEntry]
) -> None:
    payload = {
        "description": description,
        "entries": [entry.to_dict() for entry in entries],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def append_entry(
    path: Path,
    entry: CorpusEntry,
    description: str = "Minimized fuzz-found regressions.",
) -> bool:
    """Append ``entry`` to a corpus file (created if missing).

    Returns False (and writes nothing) when an entry with the same
    query and document already exists — replays stay deduplicated.
    """
    entries: List[CorpusEntry] = []
    if Path(path).exists():
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        description = data.get("description", description)
        entries = [
            CorpusEntry.from_dict(item) for item in data.get("entries", [])
        ]
    for existing in entries:
        if existing.query == entry.query and document_cache_key(
            existing.document
        ) == document_cache_key(entry.document):
            return False
    taken = {existing.name for existing in entries}
    if entry.name in taken:
        base = entry.name
        index = 2
        while f"{base}-{index}" in taken:
            index += 1
        entry = CorpusEntry(
            name=f"{base}-{index}",
            query=entry.query,
            document=entry.document,
            variables=entry.variables,
            namespaces=entry.namespaces,
            source=entry.source,
            notes=entry.notes,
        )
    entries.append(entry)
    save_corpus_file(Path(path), description, entries)
    return True
