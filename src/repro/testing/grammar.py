"""Grammar-directed XPath 1.0 query generation.

:class:`QueryGenerator` walks the XPath 1.0 grammar exactly as the
parser in :mod:`repro.xpath.parser` accepts it — all thirteen axes,
every node-test production, the full core function library, nested
predicates, variables, unions, path/filter expressions and the whole
operator table — and emits random, *well-typed* queries.  Generation is
type-directed: every recursion asks for an expression of a static type
(:class:`~repro.xpath.datamodel.XPathType`) so the result always passes
semantic analysis (function arities and node-set-only argument positions
are respected).  The output is an AST built from :mod:`repro.xpath.xast`
nodes; ``unparse()`` turns it into surface syntax that round-trips
through the parser.

Everything is driven by one :class:`random.Random` seeded by the caller,
so a campaign is reproducible from ``(seed, n)`` alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.xpath.axes import Axis, NodeTestKind
from repro.xpath.datamodel import XPathType, XPathValue
from repro.xpath.xast import (
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    Number,
    PathExpr,
    Predicate,
    Step,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)

#: Default variable environment paired with the generated queries.  The
#: differential runner binds these on every route, so ``$``-references
#: never trip :class:`~repro.errors.UnboundVariableError`.
DEFAULT_VARIABLES: Mapping[str, XPathValue] = {
    "num": 2.0,
    "str": "x",
    "flag": True,
}

#: Expression-context namespace bindings for prefixed node tests.  The
#: document generator declares the same URI, so ``p:name`` tests can
#: actually match.
DEFAULT_NAMESPACES: Mapping[str, str] = {"p": "urn:repro:fuzz"}


@dataclass
class GrammarConfig:
    """Weights and pools steering the query generator.

    The default pools line up with :class:`.documents.DocumentConfig`
    so that name tests, equality predicates and ``id()`` lookups have a
    realistic chance of matching something.
    """

    #: Maximum expression recursion depth (predicates included).
    max_depth: int = 4
    #: Maximum number of steps in one location path.
    max_steps: int = 4
    #: Maximum predicates attached to one step or filter expression.
    max_predicates: int = 2
    #: Element names used by NAME node tests.
    element_names: Sequence[str] = ("a", "b", "c", "item", "sub", "leaf")
    #: Attribute names used on the attribute axis.
    attribute_names: Sequence[str] = ("id", "x", "ref")
    #: Processing-instruction targets for ``processing-instruction('t')``.
    pi_targets: Sequence[str] = ("target", "other")
    #: String literals (overlaps the document generator's text pool).
    string_pool: Sequence[str] = ("x", "y", "z", "1", "7", "", "a b")
    #: Variables the runner will bind (name -> value).
    variables: Mapping[str, XPathValue] = field(
        default_factory=lambda: dict(DEFAULT_VARIABLES)
    )
    #: Expression-context namespace prefixes (prefix -> URI).
    namespaces: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_NAMESPACES)
    )
    #: Probability that a name test is prefixed (``p:name`` / ``p:*``).
    prefixed_test_probability: float = 0.06
    #: Relative axis weights (unlisted axes get weight 0).
    axis_weights: Mapping[Axis, float] = field(
        default_factory=lambda: {
            Axis.CHILD: 8.0,
            Axis.DESCENDANT: 3.0,
            Axis.DESCENDANT_OR_SELF: 2.0,
            Axis.SELF: 1.0,
            Axis.PARENT: 1.5,
            Axis.ANCESTOR: 1.5,
            Axis.ANCESTOR_OR_SELF: 1.0,
            Axis.FOLLOWING_SIBLING: 1.5,
            Axis.PRECEDING_SIBLING: 1.5,
            Axis.FOLLOWING: 1.0,
            Axis.PRECEDING: 1.0,
            Axis.ATTRIBUTE: 2.5,
            Axis.NAMESPACE: 0.4,
        }
    )


#: Core functions by return type, with generator-friendly argument
#: recipes.  Each entry: (name, tuple of argument type requests), where
#: an argument request is an :class:`XPathType` or ``None`` for "omit
#: this optional argument sometimes".  The table covers all 27 library
#: functions; arity variation is handled in ``_call``.
_NUMBER_FUNCTIONS: Tuple[Tuple[str, Tuple[object, ...]], ...] = (
    ("last", ()),
    ("position", ()),
    ("count", (XPathType.NODE_SET,)),
    ("string-length", (XPathType.STRING,)),
    ("string-length", ()),
    ("sum", (XPathType.NODE_SET,)),
    ("floor", (XPathType.NUMBER,)),
    ("ceiling", (XPathType.NUMBER,)),
    ("round", (XPathType.NUMBER,)),
    ("number", (XPathType.ANY,)),
    ("number", ()),
)

_STRING_FUNCTIONS: Tuple[Tuple[str, Tuple[object, ...]], ...] = (
    ("string", (XPathType.ANY,)),
    ("string", ()),
    ("concat", (XPathType.STRING, XPathType.STRING)),
    ("concat", (XPathType.STRING, XPathType.STRING, XPathType.STRING)),
    ("substring-before", (XPathType.STRING, XPathType.STRING)),
    ("substring-after", (XPathType.STRING, XPathType.STRING)),
    ("substring", (XPathType.STRING, XPathType.NUMBER)),
    ("substring", (XPathType.STRING, XPathType.NUMBER, XPathType.NUMBER)),
    ("normalize-space", (XPathType.STRING,)),
    ("normalize-space", ()),
    ("translate", (XPathType.STRING, XPathType.STRING, XPathType.STRING)),
    ("name", (XPathType.NODE_SET,)),
    ("name", ()),
    ("local-name", (XPathType.NODE_SET,)),
    ("local-name", ()),
    ("namespace-uri", (XPathType.NODE_SET,)),
    ("namespace-uri", ()),
)

_BOOLEAN_FUNCTIONS: Tuple[Tuple[str, Tuple[object, ...]], ...] = (
    ("boolean", (XPathType.ANY,)),
    ("not", (XPathType.ANY,)),
    ("true", ()),
    ("false", ()),
    ("starts-with", (XPathType.STRING, XPathType.STRING)),
    ("contains", (XPathType.STRING, XPathType.STRING)),
    ("lang", (XPathType.STRING,)),
)

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")
_ARITHMETIC_OPS = ("+", "-", "*", "div", "mod")


class QueryGenerator:
    """Seeded, weighted, type-directed XPath query source."""

    def __init__(
        self,
        rng: random.Random,
        config: Optional[GrammarConfig] = None,
    ):
        self.rng = rng
        self.config = config or GrammarConfig()
        self._axes = tuple(self.config.axis_weights)
        self._axis_weights = tuple(
            self.config.axis_weights[a] for a in self._axes
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def query_ast(self) -> Expr:
        """One random top-level expression AST."""
        want = self.rng.choices(
            (
                XPathType.NODE_SET,
                XPathType.NUMBER,
                XPathType.STRING,
                XPathType.BOOLEAN,
            ),
            weights=(6.0, 2.0, 1.5, 1.5),
        )[0]
        return self._expr(want, depth=0)

    def query(self) -> str:
        """One random query in surface syntax."""
        return self.query_ast().unparse()

    def queries(self, n: int) -> List[str]:
        """``n`` random queries."""
        return [self.query() for _ in range(n)]

    # ------------------------------------------------------------------
    # Type-directed expression generation
    # ------------------------------------------------------------------

    def _expr(self, want: XPathType, depth: int) -> Expr:
        if want == XPathType.ANY:
            want = self.rng.choices(
                (
                    XPathType.NODE_SET,
                    XPathType.NUMBER,
                    XPathType.STRING,
                    XPathType.BOOLEAN,
                ),
                weights=(4.0, 2.5, 2.0, 1.5),
            )[0]
        if want == XPathType.NODE_SET:
            return self._node_set(depth)
        if want == XPathType.NUMBER:
            return self._number(depth)
        if want == XPathType.STRING:
            return self._string(depth)
        return self._boolean(depth)

    # -- node-sets ------------------------------------------------------

    def _node_set(self, depth: int) -> Expr:
        if depth >= self.config.max_depth:
            return self._location_path(depth, max_steps=1)
        roll = self.rng.random()
        if roll < 0.58:
            return self._location_path(depth)
        if roll < 0.72:
            return self._filter_expr(depth)
        if roll < 0.84:
            return self._path_expr(depth)
        if roll < 0.94:
            return self._union(depth)
        return self._call("id", (XPathType.ANY,), depth)

    def _location_path(
        self, depth: int, max_steps: Optional[int] = None
    ) -> LocationPath:
        limit = max_steps or self.config.max_steps
        n_steps = self.rng.randint(1, limit)
        absolute = self.rng.random() < 0.7
        steps = [self._step(depth) for _ in range(n_steps)]
        if not absolute and not steps:
            steps = [self._step(depth)]
        return LocationPath(absolute, steps)

    def _filter_expr(self, depth: int) -> FilterExpr:
        primary = self._location_path(depth + 1)
        predicates = self._predicates(depth + 1, minimum=1)
        return FilterExpr(primary, predicates)

    def _path_expr(self, depth: int) -> PathExpr:
        # The source must unparse atomically; FilterExpr parenthesizes
        # its primary, and id() is a function call, so both are safe to
        # put in front of '/'.
        if self.rng.random() < 0.5:
            source: Expr = self._filter_expr(depth + 1)
        else:
            source = self._call("id", (XPathType.ANY,), depth + 1)
        steps = [
            self._step(depth + 1)
            for _ in range(self.rng.randint(1, 2))
        ]
        return PathExpr(source, LocationPath(False, steps))

    def _union(self, depth: int) -> UnionExpr:
        operands: List[Expr] = []
        for _ in range(self.rng.randint(2, 3)):
            if self.rng.random() < 0.85:
                operands.append(self._location_path(depth + 1))
            else:
                operands.append(self._filter_expr(depth + 1))
        return UnionExpr(operands)

    # -- steps and node tests ------------------------------------------

    def _step(self, depth: int) -> Step:
        axis = self.rng.choices(self._axes, weights=self._axis_weights)[0]
        test_kind, test_name = self._node_test(axis)
        predicates = (
            self._predicates(depth + 1)
            if depth < self.config.max_depth
            else []
        )
        return Step(axis, test_kind, test_name, predicates)

    def _node_test(
        self, axis: Axis
    ) -> Tuple[NodeTestKind, Optional[str]]:
        cfg = self.config
        if axis == Axis.ATTRIBUTE:
            roll = self.rng.random()
            if roll < 0.6:
                return NodeTestKind.NAME, self.rng.choice(
                    cfg.attribute_names
                )
            if roll < 0.9:
                return NodeTestKind.ANY_NAME, None
            return NodeTestKind.NODE, None
        if axis == Axis.NAMESPACE:
            return (
                (NodeTestKind.ANY_NAME, None)
                if self.rng.random() < 0.7
                else (NodeTestKind.NODE, None)
            )
        roll = self.rng.random()
        if roll < 0.52:
            name = self.rng.choice(cfg.element_names)
            if cfg.namespaces and (
                self.rng.random() < cfg.prefixed_test_probability
            ):
                prefix = self.rng.choice(sorted(cfg.namespaces))
                return NodeTestKind.NAME, f"{prefix}:{name}"
            return NodeTestKind.NAME, name
        if roll < 0.72:
            if cfg.namespaces and (
                self.rng.random() < cfg.prefixed_test_probability
            ):
                prefix = self.rng.choice(sorted(cfg.namespaces))
                return NodeTestKind.ANY_NAME, prefix
            return NodeTestKind.ANY_NAME, None
        if roll < 0.84:
            return NodeTestKind.NODE, None
        if roll < 0.92:
            return NodeTestKind.TEXT, None
        if roll < 0.96:
            return NodeTestKind.COMMENT, None
        if self.rng.random() < 0.5:
            return NodeTestKind.PI, None
        return NodeTestKind.PI, self.rng.choice(cfg.pi_targets)

    def _predicates(
        self, depth: int, minimum: int = 0
    ) -> List[Predicate]:
        count = self.rng.choices(
            (0, 1, 2), weights=(5.0, 3.5, 1.0)
        )[0]
        count = max(count, minimum)
        count = min(count, self.config.max_predicates)
        return [self._predicate(depth) for _ in range(count)]

    def _predicate(self, depth: int) -> Predicate:
        roll = self.rng.random()
        if roll < 0.3:
            # Positional: a bare number or a position()/last() formula.
            return Predicate(self._positional(depth))
        if roll < 0.55:
            return Predicate(self._boolean(depth + 1))
        return Predicate(self._expr(XPathType.ANY, depth + 1))

    def _positional(self, depth: int) -> Expr:
        roll = self.rng.random()
        if roll < 0.4:
            return Number(float(self.rng.randint(1, 4)))
        position = FunctionCall("position", [])
        last = FunctionCall("last", [])
        if roll < 0.6:
            op = self.rng.choice(("=", "<", "<=", ">", ">=", "!="))
            return BinaryOp(op, position, Number(float(self.rng.randint(1, 3))))
        if roll < 0.75:
            return BinaryOp("=", position, last)
        if roll < 0.9:
            return BinaryOp(
                "-", last, Number(float(self.rng.randint(0, 2)))
            )
        return BinaryOp(
            "=",
            BinaryOp("mod", position, Number(2.0)),
            Number(float(self.rng.randint(0, 1))),
        )

    # -- scalars --------------------------------------------------------

    def _number(self, depth: int) -> Expr:
        if depth >= self.config.max_depth:
            return self._number_leaf()
        roll = self.rng.random()
        if roll < 0.25:
            return self._number_leaf()
        if roll < 0.6:
            name, args = self.rng.choice(_NUMBER_FUNCTIONS)
            return self._call(name, args, depth)
        if roll < 0.9:
            op = self.rng.choice(_ARITHMETIC_OPS)
            return BinaryOp(
                op,
                self._number(depth + 1),
                self._number(depth + 1),
            )
        return UnaryMinus(self._number(depth + 1))

    def _number_leaf(self) -> Expr:
        variables = self._variables_of(float)
        if variables and self.rng.random() < 0.2:
            return VariableRef(self.rng.choice(variables))
        if self.rng.random() < 0.15:
            return Number(self.rng.choice((0.5, 2.5, 10.0, 100.0)))
        return Number(float(self.rng.randint(0, 9)))

    def _string(self, depth: int) -> Expr:
        if depth >= self.config.max_depth:
            return self._string_leaf()
        roll = self.rng.random()
        if roll < 0.35:
            return self._string_leaf()
        name, args = self.rng.choice(_STRING_FUNCTIONS)
        return self._call(name, args, depth)

    def _string_leaf(self) -> Expr:
        variables = self._variables_of(str)
        if variables and self.rng.random() < 0.2:
            return VariableRef(self.rng.choice(variables))
        return Literal(self.rng.choice(tuple(self.config.string_pool)))

    def _boolean(self, depth: int) -> Expr:
        if depth >= self.config.max_depth:
            return FunctionCall(
                "true" if self.rng.random() < 0.5 else "false", []
            )
        roll = self.rng.random()
        if roll < 0.45:
            op = self.rng.choice(_COMPARISON_OPS)
            left_type = self.rng.choice(
                (
                    XPathType.NODE_SET,
                    XPathType.NUMBER,
                    XPathType.STRING,
                    XPathType.BOOLEAN,
                )
            )
            right_type = self.rng.choice(
                (
                    XPathType.NODE_SET,
                    XPathType.NUMBER,
                    XPathType.STRING,
                )
            )
            return BinaryOp(
                op,
                self._expr(left_type, depth + 1),
                self._expr(right_type, depth + 1),
            )
        if roll < 0.6:
            op = "and" if self.rng.random() < 0.5 else "or"
            return BinaryOp(
                op,
                self._boolean(depth + 1),
                self._boolean(depth + 1),
            )
        variables = self._variables_of(bool)
        if variables and roll < 0.65:
            return VariableRef(self.rng.choice(variables))
        name, args = self.rng.choice(_BOOLEAN_FUNCTIONS)
        return self._call(name, args, depth)

    # -- shared helpers -------------------------------------------------

    def _call(
        self, name: str, arg_types: Tuple[object, ...], depth: int
    ) -> FunctionCall:
        args = [
            self._expr(arg_type, depth + 1)  # type: ignore[arg-type]
            for arg_type in arg_types
        ]
        return FunctionCall(name, args)

    def _variables_of(self, kind: type) -> List[str]:
        return [
            name
            for name, value in self.config.variables.items()
            if isinstance(value, kind)
            and not (kind is float and isinstance(value, bool))
        ]
