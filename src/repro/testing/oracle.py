"""The differential oracle: ten execution routes, one answer.

Every query is executed through ten independent paths:

``naive``
    the main-memory :class:`~repro.baselines.naive.NaiveInterpreter`
    (independent spec-oracle semantics, no algebra involved),
``canonical``
    the section-3 canonical algebraic translation,
``improved``
    the section-4/5 improved translation through an
    :class:`~repro.engine.session.XPathEngine` (plan cache included),
``stored``
    the improved translation over the *stored* document — page file,
    buffer manager, record decoding — via
    :class:`~repro.storage.DocumentStore` with index routing pinned
    off,
``indexed``
    the same stored document through an engine with ``index="force"``:
    every eligible name step is rewritten onto the structural indexes
    (:mod:`repro.index`) regardless of selectivity, so the posting-list
    route is differentially checked against plain navigation,
``concurrent``
    the improved translation through
    :meth:`XPathEngine.evaluate_concurrent` (thread pool, shared plans,
    singleflight coalescing),
``compiled``
    the improved translation through an engine with ``codegen="auto"``:
    plans that the :mod:`repro.codegen` backend supports run as
    generated Python (fused loops, inlined node tests), everything else
    falls back to the interpreter — so the code generator is
    differentially checked against all interpreted routes,
``cost``
    the stored document through an engine with ``index="auto"`` and
    ``optimizer="cost"``: the synopsis-fed cost model of
    :mod:`repro.compiler.cost` decides index routing and memo
    placement instead of the hard-coded selectivity gates — the cost
    optimizer may pick different physical plans (page and ``next()``
    counts change) but must never change answers,
``collection``
    the document split into per-subtree shards
    (:func:`repro.collection.split_document`), written as a sharded
    collection and served through the multi-process scatter-gather
    pool (:class:`repro.collection.Collection` via
    :meth:`XPathEngine.evaluate_collection`).  Sharding changes the
    data, so this route is *not* compared against the whole-document
    baseline; its reference leg (``collection_ref``) evaluates the
    very same shard stores in-process through the single-document
    stored route and merges per-shard canonical results identically —
    the multi-process pipeline (plan shipping, worker-side back-end
    compilation, cross-process result records, global document-order
    merge) must be observationally identical to in-process serving,
    shard for shard.  The leg runs with synopsis pruning enabled and,
    on ungoverned runs, overlaps a second pruning-disabled submission
    from another thread — concurrent in-flight queries on the one
    pool — asserting both return identical canonical results (or the
    same typed error),
``server``
    the stored document served over loopback HTTP through the
    streaming front end (:mod:`repro.server`): each query is POSTed to
    a thread-hosted :class:`~repro.server.XPathServer` with a tiny
    page size (so every non-trivial node-set crosses the wire as
    several chunked page frames), the client reassembles the pages and
    canonicalizes them — the whole serialization round trip (NDJSON
    frames, canonical node records, typed error frames) must agree
    with the in-process baseline.  Stored node ids are preorder ranks,
    so the wire-side sort keys line up with the in-memory document's,
    and error frames carry the engine's exception type name, so
    error-outcome agreement works transparently.

Results are compared in a document-independent canonical form: node-sets
become document-order tuples of ``(sort_key, kind, name, string_value)``
(stored node ids are preorder ranks, so sort keys line up across the
in-memory and stored builds), scalars are compared by type and value
with NaN normalized.  Errors are part of the contract too: a
:class:`~repro.errors.ReproError` of the same type on every route is
agreement; a non-``ReproError`` exception anywhere is always reported
(``crash``), because no input may take the engine down with a raw
``IndexError``/``AttributeError``.
"""

from __future__ import annotations

import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api import EvalOptions
from repro.baselines.naive import NaiveInterpreter
from repro.collection import Collection, create_collection_from_document
from repro.compiler.improved import TranslationOptions
from repro.compiler.pipeline import XPathCompiler
from repro.dom.document import Document
from repro.engine.governor import ResourceGovernor
from repro.engine.session import XPathEngine
from repro.errors import ReproError
from repro.storage import DocumentStore
from repro.xpath.context import make_context
from repro.xpath.datamodel import XPathValue

#: All route names, in reporting order.  ``naive`` is the baseline.
ROUTE_NAMES: Tuple[str, ...] = (
    "naive",
    "canonical",
    "improved",
    "stored",
    "indexed",
    "concurrent",
    "compiled",
    "cost",
    "collection",
    "server",
)

#: Routes that need the document written to a page file.
_STORE_ROUTES = ("stored", "indexed", "cost", "server")

#: The loopback HTTP route, and the page size its requests pin (small,
#: so ordinary fuzz node-sets stream as several page frames).
SERVER_ROUTE = "server"
SERVER_PAGE_SIZE = 7

#: The scatter-gather route; compared against its in-process reference
#: leg (``collection_ref``), never against the whole-document baseline.
COLLECTION_ROUTE = "collection"
COLLECTION_REF_ROUTE = "collection_ref"

#: Shards the collection route splits each fuzz document into, and
#: worker processes serving them (workers < shards on purpose: one
#: process owning several shards is the harder multiplexing case).
COLLECTION_SHARDS = 3
COLLECTION_WORKERS = 2

BASELINE_ROUTE = "naive"

#: Exception type names a *governed* route may legitimately raise while
#: the ungoverned baseline succeeds: aborting on a limit is correct
#: behaviour, any other disagreement is still a divergence.
GOVERNANCE_ERROR_NAMES = frozenset(
    {"QueryTimeoutError", "QueryBudgetError", "QueryCancelledError"}
)


@dataclass(frozen=True)
class Outcome:
    """Canonical result of one route: a value, an error, or a crash."""

    kind: str  #: ``"value"`` | ``"error"`` | ``"crash"``
    payload: object  #: canonical value, or the exception type name
    detail: str = field(default="", compare=False)

    def describe(self) -> str:
        if self.kind == "value":
            return repr(self.payload)
        return f"<{self.kind}: {self.payload}: {self.detail}>"


def canonical_value(value: XPathValue) -> object:
    """Document-independent canonical form of an XPath value.

    Node-sets keep duplicates (a backend returning duplicate nodes is a
    bug) and are normalized to document order — XPath 1.0 node-sets are
    unordered, and the engines make no ordering promise unless asked
    with ``ordered=True``, so document order is the only stable
    cross-backend sequence.
    """
    if isinstance(value, list):
        return (
            "node-set",
            tuple(
                sorted(
                    (
                        tuple(node.sort_key),
                        node.kind.value,
                        node.name or "",
                        node.string_value(),
                    )
                    for node in value
                )
            ),
        )
    if isinstance(value, bool):
        return ("boolean", value)
    if isinstance(value, float):
        if value != value:
            return ("number", "NaN")
        return ("number", value)
    return ("string", value)


def outcome_of(run: Callable[[], XPathValue]) -> Outcome:
    """Run one route and fold its result/exception into an Outcome."""
    return _outcome_of_canonical(lambda: canonical_value(run()))


def _outcome_of_canonical(run: Callable[[], object]) -> Outcome:
    """Like :func:`outcome_of` for runs returning pre-canonical values
    (the collection legs canonicalize per shard themselves)."""
    try:
        return Outcome("value", run())
    except ReproError as error:
        return Outcome("error", type(error).__name__, str(error))
    except Exception as error:  # noqa: BLE001 - crashes are findings
        return Outcome("crash", type(error).__name__, str(error))


@dataclass
class Divergence:
    """One route disagreeing with its reference on one query.

    The reference is the naive baseline for every route except
    ``collection``, which is compared against its in-process
    ``collection_ref`` leg (sharding changes the data, so the
    whole-document baseline is not comparable).
    """

    query: str
    route: str
    outcome: Outcome
    baseline: Outcome
    baseline_route: str = BASELINE_ROUTE

    def describe(self) -> str:
        return (
            f"{self.route} disagrees on {self.query!r}:\n"
            f"  {self.baseline_route:>10}: {self.baseline.describe()}\n"
            f"  {self.route:>10}: {self.outcome.describe()}"
        )


class DifferentialRunner:
    """Executes queries on one document across all ten routes.

    The stored and indexed routes share one page file (indexes are
    built at write time), written once in a private temporary directory
    unless ``store_dir`` is given, and kept open for the runner's
    lifetime — use as a context manager or call :meth:`close`.  The
    stored route pins ``index="off"`` and the indexed route pins
    ``index="force"``, so the two legs exercise disjoint physical
    plans over identical pages.

    ``extra_routes`` maps extra route names to callables
    ``run(query, context_node) -> XPathValue`` evaluated against the
    in-memory document; the shrinker tests use this to inject synthetic
    divergences.

    ``governance`` (a mapping with any of ``timeout``, ``max_tuples``,
    ``max_bytes``, or an :class:`~repro.api.EvalOptions` carrying those
    limits) runs every *algebraic* route under a fresh
    :class:`~repro.engine.governor.ResourceGovernor` per query while the
    naive baseline stays ungoverned.  The comparison contract then
    becomes: a governed route must either agree with the baseline
    exactly, or abort with exactly a governance error
    (:data:`GOVERNANCE_ERROR_NAMES`) — any other exception, and any
    wrong *value*, is still a divergence.  This is the fuzzing mode that
    proves the governor never changes answers, only truncates work.
    """

    def __init__(
        self,
        document: Document,
        *,
        variables: Optional[Mapping[str, XPathValue]] = None,
        namespaces: Optional[Mapping[str, str]] = None,
        routes: Sequence[str] = ROUTE_NAMES,
        extra_routes: Optional[
            Mapping[str, Callable[[str, object], XPathValue]]
        ] = None,
        store_dir: Optional[Path] = None,
        buffer_pages: int = 64,
        governance: Optional[object] = None,
    ):
        self.document = document
        self.variables = dict(variables or {})
        self.namespaces = dict(namespaces or {})
        self.routes = tuple(routes)
        self.extra_routes = dict(extra_routes or {})
        if isinstance(governance, EvalOptions):
            if governance.cancel is not None:
                raise ValueError(
                    "cancel tokens are not supported as differential "
                    "governance; use timeout/max_tuples/max_bytes"
                )
            governance = {
                key: value
                for key, value in (
                    ("timeout", governance.timeout),
                    ("max_tuples", governance.max_tuples),
                    ("max_bytes", governance.max_bytes),
                )
                if value is not None
            }
        self.governance = dict(governance) if governance else None
        if self.governance:
            unknown = set(self.governance) - {
                "timeout", "max_tuples", "max_bytes",
            }
            if unknown:
                raise ValueError(
                    f"unknown governance key(s) {sorted(unknown)}"
                )
        self._naive = NaiveInterpreter()
        self._canonical = XPathCompiler(TranslationOptions.canonical())
        self._engine = XPathEngine(TranslationOptions.improved())
        self._stored_engine = XPathEngine(
            TranslationOptions.improved(), index="off"
        )
        self._indexed_engine = XPathEngine(
            TranslationOptions.improved(), index="force"
        )
        self._compiled_engine = XPathEngine(
            TranslationOptions.improved(), codegen="auto"
        )
        self._cost_engine = XPathEngine(
            TranslationOptions.improved(), index="auto", optimizer="cost"
        )
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        self._stored = None
        self._collection: Optional[Collection] = None
        self._shard_stores: List[DocumentStore] = []
        self._server_handle = None
        self._server_client = None
        needs_store = any(route in self.routes for route in _STORE_ROUTES)
        needs_collection = COLLECTION_ROUTE in self.routes
        if (needs_store or needs_collection) and store_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-fuzz-")
            store_dir = Path(self._tmp.name)
        if needs_store:
            store_path = Path(store_dir) / "fuzz.natix"
            DocumentStore.write(document, store_path)
            self._stored = DocumentStore.open(
                store_path, buffer_pages=buffer_pages
            )
        if needs_collection:
            catalog = create_collection_from_document(
                document,
                Path(store_dir) / "collection",
                shards=COLLECTION_SHARDS,
                name="fuzz",
            )
            self._collection = Collection(
                catalog.directory, workers=COLLECTION_WORKERS
            )
            # The reference leg: the *same* shard stores, evaluated
            # in-process through the single-document stored route.
            self._collection_engine = XPathEngine(
                TranslationOptions.improved(), index="off"
            )
            for info in catalog.shards:
                self._shard_stores.append(
                    DocumentStore.open(
                        catalog.shard_path(info.shard),
                        buffer_pages=buffer_pages,
                    )
                )
        if SERVER_ROUTE in self.routes:
            # Imported here so runners without the server route never
            # touch the asyncio serving machinery.
            from repro.server import (
                ServerClient,
                ServerConfig,
                start_in_thread,
            )

            assert self._stored is not None
            self._server_handle = start_in_thread(
                {"fuzz": self._stored},
                engine=XPathEngine(
                    TranslationOptions.improved(), index="off"
                ),
                config=ServerConfig(
                    port=0,
                    page_size=SERVER_PAGE_SIZE,
                    default_timeout=None,
                ),
            )
            self._server_client = ServerClient(
                self._server_handle.host,
                self._server_handle.port,
                client_id="oracle",
            )

    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._server_client is not None:
            self._server_client.close()
            self._server_client = None
        if self._server_handle is not None:
            self._server_handle.stop()
            self._server_handle = None
        if self._collection is not None:
            self._collection.close()
            self._collection = None
        for stored in self._shard_stores:
            stored.close()
        self._shard_stores = []
        if self._stored is not None:
            self._stored.close()
            self._stored = None
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "DifferentialRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Single-route executions
    # ------------------------------------------------------------------

    def _engine_governance(self) -> Dict[str, object]:
        """Governance kwargs for the engine-session routes."""
        return dict(self.governance) if self.governance else {}

    def _eval_options(self) -> EvalOptions:
        """Per-call options for the engine-session routes."""
        return EvalOptions(
            variables=self.variables or None,
            namespaces=self.namespaces or None,
            **self._engine_governance(),
        )

    def _fresh_governor(self) -> Optional[ResourceGovernor]:
        """A per-query governor for the compiled (non-session) route."""
        if not self.governance:
            return None
        return ResourceGovernor(
            timeout=self.governance.get("timeout"),
            max_tuples=self.governance.get("max_tuples"),
            max_bytes=self.governance.get("max_bytes"),
        )

    def _run_naive(self, query: str) -> XPathValue:
        context = make_context(
            self.document.root, self.variables, self.namespaces
        )
        return self._naive.evaluate(query, context)

    def _run_canonical(self, query: str) -> XPathValue:
        compiled = self._canonical.compile(query)
        return compiled.evaluate(
            self.document.root, self.variables, self.namespaces,
            governor=self._fresh_governor(),
        )

    def _run_improved(self, query: str) -> XPathValue:
        return self._engine.evaluate(
            query, self.document.root, self._eval_options()
        )

    def _run_stored(self, query: str) -> XPathValue:
        assert self._stored is not None
        return self._stored_engine.evaluate(
            query, self._stored.root, self._eval_options()
        )

    def _run_indexed(self, query: str) -> XPathValue:
        assert self._stored is not None
        return self._indexed_engine.evaluate(
            query, self._stored.root, self._eval_options()
        )

    def _run_concurrent_single(self, query: str) -> XPathValue:
        return self._engine.evaluate_concurrent(
            [query],
            self.document.root,
            self._eval_options(),
            max_workers=2,
        )[0]

    def _run_compiled(self, query: str) -> XPathValue:
        return self._compiled_engine.evaluate(
            query, self.document.root, self._eval_options()
        )

    def _run_cost(self, query: str) -> XPathValue:
        assert self._stored is not None
        return self._cost_engine.evaluate(
            query, self._stored.root, self._eval_options()
        )

    def _collection_pair(self, query: str) -> Tuple[Outcome, Outcome]:
        """Outcomes of the scatter-gather leg and its reference leg.

        Both legs produce the same canonical shape — one ``(shard id,
        canonical payload)`` pair per shard — so agreement means the
        multi-process pipeline returned exactly what in-process
        evaluation of the identical shard stores returns, shard for
        shard, in global document order.

        When the run is ungoverned, the scatter-gather leg additionally
        *overlaps* a second, pruning-disabled submission of the same
        query from another thread: the two submissions are genuinely
        concurrent in-flight queries on the one pool (qid-multiplexed,
        not serialized), and the leg asserts their canonical results —
        or their typed errors — agree, so synopsis pruning and query
        multiplexing can never change an answer without the oracle
        noticing.  Governed runs skip the overlap: a tripped limit may
        legally surface on either submission, which would make their
        comparison meaningless.
        """
        assert self._collection is not None

        def run_unpruned_leg() -> tuple:
            result = self._collection.evaluate(
                query,
                variables=self.variables or None,
                namespaces=self.namespaces or None,
                pruning=False,
            )
            return result.canonical()

        def run_collection() -> tuple:
            if self.governance:
                result = self._collection_engine.evaluate_collection(
                    query, self._collection, self._eval_options()
                )
                return result.canonical()
            sibling: List[Tuple[str, object]] = []

            def run_sibling() -> None:
                try:
                    sibling.append(("value", run_unpruned_leg()))
                except Exception as error:  # noqa: BLE001 - compared
                    sibling.append(("error", error))

            thread = threading.Thread(
                target=run_sibling, name="oracle-unpruned-leg"
            )
            thread.start()
            try:
                result = self._collection_engine.evaluate_collection(
                    query, self._collection, self._eval_options()
                )
            except Exception as error:
                thread.join()
                kind, payload = sibling[0]
                if (kind != "error"
                        or type(payload) is not type(error)):
                    raise AssertionError(
                        "pruned and unpruned collection legs disagree: "
                        f"pruned raised {type(error).__name__}, "
                        f"unpruned returned {kind}"
                    ) from error
                raise
            thread.join()
            kind, payload = sibling[0]
            canonical = result.canonical()
            if kind != "value" or payload != canonical:
                raise AssertionError(
                    "pruned and unpruned collection legs disagree: "
                    f"unpruned leg {kind} does not match the pruned "
                    "scatter"
                )
            return canonical

        def run_reference() -> tuple:
            return tuple(
                (
                    shard,
                    canonical_value(
                        self._collection_engine.evaluate(
                            query, stored.root, self._eval_options()
                        )
                    ),
                )
                for shard, stored in enumerate(self._shard_stores)
            )

        return (
            _outcome_of_canonical(run_collection),
            _outcome_of_canonical(run_reference),
        )

    def _run_server_canonical(self, query: str) -> object:
        """One loopback HTTP round trip, reassembled and canonical.

        Streams with a deliberately tiny page size so node-sets cross
        the wire as several chunked page frames; the client's
        ``canonical()`` mirrors :func:`canonical_value`, so the result
        compares directly against the naive baseline.  Error frames
        re-raise the typed engine exception by its wire-carried name —
        error-outcome agreement (including governance aborts) needs no
        special handling.
        """
        assert self._server_client is not None
        request: Dict[str, object] = {
            "page_size": SERVER_PAGE_SIZE,
        }
        if self.variables:
            request["variables"] = self.variables
        if self.namespaces:
            request["namespaces"] = self.namespaces
        if self.governance:
            request.update(self.governance)
        result = self._server_client.query(query, **request)
        result.raise_for_error()
        return result.canonical()

    def _route_runner(self, route: str) -> Callable[[str], XPathValue]:
        if route in self.extra_routes:
            run = self.extra_routes[route]
            return lambda query: run(query, self.document.root)
        return {
            "naive": self._run_naive,
            "canonical": self._run_canonical,
            "improved": self._run_improved,
            "stored": self._run_stored,
            "indexed": self._run_indexed,
            "concurrent": self._run_concurrent_single,
            "compiled": self._run_compiled,
            "cost": self._run_cost,
        }[route]

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------

    def outcomes(self, query: str) -> Dict[str, Outcome]:
        """Outcome of every configured route for one query."""
        results: Dict[str, Outcome] = {}
        for route in self.routes:
            if route == COLLECTION_ROUTE:
                (
                    results[COLLECTION_ROUTE],
                    results[COLLECTION_REF_ROUTE],
                ) = self._collection_pair(query)
                continue
            if route == SERVER_ROUTE:
                results[route] = _outcome_of_canonical(
                    lambda: self._run_server_canonical(query)
                )
                continue
            runner = self._route_runner(route)
            results[route] = outcome_of(lambda: runner(query))
        for route in self.extra_routes:
            if route not in results:
                runner = self._route_runner(route)
                results[route] = outcome_of(lambda: runner(query))
        return results

    def check(self, query: str) -> List[Divergence]:
        """Divergences (vs the baseline route) for one query."""
        return self._compare(query, self.outcomes(query))

    def check_batch(
        self, queries: Sequence[str]
    ) -> List[Divergence]:
        """Check a batch; the concurrent route runs as one real batch.

        Queries whose baseline outcome is an error are checked
        one-by-one on the concurrent route (a thread-pool batch
        propagates the first exception, losing per-query attribution).
        """
        divergences: List[Divergence] = []
        per_query: List[Dict[str, Outcome]] = []
        for query in queries:
            outcomes = {}
            for route in self.routes:
                if route == "concurrent":
                    continue
                if route == COLLECTION_ROUTE:
                    (
                        outcomes[COLLECTION_ROUTE],
                        outcomes[COLLECTION_REF_ROUTE],
                    ) = self._collection_pair(query)
                    continue
                if route == SERVER_ROUTE:
                    outcomes[route] = _outcome_of_canonical(
                        lambda: self._run_server_canonical(query)
                    )
                    continue
                runner = self._route_runner(route)
                outcomes[route] = outcome_of(lambda: runner(query))
            for route in self.extra_routes:
                runner = self._route_runner(route)
                outcomes[route] = outcome_of(lambda: runner(query))
            per_query.append(outcomes)

        if "concurrent" in self.routes:
            clean = [
                (slot, query)
                for slot, query in enumerate(queries)
                if per_query[slot]
                .get(BASELINE_ROUTE, Outcome("value", None))
                .kind
                == "value"
            ]
            batch_results: Dict[int, Outcome] = {}
            if clean:
                try:
                    values = self._engine.evaluate_concurrent(
                        [query for _, query in clean],
                        self.document.root,
                        self._eval_options(),
                        max_workers=4,
                    )
                except Exception:  # noqa: BLE001 - fall back per query
                    values = None
                if values is not None:
                    for (slot, _), value in zip(clean, values):
                        batch_results[slot] = Outcome(
                            "value", canonical_value(value)
                        )
            for slot, query in enumerate(queries):
                if slot in batch_results:
                    per_query[slot]["concurrent"] = batch_results[slot]
                else:
                    per_query[slot]["concurrent"] = outcome_of(
                        lambda: self._run_concurrent_single(query)
                    )

        for query, outcomes in zip(queries, per_query):
            divergences.extend(self._compare(query, outcomes))
        return divergences

    def _compare(
        self, query: str, outcomes: Mapping[str, Outcome]
    ) -> List[Divergence]:
        baseline = outcomes[BASELINE_ROUTE]
        divergences = []
        for route, outcome in outcomes.items():
            if route == BASELINE_ROUTE:
                if outcome.kind == "crash":
                    divergences.append(
                        Divergence(query, route, outcome, outcome)
                    )
                continue
            if route == COLLECTION_REF_ROUTE:
                # The reference leg exists only as the collection
                # route's comparison target — sharding changes the
                # data, so it is never compared to the whole-document
                # baseline.  A crash there is still a finding.
                if outcome.kind == "crash":
                    divergences.append(
                        Divergence(query, route, outcome, outcome, route)
                    )
                continue
            reference = baseline
            reference_route = BASELINE_ROUTE
            if route == COLLECTION_ROUTE:
                reference = outcomes[COLLECTION_REF_ROUTE]
                reference_route = COLLECTION_REF_ROUTE
            if outcome.kind == "crash":
                divergences.append(
                    Divergence(
                        query, route, outcome, reference, reference_route
                    )
                )
                continue
            if self.governance and (
                (
                    outcome.kind == "error"
                    and outcome.payload in GOVERNANCE_ERROR_NAMES
                )
                or (
                    route == COLLECTION_ROUTE
                    and reference.kind == "error"
                    and reference.payload in GOVERNANCE_ERROR_NAMES
                )
            ):
                # Under governance a limit abort is a legal outcome on
                # any governed route; the baseline is never governed.
                # The collection reference leg *is* governed, so a trip
                # on either collection leg voids the comparison.
                continue
            if outcome != reference:
                divergences.append(
                    Divergence(
                        query, route, outcome, reference, reference_route
                    )
                )
        return divergences
