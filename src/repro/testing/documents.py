"""Random XML document generation for fuzzing.

Documents are generated as lightweight *specs* — nested
:class:`ElementSpec` / :class:`TextSpec` / :class:`CommentSpec` /
:class:`PISpec` records — and materialized into real
:class:`~repro.dom.document.Document` trees through the
:class:`~repro.dom.builder.DocumentBuilder`.  Keeping the spec around
(instead of only the built tree) is what makes the delta-debugging
document shrinker cheap: every reduction edits the spec and rebuilds.

Generated documents exercise the whole data model: nested elements with
configurable depth and fanout, mixed content, comments, processing
instructions, consecutively numbered ``id`` attributes (so ``id()``
lookups resolve), ``xml:lang`` attributes (so ``lang()`` matches), and
namespace declarations with prefixed element names.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.dom.builder import DocumentBuilder
from repro.dom.document import Document
from repro.dom.node import Node, NodeKind
from repro.dom.serializer import serialize


@dataclass
class TextSpec:
    data: str


@dataclass
class CommentSpec:
    data: str


@dataclass
class PISpec:
    target: str
    data: str = ""


@dataclass
class ElementSpec:
    name: str
    attributes: List[Tuple[str, str]] = field(default_factory=list)
    children: List["ChildSpec"] = field(default_factory=list)

    def copy(self) -> "ElementSpec":
        return copy_spec(self)


ChildSpec = Union[ElementSpec, TextSpec, CommentSpec, PISpec]


def copy_spec(spec: ChildSpec) -> ChildSpec:
    """Deep copy of a spec subtree (cheaper than ``copy.deepcopy``)."""
    if isinstance(spec, ElementSpec):
        return ElementSpec(
            spec.name,
            list(spec.attributes),
            [copy_spec(child) for child in spec.children],
        )
    if isinstance(spec, TextSpec):
        return TextSpec(spec.data)
    if isinstance(spec, CommentSpec):
        return CommentSpec(spec.data)
    return PISpec(spec.target, spec.data)


def build_document(root: ElementSpec) -> Document:
    """Materialize a spec into a :class:`Document`."""
    builder = DocumentBuilder()
    _emit(builder, root)
    return builder.finish()


def _emit(builder: DocumentBuilder, spec: ChildSpec) -> None:
    if isinstance(spec, ElementSpec):
        builder.start_element(spec.name, list(spec.attributes))
        for child in spec.children:
            _emit(builder, child)
        builder.end_element(spec.name)
    elif isinstance(spec, TextSpec):
        builder.text(spec.data)
    elif isinstance(spec, CommentSpec):
        builder.comment(spec.data)
    else:
        builder.processing_instruction(spec.target, spec.data)


def spec_to_xml(root: ElementSpec) -> str:
    """Serialize a spec to XML text (via the real serializer)."""
    return serialize(build_document(root))


def spec_from_document(document: Document) -> ElementSpec:
    """Recover a spec from a document tree (for shrinking corpus XML)."""
    element = next(
        child
        for child in document.root.children
        if child.kind == NodeKind.ELEMENT
    )
    return _spec_from_node(element)


def _spec_from_node(node: Node) -> ElementSpec:
    attributes: List[Tuple[str, str]] = []
    for prefix, uri in node.namespace_declarations.items():
        attributes.append(
            ("xmlns" if not prefix else f"xmlns:{prefix}", uri)
        )
    for attr in node.attributes:
        attributes.append((attr.name, attr.value or ""))
    children: List[ChildSpec] = []
    for child in node.children:
        if child.kind == NodeKind.ELEMENT:
            children.append(_spec_from_node(child))
        elif child.kind == NodeKind.TEXT:
            children.append(TextSpec(child.value or ""))
        elif child.kind == NodeKind.COMMENT:
            children.append(CommentSpec(child.value or ""))
        elif child.kind == NodeKind.PROCESSING_INSTRUCTION:
            children.append(PISpec(child.name or "pi", child.value or ""))
    return ElementSpec(node.name or "xdoc", attributes, children)


@dataclass
class DocumentConfig:
    """Shape knobs for the random document generator."""

    max_depth: int = 4
    max_children: int = 4
    max_elements: int = 60
    #: Element name pool (matches the grammar generator's name tests).
    element_names: Sequence[str] = ("a", "b", "c", "item", "sub", "leaf")
    #: Extra attribute names (``id`` is always added, numbered).
    attribute_names: Sequence[str] = ("x", "ref")
    #: Attribute/text value pool (overlaps the query string pool).
    value_pool: Sequence[str] = ("x", "y", "z", "1", "7", "10", "a b")
    pi_targets: Sequence[str] = ("target", "other")
    text_probability: float = 0.45
    comment_probability: float = 0.08
    pi_probability: float = 0.06
    attribute_probability: float = 0.4
    #: Probability the document declares a namespace and uses prefixed
    #: element names (prefix ``p``, URI ``urn:repro:fuzz``).
    namespace_probability: float = 0.25
    prefixed_element_probability: float = 0.15
    #: Probability that some element carries ``xml:lang="en"``.
    lang_probability: float = 0.2
    namespace_prefix: str = "p"
    namespace_uri: str = "urn:repro:fuzz"


class DocumentGenerator:
    """Seeded random document source (spec + built document)."""

    def __init__(
        self,
        rng: random.Random,
        config: Optional[DocumentConfig] = None,
    ):
        self.rng = rng
        self.config = config or DocumentConfig()

    def generate_spec(self) -> ElementSpec:
        cfg = self.config
        self._next_id = 0
        self._remaining = max(1, cfg.max_elements)
        self._namespaced = self.rng.random() < cfg.namespace_probability
        root = self._element("xdoc", depth=0)
        if self._namespaced:
            root.attributes.insert(
                0,
                (f"xmlns:{cfg.namespace_prefix}", cfg.namespace_uri),
            )
        return root

    def generate(self) -> Document:
        return build_document(self.generate_spec())

    # ------------------------------------------------------------------

    def _element(self, name: str, depth: int) -> ElementSpec:
        cfg = self.config
        self._remaining -= 1
        attributes: List[Tuple[str, str]] = [
            ("id", str(self._next_id))
        ]
        self._next_id += 1
        if self.rng.random() < cfg.attribute_probability:
            attributes.append(
                (
                    self.rng.choice(tuple(cfg.attribute_names)),
                    self.rng.choice(tuple(cfg.value_pool)),
                )
            )
        if self.rng.random() < cfg.lang_probability * (0.3 if depth else 1):
            attributes.append(("xml:lang", "en"))
        element = ElementSpec(name, attributes)
        if depth >= cfg.max_depth:
            if self.rng.random() < cfg.text_probability:
                element.children.append(self._text())
            return element
        n_children = self.rng.randint(0, cfg.max_children)
        for _ in range(n_children):
            roll = self.rng.random()
            if roll < cfg.comment_probability:
                element.children.append(CommentSpec("note"))
            elif roll < cfg.comment_probability + cfg.pi_probability:
                element.children.append(
                    PISpec(self.rng.choice(tuple(cfg.pi_targets)), "data")
                )
            elif roll < 0.55 and self._remaining > 0:
                element.children.append(
                    self._element(self._element_name(), depth + 1)
                )
            elif self.rng.random() < cfg.text_probability:
                element.children.append(self._text())
        return element

    def _element_name(self) -> str:
        cfg = self.config
        name = self.rng.choice(tuple(cfg.element_names))
        if self._namespaced and (
            self.rng.random() < cfg.prefixed_element_probability
        ):
            return f"{cfg.namespace_prefix}:{name}"
        return name

    def _text(self) -> TextSpec:
        return TextSpec(self.rng.choice(tuple(self.config.value_pool)))
