"""Production coverage of a fuzz run.

A fuzz campaign is only as good as the grammar it actually exercised.
:class:`CoverageTracker` records, per run:

* which of the 13 axes and 6 node-test productions appeared,
* which of the 27 core library functions were called,
* which operators (including ``|``, unary minus, filter/path/union
  expression forms) were used,
* how deep predicates nested,
* which *algebra* operators the improved translation emitted for the
  generated queries (via :func:`repro.algebra.visitor.walk_plan`).

The rendered report lists what was covered and — more importantly —
what was **not**, so a weak seed or a bad weight table is visible
instead of silently shipping an easy campaign.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Set

from repro.algebra import operators as algebra_ops
from repro.algebra.visitor import walk_plan
from repro.xpath.axes import Axis, NodeTestKind
from repro.xpath.functions import all_function_names
from repro.xpath.xast import (
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    LocationPath,
    PathExpr,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)

#: Every binary operator of the grammar.
ALL_OPERATORS = (
    "or", "and", "=", "!=", "<", "<=", ">", ">=",
    "+", "-", "*", "div", "mod", "|", "unary-minus",
)

#: Logical algebra operator class names we expect translations to use.
ALL_ALGEBRA_OPERATORS = tuple(
    sorted(
        cls.__name__
        for cls in vars(algebra_ops).values()
        if isinstance(cls, type)
        and issubclass(cls, algebra_ops.Operator)
        and cls not in (
            algebra_ops.Operator,
            algebra_ops.UnaryOperator,
            algebra_ops.BinaryOperator,
        )
    )
)


class CoverageTracker:
    """Accumulates grammar and algebra coverage across a campaign."""

    def __init__(self):
        self.axes: Counter = Counter()
        self.node_tests: Counter = Counter()
        self.functions: Counter = Counter()
        self.operators: Counter = Counter()
        self.expr_forms: Counter = Counter()
        self.algebra_operators: Counter = Counter()
        self.max_predicate_depth = 0
        self.queries = 0
        self.variables_used = 0

    # ------------------------------------------------------------------

    def record_query(self, expr: Expr) -> None:
        self.queries += 1
        self._walk(expr, predicate_depth=0)

    def record_plan(self, plan) -> None:
        for operator in walk_plan(plan):
            self.algebra_operators[type(operator).__name__] += 1

    def _walk(self, expr: Expr, predicate_depth: int) -> None:
        self.expr_forms[type(expr).__name__] += 1
        if isinstance(expr, LocationPath):
            for step in expr.steps:
                self.axes[step.axis.value] += 1
                self.node_tests[step.test_kind.value] += 1
                for predicate in step.predicates:
                    depth = predicate_depth + 1
                    self.max_predicate_depth = max(
                        self.max_predicate_depth, depth
                    )
                    self._walk(predicate.expr, depth)
        elif isinstance(expr, FilterExpr):
            self._walk(expr.primary, predicate_depth)
            for predicate in expr.predicates:
                depth = predicate_depth + 1
                self.max_predicate_depth = max(
                    self.max_predicate_depth, depth
                )
                self._walk(predicate.expr, depth)
        elif isinstance(expr, PathExpr):
            self._walk(expr.source, predicate_depth)
            self._walk(expr.path, predicate_depth)
        elif isinstance(expr, UnionExpr):
            self.operators["|"] += 1
            for operand in expr.operands:
                self._walk(operand, predicate_depth)
        elif isinstance(expr, FunctionCall):
            self.functions[expr.name] += 1
            for arg in expr.args:
                self._walk(arg, predicate_depth)
        elif isinstance(expr, BinaryOp):
            self.operators[expr.op] += 1
            self._walk(expr.left, predicate_depth)
            self._walk(expr.right, predicate_depth)
        elif isinstance(expr, UnaryMinus):
            self.operators["unary-minus"] += 1
            self._walk(expr.operand, predicate_depth)
        elif isinstance(expr, VariableRef):
            self.variables_used += 1

    # ------------------------------------------------------------------

    def missing(self) -> Dict[str, List[str]]:
        """Grammar productions the campaign never exercised."""
        return {
            "axes": sorted(
                axis.value for axis in Axis
                if axis.value not in self.axes
            ),
            "node_tests": sorted(
                kind.value for kind in NodeTestKind
                if kind.value not in self.node_tests
            ),
            "functions": sorted(
                name for name in all_function_names()
                if name not in self.functions
            ),
            "operators": sorted(
                op for op in ALL_OPERATORS if op not in self.operators
            ),
            "algebra_operators": sorted(
                name for name in ALL_ALGEBRA_OPERATORS
                if name not in self.algebra_operators
            ),
        }

    def report(self) -> Dict[str, object]:
        missing = self.missing()
        return {
            "queries": self.queries,
            "axes": dict(sorted(self.axes.items())),
            "node_tests": dict(sorted(self.node_tests.items())),
            "functions": dict(sorted(self.functions.items())),
            "operators": dict(sorted(self.operators.items())),
            "expr_forms": dict(sorted(self.expr_forms.items())),
            "algebra_operators": dict(
                sorted(self.algebra_operators.items())
            ),
            "max_predicate_depth": self.max_predicate_depth,
            "variables_used": self.variables_used,
            "missing": missing,
        }

    def render(self) -> str:
        """Human-readable coverage summary."""
        missing = self.missing()
        lines = [
            f"coverage over {self.queries} generated queries:",
            f"  axes             {len(self.axes)}/{len(Axis)}",
            f"  node tests       {len(self.node_tests)}/"
            f"{len(NodeTestKind)}",
            f"  core functions   {len(self.functions)}/"
            f"{len(all_function_names())}",
            f"  operators        {len(self.operators)}/"
            f"{len(ALL_OPERATORS)}",
            f"  algebra ops      {len(self.algebra_operators)}/"
            f"{len(ALL_ALGEBRA_OPERATORS)}",
            f"  max predicate nesting depth: "
            f"{self.max_predicate_depth}",
            f"  variable references: {self.variables_used}",
        ]
        for category, names in missing.items():
            if names:
                lines.append(f"  NOT exercised ({category}): "
                             + ", ".join(names))
        return "\n".join(lines)
