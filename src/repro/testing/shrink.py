"""Delta-debugging shrinker for fuzz findings.

Given a diverging ``(query AST, document spec)`` pair and a predicate
"does this still diverge?", the shrinker greedily applies local
reductions until no smaller reproducer survives:

* **query reductions** — hoist a subexpression over its parent, drop a
  location step, drop a predicate, drop a union operand, replace a
  function call by one of its arguments, simplify literals;
* **document reductions** — delete a subtree, hoist an element's
  children over it, drop attributes, drop comments/PIs, blank text.

Both loops are first-improvement hill climbing: try candidates in
shrinking-size order, restart on the first one that still diverges.
That is the classic ddmin shape specialized to trees, and in practice
collapses fuzz-sized reproducers to a handful of nodes.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from repro.xpath.xast import (
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    Number,
    PathExpr,
    Predicate,
    Step,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)

from repro.testing.documents import (
    ChildSpec,
    CommentSpec,
    ElementSpec,
    PISpec,
    TextSpec,
    copy_spec,
)

# ----------------------------------------------------------------------
# AST size and copying
# ----------------------------------------------------------------------


def ast_size(expr: Expr) -> int:
    """Number of AST nodes: expressions, steps and predicates."""
    if isinstance(expr, LocationPath):
        total = 1
        for step in expr.steps:
            total += 1
            for predicate in step.predicates:
                total += 1 + ast_size(predicate.expr)
        return total
    if isinstance(expr, FilterExpr):
        total = 1 + ast_size(expr.primary)
        for predicate in expr.predicates:
            total += 1 + ast_size(predicate.expr)
        return total
    if isinstance(expr, PathExpr):
        return 1 + ast_size(expr.source) + ast_size(expr.path)
    if isinstance(expr, UnionExpr):
        return 1 + sum(ast_size(op) for op in expr.operands)
    if isinstance(expr, FunctionCall):
        return 1 + sum(ast_size(arg) for arg in expr.args)
    if isinstance(expr, BinaryOp):
        return 1 + ast_size(expr.left) + ast_size(expr.right)
    if isinstance(expr, UnaryMinus):
        return 1 + ast_size(expr.operand)
    return 1


def copy_ast(expr: Expr) -> Expr:
    """Structural copy (annotations from semantic analysis dropped)."""
    if isinstance(expr, Number):
        return Number(expr.value)
    if isinstance(expr, Literal):
        return Literal(expr.value)
    if isinstance(expr, VariableRef):
        return VariableRef(expr.name)
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name, [copy_ast(a) for a in expr.args])
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, copy_ast(expr.left), copy_ast(expr.right))
    if isinstance(expr, UnaryMinus):
        return UnaryMinus(copy_ast(expr.operand))
    if isinstance(expr, LocationPath):
        return LocationPath(
            expr.absolute, [_copy_step(s) for s in expr.steps]
        )
    if isinstance(expr, FilterExpr):
        return FilterExpr(
            copy_ast(expr.primary),
            [Predicate(copy_ast(p.expr)) for p in expr.predicates],
        )
    if isinstance(expr, PathExpr):
        path = copy_ast(expr.path)
        assert isinstance(path, LocationPath)
        return PathExpr(copy_ast(expr.source), path)
    if isinstance(expr, UnionExpr):
        return UnionExpr([copy_ast(op) for op in expr.operands])
    raise TypeError(f"unknown AST node {type(expr).__name__}")


def _copy_step(step: Step) -> Step:
    return Step(
        step.axis,
        step.test_kind,
        step.test_name,
        [Predicate(copy_ast(p.expr)) for p in step.predicates],
    )


# ----------------------------------------------------------------------
# Query reductions
# ----------------------------------------------------------------------


def query_reductions(expr: Expr) -> Iterator[Expr]:
    """Candidate replacements for ``expr`` itself (strictly smaller)."""
    if isinstance(expr, LocationPath):
        for index in range(len(expr.steps)):
            if len(expr.steps) > 1:
                steps = [
                    _copy_step(s)
                    for j, s in enumerate(expr.steps)
                    if j != index
                ]
                yield LocationPath(expr.absolute, steps)
            step = expr.steps[index]
            for p_index in range(len(step.predicates)):
                steps = [_copy_step(s) for s in expr.steps]
                del steps[index].predicates[p_index]
                yield LocationPath(expr.absolute, steps)
    elif isinstance(expr, FilterExpr):
        yield copy_ast(expr.primary)
        for index in range(len(expr.predicates)):
            predicates = [
                Predicate(copy_ast(p.expr))
                for j, p in enumerate(expr.predicates)
                if j != index
            ]
            if predicates:
                yield FilterExpr(copy_ast(expr.primary), predicates)
    elif isinstance(expr, PathExpr):
        yield copy_ast(expr.source)
        yield LocationPath(True, [_copy_step(s) for s in expr.path.steps])
    elif isinstance(expr, UnionExpr):
        for operand in expr.operands:
            yield copy_ast(operand)
        if len(expr.operands) > 2:
            for index in range(len(expr.operands)):
                yield UnionExpr(
                    [
                        copy_ast(op)
                        for j, op in enumerate(expr.operands)
                        if j != index
                    ]
                )
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield copy_ast(arg)
        if expr.args:
            # Try dropping trailing (often optional) arguments.
            yield FunctionCall(
                expr.name, [copy_ast(a) for a in expr.args[:-1]]
            )
    elif isinstance(expr, BinaryOp):
        yield copy_ast(expr.left)
        yield copy_ast(expr.right)
    elif isinstance(expr, UnaryMinus):
        yield copy_ast(expr.operand)
    elif isinstance(expr, Number):
        if expr.value not in (0.0, 1.0):
            yield Number(1.0)
            yield Number(0.0)
    elif isinstance(expr, Literal):
        if expr.value:
            yield Literal("")


def query_candidates(expr: Expr) -> Iterator[Expr]:
    """All one-reduction variants of ``expr`` (at any position)."""
    yield from query_reductions(expr)
    yield from _rebuilt_with_child_variants(expr)


def _rebuilt_with_child_variants(expr: Expr) -> Iterator[Expr]:
    """Variants where exactly one sub-position was reduced in place."""
    if isinstance(expr, FunctionCall):
        for index, arg in enumerate(expr.args):
            for variant in query_candidates(arg):
                args = [copy_ast(a) for a in expr.args]
                args[index] = variant
                yield FunctionCall(expr.name, args)
    elif isinstance(expr, BinaryOp):
        for variant in query_candidates(expr.left):
            yield BinaryOp(expr.op, variant, copy_ast(expr.right))
        for variant in query_candidates(expr.right):
            yield BinaryOp(expr.op, copy_ast(expr.left), variant)
    elif isinstance(expr, UnaryMinus):
        for variant in query_candidates(expr.operand):
            yield UnaryMinus(variant)
    elif isinstance(expr, LocationPath):
        for s_index, step in enumerate(expr.steps):
            for p_index, predicate in enumerate(step.predicates):
                for variant in query_candidates(predicate.expr):
                    steps = [_copy_step(s) for s in expr.steps]
                    steps[s_index].predicates[p_index] = Predicate(variant)
                    yield LocationPath(expr.absolute, steps)
    elif isinstance(expr, FilterExpr):
        for variant in query_candidates(expr.primary):
            yield FilterExpr(
                variant,
                [Predicate(copy_ast(p.expr)) for p in expr.predicates],
            )
        for index, predicate in enumerate(expr.predicates):
            for variant in query_candidates(predicate.expr):
                predicates = [
                    Predicate(copy_ast(p.expr)) for p in expr.predicates
                ]
                predicates[index] = Predicate(variant)
                yield FilterExpr(copy_ast(expr.primary), predicates)
    elif isinstance(expr, PathExpr):
        for variant in query_candidates(expr.source):
            yield PathExpr(variant, copy_ast(expr.path))  # type: ignore[arg-type]
        for variant in query_candidates(expr.path):
            if isinstance(variant, LocationPath):
                yield PathExpr(copy_ast(expr.source), variant)
    elif isinstance(expr, UnionExpr):
        for index, operand in enumerate(expr.operands):
            for variant in query_candidates(operand):
                operands = [copy_ast(op) for op in expr.operands]
                operands[index] = variant
                yield UnionExpr(operands)


def shrink_query(
    expr: Expr,
    still_diverges: Callable[[Expr], bool],
    max_rounds: int = 200,
) -> Expr:
    """Greedy first-improvement minimization of a diverging query AST."""
    current = copy_ast(expr)
    for _ in range(max_rounds):
        current_size = ast_size(current)
        improved = False
        for candidate in query_candidates(current):
            if ast_size(candidate) >= current_size:
                continue
            try:
                if still_diverges(candidate):
                    current = candidate
                    improved = True
                    break
            except Exception:  # noqa: BLE001 - invalid candidate
                continue
        if not improved:
            return current
    return current


# ----------------------------------------------------------------------
# Document reductions
# ----------------------------------------------------------------------


def spec_size(spec: ChildSpec) -> int:
    """Nodes in a document spec (elements, attrs, text, comments, PIs)."""
    if isinstance(spec, ElementSpec):
        return (
            1
            + len(spec.attributes)
            + sum(spec_size(child) for child in spec.children)
        )
    return 1


def document_candidates(root: ElementSpec) -> Iterator[ElementSpec]:
    """One-reduction variants of a document spec.

    The document element itself is never deleted (a document must keep
    one), but its content, attributes and every subtree are fair game.
    """
    # Drop one attribute anywhere.
    for path, element in _elements(root):
        for index in range(len(element.attributes)):
            variant = copy_spec(root)
            target = _at(variant, path)
            del target.attributes[index]
            yield variant
    # Drop one child anywhere.
    for path, element in _elements(root):
        for index in range(len(element.children)):
            variant = copy_spec(root)
            target = _at(variant, path)
            del target.children[index]
            yield variant
    # Hoist an element's children over it.
    for path, element in _elements(root):
        for index, child in enumerate(element.children):
            if isinstance(child, ElementSpec) and child.children:
                variant = copy_spec(root)
                target = _at(variant, path)
                hoisted = target.children[index]
                assert isinstance(hoisted, ElementSpec)
                target.children[index : index + 1] = hoisted.children
                yield variant
    # Blank one text node.
    for path, element in _elements(root):
        for index, child in enumerate(element.children):
            if isinstance(child, TextSpec) and len(child.data) > 1:
                variant = copy_spec(root)
                target = _at(variant, path)
                text = target.children[index]
                assert isinstance(text, TextSpec)
                text.data = text.data[0]
                yield variant


def _elements(
    root: ElementSpec, path: Tuple[int, ...] = ()
) -> Iterator[Tuple[Tuple[int, ...], ElementSpec]]:
    yield path, root
    for index, child in enumerate(root.children):
        if isinstance(child, ElementSpec):
            yield from _elements(child, path + (index,))


def _at(root: ElementSpec, path: Tuple[int, ...]) -> ElementSpec:
    element = root
    for index in path:
        child = element.children[index]
        assert isinstance(child, ElementSpec)
        element = child
    return element


def shrink_document(
    root: ElementSpec,
    still_diverges: Callable[[ElementSpec], bool],
    max_rounds: int = 200,
) -> ElementSpec:
    """Greedy first-improvement minimization of a diverging document."""
    current = copy_spec(root)
    assert isinstance(current, ElementSpec)
    for _ in range(max_rounds):
        current_size = spec_size(current)
        improved = False
        for candidate in document_candidates(current):
            if spec_size(candidate) >= current_size:
                continue
            try:
                if still_diverges(candidate):
                    current = candidate
                    improved = True
                    break
            except Exception:  # noqa: BLE001 - invalid candidate
                continue
        if not improved:
            return current
    return current


def shrink_repro(
    expr: Expr,
    root: ElementSpec,
    still_diverges: Callable[[Expr, ElementSpec], bool],
    max_passes: int = 8,
) -> Tuple[Expr, ElementSpec]:
    """Alternate query and document shrinking until a joint fixpoint."""
    query = copy_ast(expr)
    document = copy_spec(root)
    assert isinstance(document, ElementSpec)
    for _ in range(max_passes):
        before = (ast_size(query), spec_size(document))
        query = shrink_query(
            query, lambda candidate: still_diverges(candidate, document)
        )
        document = shrink_document(
            document, lambda candidate: still_diverges(query, candidate)
        )
        if (ast_size(query), spec_size(document)) == before:
            break
    return query, document
