"""Campaign orchestration: generate, execute, compare, shrink, record.

One :func:`run_campaign` call is fully determined by ``(seed, n)`` plus
the configuration objects: documents and queries are derived from a
single :class:`random.Random` stream, so any finding is reproducible
from the campaign banner alone.

The campaign loop works document-by-document: generate a random
document, stand up a :class:`~repro.testing.oracle.DifferentialRunner`
(which writes the page file for the stored/indexed routes once),
generate a batch of queries, run the batch through all ten routes
(``routes`` narrows the set), and compare.  On a
divergence the delta-debugging shrinker minimizes the ``(query,
document)`` pair, and the minimized reproducer can be appended to the
regression corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable, Dict, List, Mapping, Optional, Sequence, Tuple,
)

from repro.dom.serializer import serialize
from repro.errors import ReproError
from repro.xpath.parser import parse_xpath

from repro.testing.corpus import CorpusEntry, append_entry
from repro.testing.coverage import CoverageTracker
from repro.testing.documents import (
    DocumentConfig,
    DocumentGenerator,
    ElementSpec,
    build_document,
)
from repro.testing.grammar import GrammarConfig, QueryGenerator
from repro.testing.oracle import (
    BASELINE_ROUTE,
    DifferentialRunner,
    Divergence,
    ROUTE_NAMES,
)
from repro.testing.shrink import ast_size, shrink_repro, spec_size


@dataclass
class Finding:
    """One divergence, with enough context to reproduce and to shrink."""

    divergence: Divergence
    document_xml: str
    shrunk_query: Optional[str] = None
    shrunk_document_xml: Optional[str] = None

    def corpus_entry(self, seed: int, n: int, index: int) -> CorpusEntry:
        from repro.testing.grammar import (
            DEFAULT_NAMESPACES,
            DEFAULT_VARIABLES,
        )

        return CorpusEntry(
            name=f"fuzz-seed{seed}-{index}",
            query=self.shrunk_query or self.divergence.query,
            document={
                "kind": "xml",
                "xml": self.shrunk_document_xml or self.document_xml,
            },
            variables=dict(DEFAULT_VARIABLES),
            namespaces=dict(DEFAULT_NAMESPACES),
            source=f"fuzz --seed {seed} --n {n}",
            notes=(
                f"route {self.divergence.route}: "
                f"{self.divergence.outcome.describe()} vs "
                f"{BASELINE_ROUTE} "
                f"{self.divergence.baseline.describe()}"
            ),
        )


@dataclass
class CampaignReport:
    """Everything a fuzz run learned."""

    seed: int
    n: int
    routes: Tuple[str, ...] = ROUTE_NAMES
    queries_run: int = 0
    documents: int = 0
    generation_rejects: int = 0
    value_outcomes: int = 0
    error_outcomes: int = 0
    governance: Optional[Dict[str, object]] = None
    findings: List[Finding] = field(default_factory=list)
    coverage: CoverageTracker = field(default_factory=CoverageTracker)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        governed = ""
        if self.governance:
            knobs = ", ".join(
                f"{key}={value}"
                for key, value in sorted(self.governance.items())
            )
            governed = f" [governed: {knobs}]"
        lines = [
            f"fuzz campaign seed={self.seed} n={self.n}: "
            f"{self.queries_run} queries over {self.documents} documents "
            f"across {len(self.routes)} routes "
            f"({', '.join(self.routes)}){governed}",
            f"  value outcomes: {self.value_outcomes}, "
            f"error outcomes: {self.error_outcomes}, "
            f"generator rejects: {self.generation_rejects}",
            f"  divergences: {len(self.findings)}",
        ]
        return "\n".join(lines)


def run_campaign(
    seed: int = 0,
    n: int = 500,
    *,
    shrink: bool = False,
    queries_per_doc: int = 25,
    grammar_config: Optional[GrammarConfig] = None,
    document_config: Optional[DocumentConfig] = None,
    corpus_path: Optional[Path] = None,
    progress: Optional[Callable[[str], None]] = None,
    max_findings: int = 25,
    routes: Optional[Sequence[str]] = None,
    governance: Optional[Mapping[str, object]] = None,
) -> CampaignReport:
    """Run one deterministic differential fuzz campaign.

    ``n`` queries are spread over ``ceil(n / queries_per_doc)`` random
    documents.  With ``shrink=True`` every finding is minimized; with
    ``corpus_path`` set, minimized reproducers are appended there.
    ``max_findings`` caps the findings list so a systematic divergence
    does not turn the report into a firehose (the cap is noted by the
    CLI when hit).  ``routes`` selects a subset of
    :data:`~repro.testing.oracle.ROUTE_NAMES` (the baseline is always
    included); the default runs all ten.  ``governance`` (``timeout`` /
    ``max_tuples`` / ``max_bytes``) runs the algebraic routes under a
    :class:`~repro.engine.governor.ResourceGovernor`: a governed route
    must agree with the ungoverned baseline or abort with exactly a
    governance error — see
    :class:`~repro.testing.oracle.DifferentialRunner`.
    """
    grammar_config = grammar_config or GrammarConfig()
    document_config = document_config or DocumentConfig()
    route_names = _resolve_routes(routes)
    rng = random.Random(seed)
    report = CampaignReport(
        seed=seed, n=n, routes=route_names,
        governance=dict(governance) if governance else None,
    )
    say = progress or (lambda message: None)

    remaining = n
    while remaining > 0 and len(report.findings) < max_findings:
        batch_size = min(queries_per_doc, remaining)
        doc_rng = random.Random(rng.getrandbits(64))
        query_rng = random.Random(rng.getrandbits(64))
        spec = DocumentGenerator(doc_rng, document_config).generate_spec()
        document = build_document(spec)
        report.documents += 1

        generator = QueryGenerator(query_rng, grammar_config)
        queries: List[str] = []
        asts = []
        attempts = 0
        while len(queries) < batch_size and attempts < batch_size * 4:
            attempts += 1
            ast = generator.query_ast()
            query = ast.unparse()
            try:
                parse_xpath(query)
            except ReproError:
                report.generation_rejects += 1
                continue
            queries.append(query)
            asts.append(ast)
        for ast in asts:
            report.coverage.record_query(ast)

        with DifferentialRunner(
            document,
            variables=grammar_config.variables,
            namespaces=grammar_config.namespaces,
            routes=route_names,
            governance=governance,
        ) as runner:
            _record_plan_coverage(runner, queries, report.coverage)
            divergences = runner.check_batch(queries)
            report.queries_run += len(queries)

        value_like, error_like = _tally_baseline(
            document, grammar_config, queries
        )
        report.value_outcomes += value_like
        report.error_outcomes += error_like

        for divergence in divergences:
            if len(report.findings) >= max_findings:
                break
            say(f"divergence: {divergence.describe()}")
            finding = Finding(
                divergence=divergence,
                document_xml=serialize(document),
            )
            if shrink:
                _shrink_finding(
                    finding, divergence, spec, grammar_config, say,
                    governance=governance,
                )
            report.findings.append(finding)
            if corpus_path is not None:
                entry = finding.corpus_entry(
                    seed, n, len(report.findings)
                )
                if append_entry(Path(corpus_path), entry):
                    say(f"corpus: appended {entry.name} to {corpus_path}")

        remaining -= batch_size

    return report


def _resolve_routes(routes: Optional[Sequence[str]]) -> Tuple[str, ...]:
    """Validate a route subset, keeping reporting order and baseline."""
    if routes is None:
        return ROUTE_NAMES
    requested = set(routes)
    unknown = requested - set(ROUTE_NAMES)
    if unknown:
        raise ValueError(
            f"unknown route(s) {sorted(unknown)}; "
            f"expected a subset of {list(ROUTE_NAMES)}"
        )
    requested.add(BASELINE_ROUTE)
    return tuple(name for name in ROUTE_NAMES if name in requested)


def _tally_baseline(document, grammar_config, queries) -> tuple:
    """Count value vs error outcomes on the baseline interpreter only."""
    from repro.baselines.naive import NaiveInterpreter
    from repro.xpath.context import make_context

    naive = NaiveInterpreter()
    values = errors = 0
    for query in queries:
        try:
            naive.evaluate(
                query,
                make_context(
                    document.root,
                    grammar_config.variables,
                    grammar_config.namespaces,
                ),
            )
            values += 1
        except ReproError:
            errors += 1
        except Exception:  # noqa: BLE001 - crashes counted as findings
            errors += 1
    return values, errors


def _record_plan_coverage(
    runner: DifferentialRunner, queries: List[str], tracker: CoverageTracker
) -> None:
    """Record which algebra operators the improved translation used."""
    for query in queries:
        try:
            compiled = runner._engine.compile(query)
        except ReproError:
            continue
        except Exception:  # noqa: BLE001 - compile crash shows up in run
            continue
        try:
            tracker.record_plan(compiled.logical_plan)
        except Exception:  # noqa: BLE001 - coverage must never kill a run
            continue


def _shrink_finding(
    finding: Finding,
    divergence: Divergence,
    spec: ElementSpec,
    grammar_config: GrammarConfig,
    say: Callable[[str], None],
    governance: Optional[Mapping[str, object]] = None,
) -> None:
    try:
        query_ast = parse_xpath(divergence.query)
    except ReproError:
        return

    def still_diverges(candidate_ast, candidate_spec) -> bool:
        try:
            candidate_query = candidate_ast.unparse()
            parse_xpath(candidate_query)
            candidate_doc = build_document(candidate_spec)
        except Exception:  # noqa: BLE001 - invalid candidate
            return False
        with DifferentialRunner(
            candidate_doc,
            variables=grammar_config.variables,
            namespaces=grammar_config.namespaces,
            governance=governance,
        ) as runner:
            return bool(runner.check(candidate_query))

    shrunk_query, shrunk_spec = shrink_repro(
        query_ast, spec, still_diverges
    )
    finding.shrunk_query = shrunk_query.unparse()
    finding.shrunk_document_xml = serialize(build_document(shrunk_spec))
    say(
        f"shrunk to {ast_size(shrunk_query)} AST nodes / "
        f"{spec_size(shrunk_spec)} document nodes: "
        f"{finding.shrunk_query!r}"
    )
