"""Fuzzer command line.

Examples::

    # the CI smoke configuration
    python -m repro.testing fuzz --seed 0 --n 500

    # hunt with shrinking, saving minimized repros to the corpus
    python -m repro.testing fuzz --seed 7 --n 2000 --shrink \\
        --save-corpus tests/corpus/regressions.json

    # replay the entire checked-in regression corpus
    python -m repro.testing replay --corpus-dir tests/corpus

    # inspect what the generator produces
    python -m repro.testing gen --seed 0 --n 20

Exit status is non-zero when any divergence (fuzz) or corpus
disagreement (replay) was found.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path
from typing import List, Optional

from repro.testing.corpus import DEFAULT_CORPUS_DIR, load_corpus
from repro.testing.fuzzer import run_campaign
from repro.testing.grammar import GrammarConfig, QueryGenerator
from repro.testing.oracle import ROUTE_NAMES, DifferentialRunner


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description=(
            "Grammar-directed XPath fuzzer with a ten-way "
            "differential oracle"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fuzz = commands.add_parser(
        "fuzz", help="run a differential fuzz campaign"
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--n", type=int, default=500,
                      help="number of queries (default: 500)")
    fuzz.add_argument(
        "--shrink", action="store_true",
        help="minimize every finding with the delta-debugging shrinker",
    )
    fuzz.add_argument(
        "--queries-per-doc", type=int, default=25, metavar="K",
        help="queries executed against each random document",
    )
    fuzz.add_argument(
        "--save-corpus", metavar="FILE",
        help="append minimized reproducers to this corpus JSON file",
    )
    fuzz.add_argument(
        "--no-report", action="store_true",
        help="skip the grammar/algebra coverage report",
    )
    fuzz.add_argument(
        "--routes", metavar="NAMES",
        help="comma-separated subset of oracle routes to run "
             f"(default: all of {', '.join(ROUTE_NAMES)}; the naive "
             "baseline is always included)",
    )
    fuzz.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="govern the algebraic routes with a per-query deadline; "
             "a governed route must match the ungoverned baseline or "
             "raise exactly a governance error",
    )
    fuzz.add_argument(
        "--max-tuples", type=int, metavar="N",
        help="govern the algebraic routes with a per-query tuple budget",
    )
    fuzz.add_argument(
        "--max-bytes", type=int, metavar="N",
        help="govern the algebraic routes with a per-query "
             "materialization-byte budget",
    )

    replay = commands.add_parser(
        "replay", help="replay the regression corpus through the oracle"
    )
    replay.add_argument(
        "--corpus-dir", default=str(DEFAULT_CORPUS_DIR), metavar="DIR",
    )

    gen = commands.add_parser(
        "gen", help="print sample generated queries (debugging aid)"
    )
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--n", type=int, default=20)

    arguments = parser.parse_args(argv)
    if arguments.command == "fuzz":
        return _cmd_fuzz(arguments)
    if arguments.command == "replay":
        return _cmd_replay(arguments)
    return _cmd_gen(arguments)


def _cmd_fuzz(arguments) -> int:
    corpus_path = (
        Path(arguments.save_corpus) if arguments.save_corpus else None
    )
    routes = None
    if arguments.routes:
        routes = [
            name.strip()
            for name in arguments.routes.split(",")
            if name.strip()
        ]
    governance = {}
    if arguments.timeout is not None:
        governance["timeout"] = arguments.timeout
    if arguments.max_tuples is not None:
        governance["max_tuples"] = arguments.max_tuples
    if arguments.max_bytes is not None:
        governance["max_bytes"] = arguments.max_bytes
    report = run_campaign(
        seed=arguments.seed,
        n=arguments.n,
        shrink=arguments.shrink,
        queries_per_doc=arguments.queries_per_doc,
        corpus_path=corpus_path,
        progress=lambda message: print(message, file=sys.stderr),
        routes=routes,
        governance=governance or None,
    )
    print(report.summary())
    if not arguments.no_report:
        print(report.coverage.render())
    if report.findings:
        print(f"\n{len(report.findings)} divergence(s):")
        for index, finding in enumerate(report.findings, 1):
            print(f"--- finding {index} ---")
            print(finding.divergence.describe())
            if finding.shrunk_query is not None:
                print(f"  shrunk query: {finding.shrunk_query}")
                print(f"  shrunk document: {finding.shrunk_document_xml}")
        return 1
    print("no divergences.")
    return 0


def _cmd_replay(arguments) -> int:
    from repro.testing.corpus import document_cache_key

    entries = list(load_corpus(Path(arguments.corpus_dir)))
    if not entries:
        print(f"no corpus entries under {arguments.corpus_dir}")
        return 1
    failures = 0
    runners = {}
    try:
        for path, entry in entries:
            key = (
                document_cache_key(entry.document),
                tuple(sorted(entry.variables.items())),
                tuple(sorted(entry.namespaces.items())),
            )
            runner = runners.get(key)
            if runner is None:
                runner = DifferentialRunner(
                    entry.build_document(),
                    variables=entry.variables,
                    namespaces=entry.namespaces,
                )
                runners[key] = runner
            divergences = runner.check(entry.query)
            if divergences:
                failures += 1
                print(f"FAIL {path.name}::{entry.name}")
                for divergence in divergences:
                    print("  " + divergence.describe().replace("\n", "\n  "))
    finally:
        for runner in runners.values():
            runner.close()
    print(
        f"replayed {len(entries)} corpus entries from "
        f"{arguments.corpus_dir}: {failures} failure(s)"
    )
    return 1 if failures else 0


def _cmd_gen(arguments) -> int:
    generator = QueryGenerator(
        random.Random(arguments.seed), GrammarConfig()
    )
    for query in generator.queries(arguments.n):
        print(query)
    return 0


if __name__ == "__main__":
    sys.exit(main())
