"""Correctness tooling: grammar-directed fuzzing with a differential oracle.

The paper claims *full-fledged* XPath 1.0 coverage; this package is how
the reproduction keeps that claim honest at scale.  It provides

* :class:`~repro.testing.grammar.QueryGenerator` — seeded, weighted,
  type-directed random queries over the complete XPath 1.0 grammar,
* :class:`~repro.testing.documents.DocumentGenerator` — random XML
  documents (mixed content, comments, PIs, namespaces),
* :class:`~repro.testing.oracle.DifferentialRunner` — executes each
  query through nine independent routes (naive interpreter, canonical
  translation, improved translation, stored page-buffer backend,
  index-forced stored backend, concurrent thread-pool evaluation,
  codegen-compiled evaluation, cost-optimized stored backend) and
  reports any disagreement,
* :mod:`~repro.testing.shrink` — a delta-debugging shrinker minimizing
  both the query AST and the document of a finding,
* :mod:`~repro.testing.corpus` — the persistent regression corpus under
  ``tests/corpus/`` that replays every finding forever,
* :class:`~repro.testing.coverage.CoverageTracker` — reports which
  grammar rules and algebra operators a campaign actually exercised.

Run it: ``python -m repro.testing fuzz --seed 0 --n 500 --shrink``.
See ``docs/testing.md`` for the triage workflow.
"""

from repro.testing.corpus import (
    CorpusEntry,
    DEFAULT_CORPUS_DIR,
    append_entry,
    load_corpus,
)
from repro.testing.coverage import CoverageTracker
from repro.testing.documents import (
    DocumentConfig,
    DocumentGenerator,
    build_document,
    spec_from_document,
)
from repro.testing.fuzzer import CampaignReport, Finding, run_campaign
from repro.testing.grammar import (
    DEFAULT_NAMESPACES,
    DEFAULT_VARIABLES,
    GrammarConfig,
    QueryGenerator,
)
from repro.testing.oracle import (
    BASELINE_ROUTE,
    DifferentialRunner,
    Divergence,
    Outcome,
    ROUTE_NAMES,
    canonical_value,
)
from repro.testing.shrink import (
    ast_size,
    shrink_document,
    shrink_query,
    shrink_repro,
    spec_size,
)

__all__ = [
    "BASELINE_ROUTE",
    "CampaignReport",
    "CorpusEntry",
    "CoverageTracker",
    "DEFAULT_CORPUS_DIR",
    "DEFAULT_NAMESPACES",
    "DEFAULT_VARIABLES",
    "DifferentialRunner",
    "Divergence",
    "DocumentConfig",
    "DocumentGenerator",
    "Finding",
    "GrammarConfig",
    "Outcome",
    "QueryGenerator",
    "ROUTE_NAMES",
    "append_entry",
    "ast_size",
    "build_document",
    "canonical_value",
    "load_corpus",
    "run_campaign",
    "shrink_document",
    "shrink_query",
    "shrink_repro",
    "spec_from_document",
    "spec_size",
]
