"""The XPath 1.0 lexer.

Implements the full lexical structure of spec section 3.7, including the
two disambiguation rules that make the grammar LL(1)-parsable:

* if there is a preceding token, and it is not ``@``, ``::``, ``(``, ``[``,
  ``,`` or an Operator, then ``*`` is the multiplication operator and an
  NCName must be recognized as an OperatorName (``and or mod div``);
* otherwise, an NCName followed by ``(`` is a FunctionName (or a NodeType
  name), and an NCName followed by ``::`` is an AxisName.
"""

from __future__ import annotations

from typing import List

from repro.errors import XPathSyntaxError
from repro.xpath.tokens import (
    NODE_TYPE_NAMES,
    OPERATOR_NAMES,
    Token,
    TokenKind,
)

_WHITESPACE = " \t\r\n"
_SINGLE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "@": TokenKind.AT,
    ",": TokenKind.COMMA,
}
#: Token kinds after which ``*`` is a wildcard and NCNames are names.
_NAME_CONTEXT_KINDS = frozenset(
    {
        TokenKind.AT,
        TokenKind.COLONCOLON,
        TokenKind.LPAREN,
        TokenKind.LBRACKET,
        TokenKind.COMMA,
        TokenKind.OPERATOR,
    }
)


def _is_ncname_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ncname_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_.-·"


class Lexer:
    """Tokenizes one XPath expression string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.tokens: List[Token] = []

    # ------------------------------------------------------------------

    def error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(message, position=self.pos)

    def _preceded_by_name_context(self) -> bool:
        """True when the *next* NCName/star must be read as a name test.

        This encodes the spec's "there is a preceding token and the token
        is not one of ..." rule, inverted.
        """
        if not self.tokens:
            return True
        prev = self.tokens[-1]
        if prev.kind in _NAME_CONTEXT_KINDS:
            return True
        # '/' and '//' are Operators in the spec's sense as well.
        return False

    # ------------------------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Produce the token list, ending with an END token."""
        text = self.text
        length = len(text)
        while True:
            while self.pos < length and text[self.pos] in _WHITESPACE:
                self.pos += 1
            if self.pos >= length:
                break
            start = self.pos
            ch = text[self.pos]

            if ch in _SINGLE_CHAR:
                self.pos += 1
                self.tokens.append(Token(_SINGLE_CHAR[ch], ch, start))
            elif ch == ":" and text.startswith("::", self.pos):
                self.pos += 2
                self.tokens.append(Token(TokenKind.COLONCOLON, "::", start))
            elif ch == ".":
                if text.startswith("..", self.pos):
                    self.pos += 2
                    self.tokens.append(Token(TokenKind.DOTDOT, "..", start))
                elif self.pos + 1 < length and text[self.pos + 1].isdigit():
                    self._lex_number()
                else:
                    self.pos += 1
                    self.tokens.append(Token(TokenKind.DOT, ".", start))
            elif ch.isdigit():
                self._lex_number()
            elif ch in "\"'":
                self._lex_literal()
            elif ch == "$":
                self._lex_variable()
            elif ch == "/":
                if text.startswith("//", self.pos):
                    self.pos += 2
                    self.tokens.append(Token(TokenKind.OPERATOR, "//", start))
                else:
                    self.pos += 1
                    self.tokens.append(Token(TokenKind.OPERATOR, "/", start))
            elif ch in "|+-=":
                self.pos += 1
                self.tokens.append(Token(TokenKind.OPERATOR, ch, start))
            elif ch == "!":
                if text.startswith("!=", self.pos):
                    self.pos += 2
                    self.tokens.append(Token(TokenKind.OPERATOR, "!=", start))
                else:
                    raise self.error("'!' is only valid as part of '!='")
            elif ch in "<>":
                op = ch
                if text.startswith(ch + "=", self.pos):
                    op += "="
                self.pos += len(op)
                self.tokens.append(Token(TokenKind.OPERATOR, op, start))
            elif ch == "*":
                self.pos += 1
                if self._preceded_by_name_context():
                    self.tokens.append(Token(TokenKind.WILDCARD, "*", start))
                else:
                    self.tokens.append(Token(TokenKind.OPERATOR, "*", start))
            elif _is_ncname_start(ch):
                self._lex_name()
            else:
                raise self.error(f"unexpected character {ch!r}")
        self.tokens.append(Token(TokenKind.END, "", self.pos))
        return self.tokens

    # ------------------------------------------------------------------

    def _lex_number(self) -> None:
        start = self.pos
        text, length = self.text, len(self.text)
        while self.pos < length and text[self.pos].isdigit():
            self.pos += 1
        if self.pos < length and text[self.pos] == ".":
            self.pos += 1
            while self.pos < length and text[self.pos].isdigit():
                self.pos += 1
        self.tokens.append(Token(TokenKind.NUMBER, text[start : self.pos], start))

    def _lex_literal(self) -> None:
        start = self.pos
        quote = self.text[self.pos]
        end = self.text.find(quote, self.pos + 1)
        if end < 0:
            raise self.error("unterminated string literal")
        self.tokens.append(
            Token(TokenKind.LITERAL, self.text[start + 1 : end], start)
        )
        self.pos = end + 1

    def _lex_variable(self) -> None:
        start = self.pos
        self.pos += 1  # consume '$'
        name = self._read_qname()
        self.tokens.append(Token(TokenKind.VARIABLE, name, start))

    def _read_ncname(self) -> str:
        start = self.pos
        if self.pos >= len(self.text) or not _is_ncname_start(self.text[self.pos]):
            raise self.error("expected a name")
        self.pos += 1
        text, length = self.text, len(self.text)
        while self.pos < length and _is_ncname_char(text[self.pos]):
            self.pos += 1
        return text[start : self.pos]

    def _read_qname(self) -> str:
        name = self._read_ncname()
        text = self.text
        # 'a:b' but not 'a::b'.
        if (
            self.pos + 1 < len(text)
            and text[self.pos] == ":"
            and _is_ncname_start(text[self.pos + 1])
        ):
            self.pos += 1
            name += ":" + self._read_ncname()
        return name

    def _lex_name(self) -> None:
        start = self.pos
        name_context = self._preceded_by_name_context()
        name = self._read_ncname()

        if not name_context:
            if name in OPERATOR_NAMES:
                self.tokens.append(Token(TokenKind.OPERATOR, name, start))
                return
            raise self.error(
                f"{name!r} cannot follow an expression (expected an operator)"
            )

        text = self.text
        # prefix:* wildcard.
        if text.startswith(":*", self.pos):
            self.pos += 2
            self.tokens.append(Token(TokenKind.WILDCARD, name + ":*", start))
            return
        # Extend to a QName when followed by ':NCName' (but not '::').
        if (
            self.pos + 1 < len(text)
            and text[self.pos] == ":"
            and text[self.pos + 1] != ":"
            and _is_ncname_start(text[self.pos + 1])
        ):
            self.pos += 1
            name += ":" + self._read_ncname()

        lookahead = self.pos
        while lookahead < len(text) and text[lookahead] in _WHITESPACE:
            lookahead += 1

        if text.startswith("::", lookahead):
            self.tokens.append(Token(TokenKind.AXIS_NAME, name, start))
        elif lookahead < len(text) and text[lookahead] == "(":
            if name in NODE_TYPE_NAMES:
                self.tokens.append(Token(TokenKind.NODE_TYPE, name, start))
            else:
                self.tokens.append(Token(TokenKind.FUNCTION_NAME, name, start))
        else:
            self.tokens.append(Token(TokenKind.NAME, name, start))


def tokenize(text: str) -> List[Token]:
    """Tokenize an XPath expression string."""
    return Lexer(text).tokenize()
