"""The XPath 1.0 value model and its conversion/comparison semantics.

XPath expressions evaluate to one of four basic types (spec section 1):

* *node-set* — represented here as a Python ``list`` of
  :class:`~repro.dom.node.Node`, duplicate-free but in arbitrary order
  (XPath 1.0 node-sets are unordered collections),
* *boolean* — Python ``bool``,
* *number* — an IEEE 754 double, Python ``float`` (integers are widened),
* *string* — Python ``str``.

This module centralizes the W3C conversion rules (spec section 4) and the
cross-type comparison matrix (spec section 3.4) so that the algebraic
engine, the NVM and the baseline interpreters share one semantics and can
be differentially tested against each other.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Iterable, List, Sequence, Union

from repro.dom.node import Node

XPathValue = Union[bool, float, str, List[Node]]

NAN = float("nan")
INF = float("inf")


class XPathType(Enum):
    """Static types assigned by semantic analysis."""

    NODE_SET = "node-set"
    BOOLEAN = "boolean"
    NUMBER = "number"
    STRING = "string"
    #: Used before semantic analysis or for context-dependent expressions.
    ANY = "any"


def type_of(value: XPathValue) -> XPathType:
    """Dynamic type of a runtime value."""
    if isinstance(value, bool):
        return XPathType.BOOLEAN
    if isinstance(value, (int, float)):
        return XPathType.NUMBER
    if isinstance(value, str):
        return XPathType.STRING
    if isinstance(value, list):
        return XPathType.NODE_SET
    raise TypeError(f"not an XPath value: {value!r}")


# ----------------------------------------------------------------------
# Document order helpers
# ----------------------------------------------------------------------

def document_order(nodes: Iterable[Node]) -> List[Node]:
    """The nodes sorted into document order."""
    return sorted(nodes, key=lambda n: n.sort_key)


def first_in_document_order(nodes: Sequence[Node]) -> Node:
    """The member of a non-empty node-set that comes first in the document."""
    return min(nodes, key=lambda n: n.sort_key)


def deduplicate(nodes: Iterable[Node]) -> List[Node]:
    """Remove duplicate nodes, keeping first occurrence order."""
    seen: set[Node] = set()
    out: List[Node] = []
    for node in nodes:
        if node not in seen:
            seen.add(node)
            out.append(node)
    return out


# ----------------------------------------------------------------------
# Conversions (spec section 4)
# ----------------------------------------------------------------------

def to_string(value: XPathValue) -> str:
    """The ``string()`` function's conversion (spec section 4.2)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return number_to_string(float(value))
    if isinstance(value, str):
        return value
    if isinstance(value, list):
        if not value:
            return ""
        return first_in_document_order(value).string_value()
    raise TypeError(f"not an XPath value: {value!r}")


def number_to_string(number: float) -> str:
    """Render an IEEE double per the spec's decimal-form rules.

    NaN renders as ``NaN``, signed zero as ``0``, infinities as
    ``Infinity``/``-Infinity``, integral values without a decimal point and
    everything else as the shortest decimal form without an exponent.
    """
    if math.isnan(number):
        return "NaN"
    if number == 0:
        return "0"
    if math.isinf(number):
        return "Infinity" if number > 0 else "-Infinity"
    if number == int(number) and abs(number) < 1e16:
        return str(int(number))
    text = repr(number)
    if "e" in text or "E" in text:
        # Expand exponent notation into plain decimal form.
        text = format(number, ".{}f".format(_decimals_for(number))).rstrip("0")
        if text.endswith("."):
            text = text[:-1]
    return text


def _decimals_for(number: float) -> int:
    """Enough fraction digits to round-trip ``number`` in fixed notation."""
    magnitude = abs(number)
    if magnitude >= 1:
        return 17
    # Small magnitudes need extra places for the leading zeros.
    return min(1074, 17 + int(-math.floor(math.log10(magnitude))))


def to_number(value: XPathValue) -> float:
    """The ``number()`` function's conversion (spec section 4.4)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return string_to_number(value)
    if isinstance(value, list):
        return string_to_number(to_string(value))
    raise TypeError(f"not an XPath value: {value!r}")


def string_to_number(text: str) -> float:
    """Parse a string per the XPath ``Number`` production; else NaN.

    Note that XPath numbers permit a leading ``-`` but no ``+`` sign and no
    exponent, so ``number('+1')`` and ``number('1e3')`` are both NaN.
    """
    stripped = text.strip(" \t\r\n")
    if not stripped:
        return NAN
    body = stripped[1:] if stripped.startswith("-") else stripped
    if not body:
        return NAN
    dot = body.find(".")
    if dot >= 0:
        integer, fraction = body[:dot], body[dot + 1 :]
        if "." in fraction:
            return NAN
        if not integer and not fraction:
            return NAN
        if (integer and not integer.isdigit()) or (
            fraction and not fraction.isdigit()
        ):
            return NAN
    elif not body.isdigit():
        return NAN
    try:
        return float(stripped)
    except ValueError:  # pragma: no cover - guarded by the checks above
        return NAN


def to_boolean(value: XPathValue) -> bool:
    """The ``boolean()`` function's conversion (spec section 4.3)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        number = float(value)
        return number != 0 and not math.isnan(number)
    if isinstance(value, str):
        return len(value) > 0
    if isinstance(value, list):
        return len(value) > 0
    raise TypeError(f"not an XPath value: {value!r}")


def convert(value: XPathValue, target: XPathType) -> XPathValue:
    """Convert ``value`` to the given basic type (identity for ANY)."""
    if target == XPathType.STRING:
        return to_string(value)
    if target == XPathType.NUMBER:
        return to_number(value)
    if target == XPathType.BOOLEAN:
        return to_boolean(value)
    if target == XPathType.NODE_SET:
        if isinstance(value, list):
            return value
        raise TypeError(f"cannot convert {type_of(value).value} to node-set")
    return value


# ----------------------------------------------------------------------
# Arithmetic (spec section 3.5)
# ----------------------------------------------------------------------

def arith(op: str, left: float, right: float) -> float:
    """IEEE 754 arithmetic for ``+ - * div mod`` including the zero cases."""
    if math.isnan(left) or math.isnan(right):
        if op in ("+", "-", "*", "div", "mod"):
            return NAN
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "div":
        if right == 0:
            if left == 0 or math.isnan(left):
                return NAN
            sign = math.copysign(1.0, left) * math.copysign(1.0, right)
            return INF * sign
        return left / right
    if op == "mod":
        # XPath mod truncates toward zero (like Java %), unlike Python %.
        if right == 0 or math.isinf(left) or math.isnan(left) or math.isnan(right):
            return NAN
        if math.isinf(right):
            return left
        return math.fmod(left, right)
    raise ValueError(f"unknown arithmetic operator {op!r}")


def negate(value: float) -> float:
    """Unary minus (preserves NaN, flips signed zero)."""
    return -value


def xpath_round(number: float) -> float:
    """``round()`` per spec: ties go toward positive infinity.

    ``round(-0.5)`` is negative zero and NaN/infinities pass through.
    """
    if math.isnan(number) or math.isinf(number):
        return number
    rounded = math.floor(number + 0.5)
    if rounded == 0 and (number < 0 or (number == 0 and math.copysign(1, number) < 0)):
        return -0.0
    return float(rounded)


# ----------------------------------------------------------------------
# Comparisons (spec section 3.4)
# ----------------------------------------------------------------------

def _numeric_compare(op: str, a: float, b: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return False
    if op == "=":
        return a == b
    if op == "!=":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise ValueError(f"unknown comparison operator {op!r}")


def _atomic_compare(op: str, left: XPathValue, right: XPathValue) -> bool:
    """Compare two non-node-set values per the spec's precedence rules."""
    if op in ("=", "!="):
        if isinstance(left, bool) or isinstance(right, bool):
            result = to_boolean(left) == to_boolean(right)
        elif isinstance(left, (int, float)) or isinstance(right, (int, float)):
            # Python float equality is IEEE 754: NaN = NaN is false and
            # NaN != anything is true, exactly as XPath requires.
            result = to_number(left) == to_number(right)
        else:
            result = to_string(left) == to_string(right)
        return result if op == "=" else not result
    # Relational operators always compare as numbers.
    return _numeric_compare(op, to_number(left), to_number(right))


def compare(op: str, left: XPathValue, right: XPathValue) -> bool:
    """Full cross-type comparison including existential node-set semantics.

    Exactly one subtlety deserves a note: when a node-set meets ``=`` or
    ``!=`` against a number or string, the comparison is existential over
    the node string-values; NaN makes every numeric comparison false, so
    ``ns != 'x'`` is *not* the negation of ``ns = 'x'``.
    """
    left_is_ns = isinstance(left, list)
    right_is_ns = isinstance(right, list)

    if left_is_ns and right_is_ns:
        if op in ("=", "!="):
            right_strings = {node.string_value() for node in right}
            for node in left:
                sv = node.string_value()
                if op == "=" and sv in right_strings:
                    return True
                if op == "!=" and any(sv != other for other in right_strings):
                    return True
            return False
        for a in left:
            na = string_to_number(a.string_value())
            for b in right:
                if _numeric_compare(op, na, string_to_number(b.string_value())):
                    return True
        return False

    if left_is_ns or right_is_ns:
        nodes, other = (left, right) if left_is_ns else (right, left)
        node_side_is_left = left_is_ns
        if isinstance(other, bool):
            return _atomic_compare(op if node_side_is_left else _flip(op),
                                   to_boolean(nodes), other)
        for node in nodes:
            sv: XPathValue = node.string_value()
            a, b = (sv, other) if node_side_is_left else (other, sv)
            if _atomic_compare(op, a, b):
                return True
        return False

    return _atomic_compare(op, left, right)


def _flip(op: str) -> str:
    """Mirror a comparison operator (for swapped operands)."""
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}[op]
