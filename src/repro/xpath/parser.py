"""Recursive-descent parser for the complete XPath 1.0 grammar.

The grammar is taken verbatim from the W3C recommendation [Clark & DeRose
1999].  All abbreviations are expanded during parsing (see
:mod:`repro.xpath.xast`), and the paper's shorthand axis names from Fig. 5
(``desc``, ``anc``, ``pre-sib``, ``fol``, ``par``, ...) are accepted as
axis aliases.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import XPathSyntaxError
from repro.xpath.axes import Axis, NodeTestKind, axis_by_name
from repro.xpath.lexer import tokenize
from repro.xpath.tokens import Token, TokenKind
from repro.xpath.xast import (
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    Number,
    PathExpr,
    Predicate,
    Step,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)

#: Token kinds that can begin a location step.
_STEP_START = frozenset(
    {
        TokenKind.NAME,
        TokenKind.WILDCARD,
        TokenKind.AXIS_NAME,
        TokenKind.NODE_TYPE,
        TokenKind.AT,
        TokenKind.DOT,
        TokenKind.DOTDOT,
    }
)

#: Token kinds that can begin a primary (filter) expression.
_PRIMARY_START = frozenset(
    {
        TokenKind.VARIABLE,
        TokenKind.LITERAL,
        TokenKind.NUMBER,
        TokenKind.LPAREN,
        TokenKind.FUNCTION_NAME,
    }
)


def _self_node_step() -> Step:
    return Step(Axis.SELF, NodeTestKind.NODE, None)


def _parent_node_step() -> Step:
    return Step(Axis.PARENT, NodeTestKind.NODE, None)


def _descendant_or_self_step() -> Step:
    return Step(Axis.DESCENDANT_OR_SELF, NodeTestKind.NODE, None)


class Parser:
    """Parses one token stream into an AST."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.index = 0

    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != TokenKind.END:
            self.index += 1
        return token

    def error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(message, position=self.current.position)

    def expect(self, kind: TokenKind, what: str) -> Token:
        if self.current.kind != kind:
            raise self.error(f"expected {what}, found {self.current.value!r}")
        return self.advance()

    def at_operator(self, *ops: str) -> bool:
        token = self.current
        return token.kind == TokenKind.OPERATOR and token.value in ops

    # ------------------------------------------------------------------
    # Expression grammar (precedence climbing via one method per level)
    # ------------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.at_operator("or"):
            self.advance()
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_equality()
        while self.at_operator("and"):
            self.advance()
            left = BinaryOp("and", left, self._parse_equality())
        return left

    def _parse_equality(self) -> Expr:
        left = self._parse_relational()
        while self.at_operator("=", "!="):
            op = self.advance().value
            left = BinaryOp(op, left, self._parse_relational())
        return left

    def _parse_relational(self) -> Expr:
        left = self._parse_additive()
        while self.at_operator("<", "<=", ">", ">="):
            op = self.advance().value
            left = BinaryOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self.at_operator("+", "-"):
            op = self.advance().value
            left = BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self.at_operator("*", "div", "mod"):
            op = self.advance().value
            left = BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self.at_operator("-"):
            self.advance()
            return UnaryMinus(self._parse_unary())
        return self._parse_union()

    def _parse_union(self) -> Expr:
        left = self._parse_path()
        if not self.at_operator("|"):
            return left
        operands = [left]
        while self.at_operator("|"):
            self.advance()
            operands.append(self._parse_path())
        return UnionExpr(operands)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _parse_path(self) -> Expr:
        """PathExpr: a location path, or a filter expr with optional path."""
        token = self.current
        if token.kind in _PRIMARY_START:
            filter_expr = self._parse_filter()
            if self.at_operator("/", "//"):
                steps: List[Step] = []
                if self.advance().value == "//":
                    steps.append(_descendant_or_self_step())
                steps.extend(self._parse_relative_steps())
                return PathExpr(filter_expr, LocationPath(False, steps))
            return filter_expr
        return self._parse_location_path()

    def _parse_filter(self) -> Expr:
        primary = self._parse_primary()
        predicates: List[Predicate] = []
        while self.current.kind == TokenKind.LBRACKET:
            predicates.append(self._parse_predicate())
        if predicates:
            return FilterExpr(primary, predicates)
        return primary

    def _parse_primary(self) -> Expr:
        token = self.current
        if token.kind == TokenKind.VARIABLE:
            self.advance()
            return VariableRef(token.value)
        if token.kind == TokenKind.LITERAL:
            self.advance()
            return Literal(token.value)
        if token.kind == TokenKind.NUMBER:
            self.advance()
            return Number(float(token.value))
        if token.kind == TokenKind.LPAREN:
            self.advance()
            inner = self.parse_expr()
            self.expect(TokenKind.RPAREN, "')'")
            return inner
        if token.kind == TokenKind.FUNCTION_NAME:
            return self._parse_function_call()
        raise self.error(f"unexpected token {token.value!r}")

    def _parse_function_call(self) -> FunctionCall:
        name = self.advance().value
        self.expect(TokenKind.LPAREN, "'('")
        args: List[Expr] = []
        if self.current.kind != TokenKind.RPAREN:
            args.append(self.parse_expr())
            while self.current.kind == TokenKind.COMMA:
                self.advance()
                args.append(self.parse_expr())
        self.expect(TokenKind.RPAREN, "')'")
        return FunctionCall(name, args)

    def _parse_location_path(self) -> LocationPath:
        token = self.current
        if self.at_operator("/"):
            self.advance()
            if self.current.kind in _STEP_START:
                return LocationPath(True, self._parse_relative_steps())
            return LocationPath(True, [])  # bare '/': the root node
        if self.at_operator("//"):
            self.advance()
            steps = [_descendant_or_self_step()]
            steps.extend(self._parse_relative_steps())
            return LocationPath(True, steps)
        if token.kind in _STEP_START:
            return LocationPath(False, self._parse_relative_steps())
        raise self.error(f"expected a location path, found {token.value!r}")

    def _parse_relative_steps(self) -> List[Step]:
        steps = [self._parse_step()]
        while self.at_operator("/", "//"):
            if self.advance().value == "//":
                steps.append(_descendant_or_self_step())
            steps.append(self._parse_step())
        return steps

    def _parse_step(self) -> Step:
        token = self.current
        if token.kind == TokenKind.DOT:
            self.advance()
            return _self_node_step()
        if token.kind == TokenKind.DOTDOT:
            self.advance()
            return _parent_node_step()

        axis = Axis.CHILD
        if token.kind == TokenKind.AT:
            self.advance()
            axis = Axis.ATTRIBUTE
        elif token.kind == TokenKind.AXIS_NAME:
            resolved = axis_by_name(token.value)
            if resolved is None:
                raise self.error(f"unknown axis {token.value!r}")
            axis = resolved
            self.advance()
            self.expect(TokenKind.COLONCOLON, "'::'")

        test_kind, test_name = self._parse_node_test()
        predicates: List[Predicate] = []
        while self.current.kind == TokenKind.LBRACKET:
            predicates.append(self._parse_predicate())
        return Step(axis, test_kind, test_name, predicates)

    def _parse_node_test(self) -> tuple[NodeTestKind, Optional[str]]:
        token = self.current
        if token.kind == TokenKind.NAME:
            self.advance()
            return NodeTestKind.NAME, token.value
        if token.kind == TokenKind.WILDCARD:
            self.advance()
            if token.value == "*":
                return NodeTestKind.ANY_NAME, None
            return NodeTestKind.ANY_NAME, token.value[:-2]  # strip ':*'
        if token.kind == TokenKind.NODE_TYPE:
            self.advance()
            self.expect(TokenKind.LPAREN, "'('")
            target: Optional[str] = None
            if token.value == "processing-instruction":
                if self.current.kind == TokenKind.LITERAL:
                    target = self.advance().value
            self.expect(TokenKind.RPAREN, "')'")
            kinds = {
                "node": NodeTestKind.NODE,
                "text": NodeTestKind.TEXT,
                "comment": NodeTestKind.COMMENT,
                "processing-instruction": NodeTestKind.PI,
            }
            return kinds[token.value], target
        raise self.error(f"expected a node test, found {token.value!r}")

    def _parse_predicate(self) -> Predicate:
        self.expect(TokenKind.LBRACKET, "'['")
        expr = self.parse_expr()
        self.expect(TokenKind.RBRACKET, "']'")
        return Predicate(expr)


def parse_xpath(text: str) -> Expr:
    """Parse an XPath 1.0 expression string into an AST.

    Raises :class:`~repro.errors.XPathSyntaxError` on malformed input.
    """
    parser = Parser(tokenize(text))
    expr = parser.parse_expr()
    if parser.current.kind != TokenKind.END:
        raise parser.error(
            f"unexpected trailing input {parser.current.value!r}"
        )
    return expr
