"""XPath 1.0 front end: lexer, parser, data model, axes and functions."""

from repro.xpath.parser import parse_xpath
from repro.xpath.datamodel import (
    XPathType,
    to_boolean,
    to_number,
    to_string,
)

__all__ = [
    "parse_xpath",
    "XPathType",
    "to_boolean",
    "to_number",
    "to_string",
]
