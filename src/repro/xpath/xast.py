"""Abstract syntax tree for XPath 1.0 expressions.

The parser produces these nodes with all abbreviations already expanded
(``//`` to ``/descendant-or-self::node()/``, ``@n`` to ``attribute::n``,
``.``/``..`` to ``self::node()``/``parent::node()``, omitted axes to
``child``), so later compiler phases only deal with the unabbreviated
grammar.

Semantic analysis (phase 3) annotates every expression node in place with
``static_type`` (:class:`~repro.xpath.datamodel.XPathType`) and sets the
context-dependency flags used by the normalization of predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.xpath.axes import Axis, NodeTestKind
from repro.xpath.datamodel import XPathType


@dataclass
class Expr:
    """Base class for all expression nodes."""

    #: Filled in by semantic analysis.
    static_type: XPathType = field(
        default=XPathType.ANY, init=False, repr=False, compare=False
    )
    #: True if the subtree calls position() outside nested predicates.
    uses_position: bool = field(
        default=False, init=False, repr=False, compare=False
    )
    #: True if the subtree calls last() outside nested predicates.
    uses_last: bool = field(default=False, init=False, repr=False, compare=False)

    def unparse(self) -> str:
        """Render back to XPath surface syntax (unabbreviated)."""
        raise NotImplementedError


@dataclass
class Number(Expr):
    value: float

    def unparse(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return repr(self.value)


@dataclass
class Literal(Expr):
    value: str

    def unparse(self) -> str:
        quote = "'" if "'" not in self.value else '"'
        return f"{quote}{self.value}{quote}"


@dataclass
class VariableRef(Expr):
    name: str

    def unparse(self) -> str:
        return f"${self.name}"


@dataclass
class FunctionCall(Expr):
    name: str
    args: List[Expr]

    def unparse(self) -> str:
        return f"{self.name}({', '.join(a.unparse() for a in self.args)})"


@dataclass
class BinaryOp(Expr):
    """``or and = != < <= > >= + - * div mod`` with two operands."""

    op: str
    left: Expr
    right: Expr

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass
class UnaryMinus(Expr):
    operand: Expr

    def unparse(self) -> str:
        return f"-{self.operand.unparse()}"


@dataclass
class Predicate:
    """One ``[expr]`` predicate attached to a step or filter expression."""

    expr: Expr
    #: Set by normalization (phase 2): a
    #: :class:`repro.compiler.normalize.PredicateInfo` with the clause
    #: split and the cheap/exp/pos/last classification of section 4.3.2.
    info: object = field(default=None, repr=False, compare=False)

    def unparse(self) -> str:
        return f"[{self.expr.unparse()}]"


@dataclass
class Step:
    """An unabbreviated location step ``axis::test[pred]...``."""

    axis: Axis
    test_kind: NodeTestKind
    #: QName for NAME tests, prefix for ``prefix:*``, PI target for PI.
    test_name: Optional[str]
    predicates: List[Predicate] = field(default_factory=list)

    def test_unparse(self) -> str:
        if self.test_kind == NodeTestKind.NAME:
            return self.test_name or ""
        if self.test_kind == NodeTestKind.ANY_NAME:
            return f"{self.test_name}:*" if self.test_name else "*"
        if self.test_kind == NodeTestKind.PI and self.test_name is not None:
            return f"processing-instruction('{self.test_name}')"
        return f"{self.test_kind.value}()"

    def unparse(self) -> str:
        preds = "".join(p.unparse() for p in self.predicates)
        return f"{self.axis.value}::{self.test_unparse()}{preds}"


@dataclass
class LocationPath(Expr):
    """An absolute or relative location path."""

    absolute: bool
    steps: List[Step]

    def unparse(self) -> str:
        body = "/".join(s.unparse() for s in self.steps)
        return ("/" + body) if self.absolute else body


@dataclass
class FilterExpr(Expr):
    """A primary expression with predicates: ``(e)[p1]...[ph]``."""

    primary: Expr
    predicates: List[Predicate]

    def unparse(self) -> str:
        preds = "".join(p.unparse() for p in self.predicates)
        return f"({self.primary.unparse()}){preds}"


@dataclass
class PathExpr(Expr):
    """A general path expression ``e / relative-path`` (spec 3.3)."""

    source: Expr
    path: LocationPath

    def unparse(self) -> str:
        return f"{self.source.unparse()}/{self.path.unparse()}"


@dataclass
class UnionExpr(Expr):
    """``e1 | e2 | ... | en`` — flattened into one node."""

    operands: List[Expr]

    def unparse(self) -> str:
        return " | ".join(o.unparse() for o in self.operands)


def iter_child_exprs(expr: Expr) -> Tuple[Expr, ...]:
    """Direct sub-expressions of a node (predicates included)."""
    if isinstance(expr, FunctionCall):
        return tuple(expr.args)
    if isinstance(expr, BinaryOp):
        return (expr.left, expr.right)
    if isinstance(expr, UnaryMinus):
        return (expr.operand,)
    if isinstance(expr, LocationPath):
        return tuple(p.expr for s in expr.steps for p in s.predicates)
    if isinstance(expr, FilterExpr):
        return (expr.primary,) + tuple(p.expr for p in expr.predicates)
    if isinstance(expr, PathExpr):
        return (expr.source, expr.path)
    if isinstance(expr, UnionExpr):
        return tuple(expr.operands)
    return ()
