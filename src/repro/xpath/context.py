"""Evaluation contexts (spec section 1).

An XPath expression is evaluated with respect to a context consisting of a
context node, a context position and size, variable bindings, a function
library and namespace declarations.  :class:`EvalContext` carries exactly
that; it is shared by the baseline interpreters, the NVM builtins and the
top-level API.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.dom.node import Node
from repro.errors import UnboundVariableError
from repro.xpath.datamodel import XPathValue


@dataclass
class EvalContext:
    """One XPath evaluation context.

    Contexts are treated as immutable: derived contexts (for predicate
    evaluation, nested paths, ...) are created via :meth:`with_node` /
    :meth:`with_position`.
    """

    node: Node
    position: int = 1
    size: int = 1
    variables: Mapping[str, XPathValue] = field(default_factory=dict)
    namespaces: Mapping[str, str] = field(default_factory=dict)

    def variable(self, name: str) -> XPathValue:
        """Look up a ``$name`` binding; raises if unbound."""
        try:
            return self.variables[name]
        except KeyError:
            raise UnboundVariableError(name) from None

    def with_node(self, node: Node, position: int = 1, size: int = 1) -> "EvalContext":
        """A derived context with a new node/position/size."""
        return replace(self, node=node, position=position, size=size)

    def with_position(self, position: int, size: int) -> "EvalContext":
        return replace(self, position=position, size=size)


def make_context(
    node: Node,
    variables: Optional[Mapping[str, XPathValue]] = None,
    namespaces: Optional[Mapping[str, str]] = None,
) -> EvalContext:
    """Create a top-level context for ``node`` (position = size = 1)."""
    return EvalContext(
        node=node,
        variables=dict(variables or {}),
        namespaces=dict(namespaces or {}),
    )
