"""Token definitions for the XPath 1.0 lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Lexical token categories after spec-3.7 disambiguation."""

    NUMBER = auto()         # 3, 3.14, .5
    LITERAL = auto()        # 'abc' or "abc"
    VARIABLE = auto()       # $name
    NAME = auto()           # QName used as a name test
    FUNCTION_NAME = auto()  # QName directly followed by '('
    AXIS_NAME = auto()      # NCName directly followed by '::'
    NODE_TYPE = auto()      # comment | text | processing-instruction | node
    WILDCARD = auto()       # * as a name test (incl. prefix:*)
    OPERATOR = auto()       # / // | + - = != < <= > >= * and or mod div
    LPAREN = auto()         # (
    RPAREN = auto()         # )
    LBRACKET = auto()       # [
    RBRACKET = auto()       # ]
    DOT = auto()            # .
    DOTDOT = auto()         # ..
    AT = auto()             # @
    COMMA = auto()          # ,
    COLONCOLON = auto()     # ::
    END = auto()            # end of input


#: NCNames that are operators when the disambiguation rule applies.
OPERATOR_NAMES = frozenset({"and", "or", "mod", "div"})

#: NCNames naming node types in the grammar.
NODE_TYPE_NAMES = frozenset({"comment", "text", "processing-instruction", "node"})


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source offset."""

    kind: TokenKind
    value: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r}, @{self.position})"
