"""The XPath 1.0 core function library (spec section 4).

All 27 functions are implemented here once and reused by every evaluation
strategy in the repository: the baseline interpreters call them directly,
the NVM exposes them as builtin commands, and semantic analysis uses the
signature table to type-check calls and to insert implicit conversions.

Each function is registered with a :class:`Signature` describing

* its minimum/maximum argument count (``max_args=None`` for variadic),
* the parameter types arguments are implicitly converted to
  (``OBJECT`` parameters take any value unchanged, ``NODE_SET``
  parameters are type-checked but never converted),
* its static return type,
* whether it needs the dynamic context (``position()``, ``last()``, the
  zero-argument forms of ``string()``/``name()``/..., and ``lang()``),
* whether it is *position-based* — the property the paper's predicate
  classification (sections 3.3, 4.3) revolves around.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.dom.node import Node, NodeKind
from repro.errors import XPathNameError, XPathTypeError
from repro.xpath.context import EvalContext
from repro.xpath.datamodel import (
    NAN,
    XPathType,
    XPathValue,
    deduplicate,
    first_in_document_order,
    to_boolean,
    to_number,
    to_string,
    xpath_round,
)

#: Parameter type marker: accept any value without conversion.
OBJECT = XPathType.ANY


@dataclass(frozen=True)
class Signature:
    """Static description of one library function."""

    name: str
    min_args: int
    max_args: Optional[int]
    param_types: Sequence[XPathType]
    return_type: XPathType
    needs_context: bool
    impl: Callable[..., XPathValue]
    position_based: bool = False

    def param_type(self, index: int) -> XPathType:
        """Declared type of the ``index``-th parameter (variadics repeat)."""
        if index < len(self.param_types):
            return self.param_types[index]
        if self.max_args is None and self.param_types:
            return self.param_types[-1]
        raise XPathTypeError(
            f"{self.name}() takes at most {len(self.param_types)} arguments"
        )


_REGISTRY: Dict[str, Signature] = {}


def _register(
    name: str,
    min_args: int,
    max_args: Optional[int],
    param_types: Sequence[XPathType],
    return_type: XPathType,
    needs_context: bool = False,
    position_based: bool = False,
) -> Callable[[Callable[..., XPathValue]], Callable[..., XPathValue]]:
    def decorator(impl: Callable[..., XPathValue]) -> Callable[..., XPathValue]:
        _REGISTRY[name] = Signature(
            name,
            min_args,
            max_args,
            tuple(param_types),
            return_type,
            needs_context,
            impl,
            position_based,
        )
        return impl

    return decorator


def lookup(name: str) -> Signature:
    """Find a function by name; raises :class:`XPathNameError` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise XPathNameError(f"unknown function {name}()") from None


def all_function_names() -> List[str]:
    return sorted(_REGISTRY)


def call(name: str, context: Optional[EvalContext], args: List[XPathValue]) -> XPathValue:
    """Dynamically invoke a library function (used by the interpreters)."""
    signature = lookup(name)
    if len(args) < signature.min_args or (
        signature.max_args is not None and len(args) > signature.max_args
    ):
        raise XPathTypeError(
            f"{name}() called with {len(args)} arguments"
        )
    converted: List[XPathValue] = []
    for index, value in enumerate(args):
        target = signature.param_type(index)
        if target == XPathType.NODE_SET:
            if not isinstance(value, list):
                raise XPathTypeError(
                    f"argument {index + 1} of {name}() must be a node-set"
                )
            converted.append(value)
        elif target == OBJECT:
            converted.append(value)
        elif target == XPathType.STRING:
            converted.append(to_string(value))
        elif target == XPathType.NUMBER:
            converted.append(to_number(value))
        elif target == XPathType.BOOLEAN:
            converted.append(to_boolean(value))
        else:  # pragma: no cover - no other param types are registered
            converted.append(value)
    if signature.needs_context:
        # Most context-dependent functions only need the context for
        # their zero-argument defaulting form; id() and lang() need the
        # document / ancestor chain regardless.
        always_needs = name in ("position", "last", "id", "lang")
        if context is None and (always_needs or not converted):
            raise XPathTypeError(f"{name}() requires an evaluation context")
        return signature.impl(context, *converted)
    return signature.impl(*converted)


# ----------------------------------------------------------------------
# 4.1 Node-set functions
# ----------------------------------------------------------------------

@_register("last", 0, 0, (), XPathType.NUMBER, needs_context=True,
           position_based=True)
def fn_last(context: EvalContext) -> float:
    return float(context.size)


@_register("position", 0, 0, (), XPathType.NUMBER, needs_context=True,
           position_based=True)
def fn_position(context: EvalContext) -> float:
    return float(context.position)


@_register("count", 1, 1, (XPathType.NODE_SET,), XPathType.NUMBER)
def fn_count(nodes: List[Node]) -> float:
    return float(len(nodes))


@_register("id", 1, 1, (OBJECT,), XPathType.NODE_SET, needs_context=True)
def fn_id(context: EvalContext, value: XPathValue) -> List[Node]:
    document = context.node.document
    if document is None:
        return []
    if isinstance(value, list):
        tokens: List[str] = []
        for node in value:
            tokens.extend(node.string_value().split())
    else:
        tokens = to_string(value).split()
    found = [document.get_element_by_id(token) for token in tokens]
    return deduplicate(node for node in found if node is not None)


def _name_target(context: EvalContext, nodes: Optional[List[Node]]) -> Optional[Node]:
    if nodes is None:
        return context.node
    if not nodes:
        return None
    return first_in_document_order(nodes)


@_register("local-name", 0, 1, (XPathType.NODE_SET,), XPathType.STRING,
           needs_context=True)
def fn_local_name(context: EvalContext, nodes: Optional[List[Node]] = None) -> str:
    node = _name_target(context, nodes)
    return node.local_name if node is not None else ""


@_register("namespace-uri", 0, 1, (XPathType.NODE_SET,), XPathType.STRING,
           needs_context=True)
def fn_namespace_uri(context: EvalContext, nodes: Optional[List[Node]] = None) -> str:
    node = _name_target(context, nodes)
    return node.namespace_uri() if node is not None else ""


@_register("name", 0, 1, (XPathType.NODE_SET,), XPathType.STRING,
           needs_context=True)
def fn_name(context: EvalContext, nodes: Optional[List[Node]] = None) -> str:
    node = _name_target(context, nodes)
    if node is None:
        return ""
    if node.kind in (NodeKind.ELEMENT, NodeKind.ATTRIBUTE,
                     NodeKind.PROCESSING_INSTRUCTION, NodeKind.NAMESPACE):
        return node.name or ""
    return ""


# ----------------------------------------------------------------------
# 4.2 String functions
# ----------------------------------------------------------------------

@_register("string", 0, 1, (OBJECT,), XPathType.STRING, needs_context=True)
def fn_string(context: EvalContext, value: Optional[XPathValue] = None) -> str:
    if value is None:
        return context.node.string_value()
    return to_string(value)


@_register("concat", 2, None, (XPathType.STRING, XPathType.STRING),
           XPathType.STRING)
def fn_concat(*parts: str) -> str:
    return "".join(parts)


@_register("starts-with", 2, 2, (XPathType.STRING, XPathType.STRING),
           XPathType.BOOLEAN)
def fn_starts_with(haystack: str, prefix: str) -> bool:
    return haystack.startswith(prefix)


@_register("contains", 2, 2, (XPathType.STRING, XPathType.STRING),
           XPathType.BOOLEAN)
def fn_contains(haystack: str, needle: str) -> bool:
    return needle in haystack


@_register("substring-before", 2, 2, (XPathType.STRING, XPathType.STRING),
           XPathType.STRING)
def fn_substring_before(haystack: str, needle: str) -> str:
    index = haystack.find(needle)
    return haystack[:index] if index >= 0 else ""


@_register("substring-after", 2, 2, (XPathType.STRING, XPathType.STRING),
           XPathType.STRING)
def fn_substring_after(haystack: str, needle: str) -> str:
    index = haystack.find(needle)
    return haystack[index + len(needle) :] if index >= 0 else ""


@_register("substring", 2, 3,
           (XPathType.STRING, XPathType.NUMBER, XPathType.NUMBER),
           XPathType.STRING)
def fn_substring(text: str, start: float, length: Optional[float] = None) -> str:
    """``substring()`` with the spec's rounding/NaN/infinity corner cases.

    The spec defines the result as the characters at 1-based positions
    ``p`` with ``round(start) <= p < round(start) + round(length)`` where
    comparisons involving NaN are false.
    """
    begin = xpath_round(start)
    if math.isnan(begin):
        return ""
    if length is None:
        end = math.inf
    else:
        rounded = xpath_round(length)
        if math.isnan(rounded):
            return ""
        end = begin + rounded
    out: List[str] = []
    for offset, ch in enumerate(text):
        p = offset + 1
        if p >= begin and p < end:
            out.append(ch)
    return "".join(out)


@_register("string-length", 0, 1, (XPathType.STRING,), XPathType.NUMBER,
           needs_context=True)
def fn_string_length(context: EvalContext, text: Optional[str] = None) -> float:
    if text is None:
        text = context.node.string_value()
    return float(len(text))


@_register("normalize-space", 0, 1, (XPathType.STRING,), XPathType.STRING,
           needs_context=True)
def fn_normalize_space(context: EvalContext, text: Optional[str] = None) -> str:
    if text is None:
        text = context.node.string_value()
    return " ".join(text.split())


@_register("translate", 3, 3,
           (XPathType.STRING, XPathType.STRING, XPathType.STRING),
           XPathType.STRING)
def fn_translate(text: str, source: str, target: str) -> str:
    mapping: Dict[str, Optional[str]] = {}
    for index, ch in enumerate(source):
        if ch not in mapping:  # first occurrence wins, per spec
            mapping[ch] = target[index] if index < len(target) else None
    out: List[str] = []
    for ch in text:
        if ch in mapping:
            replacement = mapping[ch]
            if replacement is not None:
                out.append(replacement)
        else:
            out.append(ch)
    return "".join(out)


# ----------------------------------------------------------------------
# 4.3 Boolean functions
# ----------------------------------------------------------------------

@_register("boolean", 1, 1, (OBJECT,), XPathType.BOOLEAN)
def fn_boolean(value: XPathValue) -> bool:
    return to_boolean(value)


@_register("not", 1, 1, (XPathType.BOOLEAN,), XPathType.BOOLEAN)
def fn_not(value: bool) -> bool:
    return not value


@_register("true", 0, 0, (), XPathType.BOOLEAN)
def fn_true() -> bool:
    return True


@_register("false", 0, 0, (), XPathType.BOOLEAN)
def fn_false() -> bool:
    return False


@_register("lang", 1, 1, (XPathType.STRING,), XPathType.BOOLEAN,
           needs_context=True)
def fn_lang(context: EvalContext, target: str) -> bool:
    node: Optional[Node] = context.node
    if node is not None and not node.is_tree_node():
        node = node.parent
    while node is not None:
        for attr in node.attributes:
            if attr.name == "xml:lang":
                language = (attr.value or "").lower()
                wanted = target.lower()
                return language == wanted or language.startswith(wanted + "-")
        node = node.parent
    return False


# ----------------------------------------------------------------------
# 4.4 Number functions
# ----------------------------------------------------------------------

@_register("number", 0, 1, (OBJECT,), XPathType.NUMBER, needs_context=True)
def fn_number(context: EvalContext, value: Optional[XPathValue] = None) -> float:
    if value is None:
        return to_number(context.node.string_value())
    return to_number(value)


@_register("sum", 1, 1, (XPathType.NODE_SET,), XPathType.NUMBER)
def fn_sum(nodes: List[Node]) -> float:
    total = 0.0
    for node in nodes:
        total += to_number(node.string_value())
    return total


@_register("floor", 1, 1, (XPathType.NUMBER,), XPathType.NUMBER)
def fn_floor(value: float) -> float:
    if math.isnan(value) or math.isinf(value):
        return value
    return float(math.floor(value))


@_register("ceiling", 1, 1, (XPathType.NUMBER,), XPathType.NUMBER)
def fn_ceiling(value: float) -> float:
    if math.isnan(value) or math.isinf(value):
        return value
    return float(math.ceil(value))


@_register("round", 1, 1, (XPathType.NUMBER,), XPathType.NUMBER)
def fn_round(value: float) -> float:
    return xpath_round(value)
