"""The thirteen XPath axes and node tests.

Each axis is implemented as a generator yielding nodes in *axis order*:
forward axes in document order, reverse axes (``ancestor``,
``ancestor-or-self``, ``preceding``, ``preceding-sibling``) in reverse
document order.  Axis order is what makes ``position()`` count proximity
position for reverse axes, as the spec requires — the unnest-map operator
simply enumerates the generator.

The module also implements the paper's *ppd* classification (section 4.1):
the set of axes that may produce duplicates when applied to a node-set of
several context nodes, after which the improved translation inserts a
duplicate elimination.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, Iterator, Mapping, Optional

from repro.dom.node import Node, NodeKind


class Axis(Enum):
    """Axis identifiers, named exactly as in the XPath grammar."""

    CHILD = "child"
    DESCENDANT = "descendant"
    PARENT = "parent"
    ANCESTOR = "ancestor"
    FOLLOWING_SIBLING = "following-sibling"
    PRECEDING_SIBLING = "preceding-sibling"
    FOLLOWING = "following"
    PRECEDING = "preceding"
    ATTRIBUTE = "attribute"
    NAMESPACE = "namespace"
    SELF = "self"
    DESCENDANT_OR_SELF = "descendant-or-self"
    ANCESTOR_OR_SELF = "ancestor-or-self"


#: Shorthand axis names accepted by the parser in addition to the
#: grammar names.  The paper's own figures use these (Fig. 5).
AXIS_ALIASES: Dict[str, str] = {
    "desc": "descendant",
    "anc": "ancestor",
    "par": "parent",
    "fol": "following",
    "prec": "preceding",
    "fol-sib": "following-sibling",
    "pre-sib": "preceding-sibling",
    "attr": "attribute",
}

_AXES_BY_NAME = {axis.value: axis for axis in Axis}


def axis_by_name(name: str) -> Optional[Axis]:
    """Resolve an axis name or paper shorthand; ``None`` if unknown."""
    return _AXES_BY_NAME.get(AXIS_ALIASES.get(name, name))


#: Axes that enumerate in reverse document order.
REVERSE_AXES = frozenset(
    {Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF, Axis.PRECEDING, Axis.PRECEDING_SIBLING}
)

#: The paper's section-4.1 list: location steps along these axes may
#: produce duplicates when the preceding context contains several nodes.
PPD_AXES = frozenset(
    {
        Axis.FOLLOWING,
        Axis.FOLLOWING_SIBLING,
        Axis.PRECEDING,
        Axis.PRECEDING_SIBLING,
        Axis.PARENT,
        Axis.ANCESTOR,
        Axis.ANCESTOR_OR_SELF,
        Axis.DESCENDANT,
        Axis.DESCENDANT_OR_SELF,
    }
)


def ppd(axis: Axis) -> bool:
    """True iff a step along ``axis`` potentially produces duplicates."""
    return axis in PPD_AXES


def principal_node_kind(axis: Axis) -> NodeKind:
    """The principal node type of an axis (spec section 2.3)."""
    if axis == Axis.ATTRIBUTE:
        return NodeKind.ATTRIBUTE
    if axis == Axis.NAMESPACE:
        return NodeKind.NAMESPACE
    return NodeKind.ELEMENT


# ----------------------------------------------------------------------
# Axis generators
# ----------------------------------------------------------------------

def _child(node: Node) -> Iterator[Node]:
    yield from node.children


def _descendant(node: Node) -> Iterator[Node]:
    yield from node.iter_descendants()


def _descendant_or_self(node: Node) -> Iterator[Node]:
    yield node
    yield from node.iter_descendants()


def _parent(node: Node) -> Iterator[Node]:
    if node.parent is not None:
        yield node.parent


def _ancestor(node: Node) -> Iterator[Node]:
    current = node.parent
    while current is not None:
        yield current
        current = current.parent


def _ancestor_or_self(node: Node) -> Iterator[Node]:
    yield node
    yield from _ancestor(node)


def _following_sibling(node: Node) -> Iterator[Node]:
    yield from node.iter_following_siblings()


def _preceding_sibling(node: Node) -> Iterator[Node]:
    yield from node.iter_preceding_siblings()


def _following(node: Node) -> Iterator[Node]:
    """Nodes after the context in document order, minus its descendants.

    For attribute and namespace nodes the axis starts with the owner
    element's subtree, because those nodes precede the element's children
    in document order yet have no descendants of their own.
    """
    if not node.is_tree_node():
        owner = node.parent
        if owner is None:
            return
        yield from owner.iter_descendants()
        yield from _following(owner)
        return
    current: Optional[Node] = node
    while current is not None:
        for sibling in current.iter_following_siblings():
            yield sibling
            if sibling.kind == NodeKind.ELEMENT:
                yield from sibling.iter_descendants()
        current = current.parent


def _subtree_reverse(node: Node) -> Iterator[Node]:
    """A subtree (including its root) in reverse document order.

    Reverse document order is exactly the reverse of the pre-order
    sequence; an explicit stack keeps deep documents off the Python
    call stack.
    """
    preorder = [node]
    stack = list(reversed(node.children))
    while stack:
        current = stack.pop()
        preorder.append(current)
        if current.kind == NodeKind.ELEMENT:
            stack.extend(reversed(current.children))
    return reversed(preorder)


def _preceding(node: Node) -> Iterator[Node]:
    """Nodes before the context in reverse document order, minus ancestors."""
    if not node.is_tree_node():
        owner = node.parent
        if owner is not None:
            yield from _preceding(owner)
        return
    current: Optional[Node] = node
    while current is not None:
        for sibling in current.iter_preceding_siblings():
            yield from _subtree_reverse(sibling)
        current = current.parent


def _attribute(node: Node) -> Iterator[Node]:
    yield from node.attributes


def _namespace(node: Node) -> Iterator[Node]:
    """Synthesized namespace nodes for an element context.

    Namespace nodes are created on demand (one per in-scope binding) with
    sort keys placing them between the element and its attributes; the
    element is recorded as their parent, as the spec requires.
    """
    if node.kind != NodeKind.ELEMENT:
        return
    bindings = node.in_scope_namespaces()
    rank = node.sort_key[0]
    for idx, prefix in enumerate(sorted(bindings)):
        ns = Node(NodeKind.NAMESPACE, name=prefix, value=bindings[prefix])
        ns.parent = node
        ns.document = node.document
        ns.sort_key = (rank, 1, idx)
        yield ns


def _self(node: Node) -> Iterator[Node]:
    yield node


_AXIS_FUNCTIONS: Dict[Axis, Callable[[Node], Iterator[Node]]] = {
    Axis.CHILD: _child,
    Axis.DESCENDANT: _descendant,
    Axis.DESCENDANT_OR_SELF: _descendant_or_self,
    Axis.PARENT: _parent,
    Axis.ANCESTOR: _ancestor,
    Axis.ANCESTOR_OR_SELF: _ancestor_or_self,
    Axis.FOLLOWING_SIBLING: _following_sibling,
    Axis.PRECEDING_SIBLING: _preceding_sibling,
    Axis.FOLLOWING: _following,
    Axis.PRECEDING: _preceding,
    Axis.ATTRIBUTE: _attribute,
    Axis.NAMESPACE: _namespace,
    Axis.SELF: _self,
}


def iter_axis(axis: Axis, node: Node) -> Iterator[Node]:
    """Enumerate ``axis`` from ``node`` in axis order."""
    return _AXIS_FUNCTIONS[axis](node)


# ----------------------------------------------------------------------
# Node tests
# ----------------------------------------------------------------------

class NodeTestKind(Enum):
    """Which node test production was used."""

    NAME = "name"            # QName or NCName
    ANY_NAME = "*"           # * (or prefix:*)
    NODE = "node"            # node()
    TEXT = "text"            # text()
    COMMENT = "comment"      # comment()
    PI = "processing-instruction"  # processing-instruction(Literal?)


def make_node_test(
    kind: NodeTestKind,
    name: Optional[str],
    axis: Axis,
    namespaces: Optional[Mapping[str, str]] = None,
) -> Callable[[Node], bool]:
    """Compile a node test into a specialized predicate closure.

    The unnest-map iterator applies its node test to every axis
    candidate; resolving the test kind once (instead of per node) is a
    measurable constant-factor win — one of the paper's "engineering
    details in NQE" (section 6.2).
    """
    if kind == NodeTestKind.NODE:
        return lambda node: True
    if kind == NodeTestKind.TEXT:
        return lambda node: node.kind == NodeKind.TEXT
    if kind == NodeTestKind.COMMENT:
        return lambda node: node.kind == NodeKind.COMMENT
    if kind == NodeTestKind.PI:
        target = name
        if target is None:
            return lambda node: (
                node.kind == NodeKind.PROCESSING_INSTRUCTION
            )
        return lambda node: (
            node.kind == NodeKind.PROCESSING_INSTRUCTION
            and node.name == target
        )
    principal = principal_node_kind(axis)
    if kind == NodeTestKind.ANY_NAME and name is None:
        return lambda node: node.kind == principal
    # Prefixed / namespace-sensitive tests keep the general path through
    # node_test_matches; the plain-name common case gets the fast path.
    if kind == NodeTestKind.NAME and ":" not in (name or ""):
        wanted = name

        def plain_name_test(node: Node) -> bool:
            if node.kind != principal or node.name != wanted:
                return False
            document = node.document
            if document is not None and not getattr(
                document, "has_namespace_declarations", True
            ):
                return True
            return not node.namespace_uri()

        return plain_name_test
    return lambda node: node_test_matches(kind, name, axis, node, namespaces)


def node_test_matches(
    kind: NodeTestKind,
    name: Optional[str],
    axis: Axis,
    node: Node,
    namespaces: Optional[Mapping[str, str]] = None,
) -> bool:
    """Evaluate a node test against ``node`` reached along ``axis``.

    ``name`` is the test's QName (for NAME), the prefix (for a
    ``prefix:*`` ANY_NAME; ``None`` for a bare ``*``), or the PI target
    literal (for PI; ``None`` matches every PI).  ``namespaces`` maps the
    *expression context* prefixes to URIs, per spec section 2.3 — the
    document's own declarations are irrelevant for resolving the test's
    prefix.
    """
    if kind == NodeTestKind.NODE:
        return True
    if kind == NodeTestKind.TEXT:
        return node.kind == NodeKind.TEXT
    if kind == NodeTestKind.COMMENT:
        return node.kind == NodeKind.COMMENT
    if kind == NodeTestKind.PI:
        if node.kind != NodeKind.PROCESSING_INSTRUCTION:
            return False
        return name is None or node.name == name
    principal = principal_node_kind(axis)
    if node.kind != principal:
        return False
    if kind == NodeTestKind.ANY_NAME:
        if name is None:
            return True
        # prefix:* — match any local name in the prefix's namespace.
        uri = (namespaces or {}).get(name, "")
        return node.namespace_uri() == uri and bool(uri)
    # NAME test.
    if ":" in (name or ""):
        prefix, local = name.split(":", 1)  # type: ignore[union-attr]
        uri = (namespaces or {}).get(prefix, "")
        if not uri:
            return False
        return node.local_name == local and node.namespace_uri() == uri
    if axis == Axis.NAMESPACE:
        return node.name == name
    if node.name != name:
        return False
    # In a document without namespace declarations no node has a
    # namespace URI; skip the O(depth) in-scope lookup.
    document = node.document
    if document is not None and not getattr(
        document, "has_namespace_declarations", True
    ):
        return True
    return not node.namespace_uri()
