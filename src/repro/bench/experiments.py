"""Experiment definitions: one entry per paper artifact and ablation.

Sizes.  The paper ran 2 000–80 000-element documents on a 2.8 GHz P4
with a C++ engine; a pure-Python reproduction is ~two orders of magnitude
slower per node visit, and two of the Fig. 5 queries are intrinsically
super-linear.  The default sweeps therefore use proportionally scaled
document sizes — the *shape* of each curve (who wins, how fast each
engine's curve grows, where interpreters blow up) is preserved; set
``REPRO_BENCH_FULL=1`` to run the paper's original sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.improved import TranslationOptions
from repro.workloads.querygen import FIG5_QUERIES, FIG10_QUERIES

#: Default engines compared in every figure (the paper's Fig. 6-9 lines:
#: Natix vs. the two main-memory interpreters).
FIGURE_ENGINES = ("natix", "naive", "memo")


def default_sizes(scale: str = "auto") -> List[Tuple[int, int, int]]:
    """(max_elements, fanout, depth) sweep for the figure experiments."""
    if scale == "full" or (
        scale == "auto" and os.environ.get("REPRO_BENCH_FULL")
    ):
        return [(n, 6, 4) for n in (2000, 4000, 6000, 8000)] + [
            (n, 10, 5) for n in (10000, 20000, 40000, 80000)
        ]
    return [(n, 6, 4) for n in (250, 500, 1000, 2000)]


@dataclass(frozen=True)
class FigureSweep:
    """One runtime-vs-document-size figure (paper Fig. 6-9)."""

    figure: str
    query: str
    description: str
    engines: Sequence[str] = FIGURE_ENGINES
    #: Cap for engines whose complexity explodes on this query, as the
    #: paper's interpreter curves "stop before reaching the end of the
    #: x-axis" when they fail on large documents.
    engine_size_caps: Dict[str, int] = field(default_factory=dict)


FIGURE_SWEEPS: Dict[str, FigureSweep] = {
    "fig6": FigureSweep(
        figure="fig6",
        query=FIG5_QUERIES[0],
        description="Query 1: /xdoc/desc::*/anc::*/desc::*/@id",
        # The dedup-free interpreter multiplies contexts cubically here;
        # cap it like the paper's DNF'd curves.
        engine_size_caps={"naive": 1000},
    ),
    "fig7": FigureSweep(
        figure="fig7",
        query=FIG5_QUERIES[1],
        description="Query 2: /xdoc/desc::*/pre-sib::*/fol::*/@id",
        engine_size_caps={"naive": 500, "memo": 1000, "natix": 2000},
    ),
    "fig8": FigureSweep(
        figure="fig8",
        query=FIG5_QUERIES[2],
        description="Query 3: /xdoc/desc::*/anc::*/anc::*/@id",
        engine_size_caps={"naive": 1000},
    ),
    "fig9": FigureSweep(
        figure="fig9",
        query=FIG5_QUERIES[3],
        description="Query 4: /xdoc/child::*/par::*/desc::*/@id",
    ),
}


@dataclass(frozen=True)
class Fig10Table:
    """The DBLP query table (paper Fig. 10)."""

    queries: Sequence[str]
    #: Publications in the synthetic DBLP document ("full" approximates
    #: the 216 MB dump's root width far better; see dblp.py).
    publications: int
    engines: Sequence[str] = ("naive", "natix")


def fig10_table(scale: str = "auto") -> Fig10Table:
    if scale == "full" or (
        scale == "auto" and os.environ.get("REPRO_BENCH_FULL")
    ):
        return Fig10Table(FIG10_QUERIES, publications=50000)
    return Fig10Table(FIG10_QUERIES, publications=2000)


FIG10_TABLE = fig10_table()


@dataclass(frozen=True)
class Ablation:
    """A design-choice ablation (one per section-4 device)."""

    name: str
    description: str
    query: str
    #: Engine-name -> TranslationOptions (None = interpreter engine).
    variants: Dict[str, Optional[TranslationOptions]]
    document: Tuple[int, int, int] = (500, 6, 4)


ABLATIONS: Dict[str, Ablation] = {
    "dupelim": Ablation(
        name="dupelim",
        description="4.1 pushed duplicate elimination on/off",
        query=FIG5_QUERIES[0],
        variants={
            "push-dupelim": TranslationOptions.improved(),
            "final-dedup-only": TranslationOptions.improved(
                push_dup_elimination=False
            ),
        },
    ),
    "stacked": Ablation(
        name="stacked",
        description="4.2.1 stacked pipeline vs. canonical d-joins",
        query=FIG5_QUERIES[3],
        variants={
            "stacked": TranslationOptions.improved(),
            "d-joins": TranslationOptions.improved(stacked=False),
        },
    ),
    "memox": Ablation(
        name="memox",
        description="4.2.2 MemoX memoization of inner paths on/off",
        # MemoX pays off when a ppd step hands the same context node to a
        # predicate repeatedly: every element's ancestor chain re-visits
        # the same few ancestors (the paper's section 4.2.2 scenario).
        query="//*/ancestor::*[count(descendant::*/following::*) > 10]",
        variants={
            "memox": TranslationOptions.improved(mat_expensive=False),
            "no-memox": TranslationOptions.improved(
                memox=False, mat_expensive=False
            ),
        },
        document=(120, 5, 3),
    ),
    "matmap": Ablation(
        name="matmap",
        description="4.3.2 expensive-clause ordering + χ^mat on/off",
        # MemoX is disabled in both variants so the χ^mat caching effect
        # is isolated (otherwise MemoX absorbs the repeated inner-path
        # evaluations either way).
        query="//*/parent::*[count(descendant::*/descendant::*) > 3"
              " and @id != '0']",
        variants={
            "matmap": TranslationOptions.improved(memox=False),
            "no-matmap": TranslationOptions.improved(
                memox=False, mat_expensive=False
            ),
        },
    ),
    "nvm": Ablation(
        name="nvm",
        description="5.2.2 NVM subscripts vs. tree-walking evaluation",
        query="//*[@id > 100 and @id < 300]",
        variants={
            "nvm": TranslationOptions.improved(subscript_mode="nvm"),
            "interp": TranslationOptions.improved(
                subscript_mode="interp"
            ),
        },
    ),
    "optimizer": Ablation(
        name="optimizer",
        description="§7 outlook: property pass (//-merge, Π^D/Sort pruning)",
        query="//*/@id",
        variants={
            "optimized": TranslationOptions.improved(optimize=True),
            "plain": TranslationOptions.improved(),
        },
        document=(2000, 6, 4),
    ),
    "smartagg": Ablation(
        name="smartagg",
        description="5.2.5 smart aggregation: existential comparison",
        query="//* = 'no-such-text-anywhere' or //*[1] = //*",
        variants={
            "natix": TranslationOptions.improved(),
        },
    ),
}
