"""The evaluation harness reproducing the paper's section 6.

:mod:`repro.bench.engines` — the engine registry (the algebraic engine in
both translation modes plus the interpreter stand-ins for Xalan/xsltproc).
:mod:`repro.bench.experiments` — one definition per paper artifact
(Fig. 6–9 curves, the Fig. 10 table) and per design-choice ablation.
:mod:`repro.bench.runner` — timing and table/series rendering.
"""

from repro.bench.engines import ENGINE_REGISTRY, make_engine
from repro.bench.experiments import (
    ABLATIONS,
    FIGURE_SWEEPS,
    FIG10_TABLE,
    default_sizes,
)
from repro.bench.runner import run_figure_sweep, run_fig10_table

__all__ = [
    "ENGINE_REGISTRY",
    "make_engine",
    "ABLATIONS",
    "FIGURE_SWEEPS",
    "FIG10_TABLE",
    "default_sizes",
    "run_figure_sweep",
    "run_fig10_table",
]
