"""Rendering pytest-benchmark JSON as paper-style tables.

``pytest benchmarks/ --benchmark-only --benchmark-json=run.json`` saves
raw results; this module groups them by the ``figure``/``ablation``
extra-info keys the benchmark files attach and renders the same
series/tables as :mod:`repro.bench.runner`, so CI output can be compared
against EXPERIMENTS.md directly::

    python -m repro.bench.report run.json
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from typing import Dict, List


def load_benchmarks(path: str) -> List[dict]:
    """The benchmark entries of one pytest-benchmark JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return data.get("benchmarks", [])


def group_by(entries: List[dict], key: str) -> Dict[str, List[dict]]:
    """Group entries by an ``extra_info`` key (absent key -> skipped)."""
    groups: Dict[str, List[dict]] = defaultdict(list)
    for entry in entries:
        value = entry.get("extra_info", {}).get(key)
        if value is not None:
            groups[str(value)].append(entry)
    return dict(groups)


def render_figures(entries: List[dict]) -> str:
    """The fig6-fig9 series: engine columns, element-count rows."""
    lines: List[str] = []
    for figure, rows in sorted(group_by(entries, "figure").items()):
        if figure == "fig10":
            continue
        lines.append(f"{figure}")
        table: Dict[int, Dict[str, float]] = defaultdict(dict)
        engines: List[str] = []
        for row in rows:
            info = row["extra_info"]
            engine = info["engine"]
            if engine not in engines:
                engines.append(engine)
            table[int(info["elements"])][engine] = row["stats"]["mean"]
        header = "elements".rjust(10) + "".join(
            engine.rjust(16) for engine in engines
        )
        lines.append(header)
        for elements in sorted(table):
            line = str(elements).rjust(10)
            for engine in engines:
                seconds = table[elements].get(engine)
                cell = "—" if seconds is None else f"{seconds * 1e3:.1f} ms"
                line += cell.rjust(16)
            lines.append(line)
        lines.append("")
    return "\n".join(lines)


def render_fig10(entries: List[dict]) -> str:
    """The DBLP table: query rows, engine columns."""
    rows = group_by(entries, "figure").get("fig10", [])
    if not rows:
        return ""
    table: Dict[str, Dict[str, float]] = defaultdict(dict)
    engines: List[str] = []
    for row in rows:
        info = row["extra_info"]
        engine = info["engine"]
        if engine not in engines:
            engines.append(engine)
        table[info["query"]][engine] = row["stats"]["mean"]
    width = max(len(query) for query in table) + 2
    lines = [
        "fig10",
        "query".ljust(width) + "".join(e.rjust(16) for e in engines),
    ]
    for query, times in table.items():
        line = query.ljust(width)
        for engine in engines:
            seconds = times.get(engine)
            cell = "—" if seconds is None else f"{seconds * 1e3:.1f} ms"
            line += cell.rjust(16)
        lines.append(line)
    return "\n".join(lines)


def render_ablations(entries: List[dict]) -> str:
    lines: List[str] = []
    for name, rows in sorted(group_by(entries, "ablation").items()):
        description = rows[0]["extra_info"].get("description", "")
        lines.append(f"ablation {name}: {description}")
        for row in rows:
            variant = row["extra_info"].get("variant", "?")
            lines.append(
                f"  {variant:<22}{row['stats']['mean'] * 1e3:10.1f} ms"
            )
        lines.append("")
    return "\n".join(lines)


def render_report(path: str) -> str:
    entries = load_benchmarks(path)
    sections = [
        render_figures(entries),
        render_fig10(entries),
        render_ablations(entries),
    ]
    return "\n".join(section for section in sections if section)


def main(argv: List[str]) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.bench.report <benchmark.json>",
              file=sys.stderr)
        return 2
    print(render_report(argv[0]))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
