"""Engine registry for the evaluation harness.

The paper compares the Natix algebraic engine against main-memory XPath
interpreters (Xalan-C, xsltproc).  Here:

* ``natix``            — improved translation, NVM subscripts (the paper's engine),
* ``natix-canonical``  — section-3 canonical translation (ablation),
* ``natix-session``    — improved translation through an
  :class:`~repro.engine.session.XPathEngine` plan cache (whole-query
  reuse; measures the compile-amortization win),
* ``natix-concurrent`` — the session engine's thread-pool path
  (``evaluate_concurrent``); single-query batches here, the full
  closed-loop scaling story lives in ``benchmarks/bench_concurrency.py``,
* ``naive``            — dedup-free main-memory interpreter (the
  xsltproc/Xalan stand-in; see DESIGN.md substitution notes),
* ``memo``             — Gottlob-style memoizing interpreter.

Engines are callables ``engine(query) -> QueryRunner`` where the runner
executes against a context node and returns the result-count (benchmarks
count rather than materialize to keep allocation noise out of the
measurement, like the paper's result-drain).  Runners additionally
expose :meth:`QueryRunner.stats_columns` — plan-cache and per-operator
counters recorded into the benchmark JSON next to the timings.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.baselines.memo import MemoInterpreter
from repro.baselines.naive import NaiveInterpreter
from repro.compiler.improved import TranslationOptions
from repro.compiler.pipeline import XPathCompiler
from repro.dom.node import Node
from repro.engine.session import XPathEngine
from repro.xpath.context import make_context

StatsColumns = Dict[str, object]


class QueryRunner:
    """A prepared query: compile once, run many times."""

    def __init__(
        self,
        run: Callable[[Node], int],
        label: str,
        stats_columns: Optional[Callable[[], StatsColumns]] = None,
    ):
        self._run = run
        self.label = label
        self._stats_columns = stats_columns

    def __call__(self, context_node: Node) -> int:
        return self._run(context_node)

    def stats_columns(self) -> StatsColumns:
        """Cache-hit / operator-count columns for benchmark reports."""
        return dict(self._stats_columns()) if self._stats_columns else {}


def _operator_columns(compiled) -> StatsColumns:
    operators = compiled.operator_stats()
    return {
        "operator_count": len(operators),
        "operator_next_calls": sum(o.next_calls for o in operators),
        "operator_tuples": sum(o.tuples_out for o in operators),
    }


def _compiled_engine(options: TranslationOptions, label: str):
    compiler = XPathCompiler(options)

    def prepare(query: str) -> QueryRunner:
        compiled = compiler.compile(query)

        def run(context_node: Node) -> int:
            result = compiled.evaluate(context_node)
            return len(result) if isinstance(result, list) else 1

        def columns() -> StatsColumns:
            # One ahead-of-time compile, no cache in the loop.
            return {"cache_hits": 0, "cache_misses": 1,
                    **_operator_columns(compiled)}

        return QueryRunner(run, label, columns)

    return prepare


def _session_engine(options: TranslationOptions, label: str):
    engine = XPathEngine(options)

    def prepare(query: str) -> QueryRunner:
        def run(context_node: Node) -> int:
            return engine.count(query, context_node)

        def columns() -> StatsColumns:
            stats = engine.stats()
            extra: StatsColumns = {
                "cache_hits": stats.cache.hits,
                "cache_misses": stats.cache.misses,
                "cache_evictions": stats.cache.evictions,
                "operator_count": len(stats.operators),
                "operator_next_calls": sum(
                    o.next_calls for o in stats.operators
                ),
                "operator_tuples": sum(
                    o.tuples_out for o in stats.operators
                ),
            }
            return extra

        return QueryRunner(run, label, columns)

    return prepare


def _concurrent_engine(options: TranslationOptions, label: str,
                       workers: int = 4):
    engine = XPathEngine(options)

    def prepare(query: str) -> QueryRunner:
        def run(context_node: Node) -> int:
            results = engine.evaluate_concurrent(
                [query], context_node, max_workers=workers
            )
            result = results[0]
            return len(result) if isinstance(result, list) else 1

        def columns() -> StatsColumns:
            stats = engine.stats()
            return {
                "cache_hits": stats.cache.hits,
                "cache_misses": stats.cache.misses,
                "cache_evictions": stats.cache.evictions,
                "cache_shards": stats.cache.shard_count,
                "workers": workers,
                "concurrent_batches": stats.runtime_counters.get(
                    "concurrent_batches", 0
                ),
            }

        return QueryRunner(run, label, columns)

    return prepare


def _interpreter_engine(factory, label: str):
    def prepare(query: str) -> QueryRunner:
        interpreter = factory()

        def run(context_node: Node) -> int:
            result = interpreter.evaluate(query, make_context(context_node))
            return len(result) if isinstance(result, list) else 1

        return QueryRunner(run, label)

    return prepare


ENGINE_REGISTRY: Dict[str, Callable[[str], QueryRunner]] = {
    "natix": _compiled_engine(TranslationOptions.improved(), "natix"),
    "natix-opt": _compiled_engine(
        TranslationOptions.improved(optimize=True), "natix-opt"
    ),
    "natix-canonical": _compiled_engine(
        TranslationOptions.canonical(), "natix-canonical"
    ),
    "natix-session": _session_engine(
        TranslationOptions.improved(), "natix-session"
    ),
    "natix-concurrent": _concurrent_engine(
        TranslationOptions.improved(), "natix-concurrent"
    ),
    "naive": _interpreter_engine(NaiveInterpreter, "naive"),
    "memo": _interpreter_engine(MemoInterpreter, "memo"),
}


def make_engine(
    name: str, options: Optional[TranslationOptions] = None
) -> Callable[[str], QueryRunner]:
    """Look up an engine, or build a custom algebraic one from options."""
    if options is not None:
        return _compiled_engine(options, name)
    try:
        return ENGINE_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of "
            f"{sorted(ENGINE_REGISTRY)}"
        ) from None
