"""Engine registry for the evaluation harness.

The paper compares the Natix algebraic engine against main-memory XPath
interpreters (Xalan-C, xsltproc).  Here:

* ``natix``            — improved translation, NVM subscripts (the paper's engine),
* ``natix-canonical``  — section-3 canonical translation (ablation),
* ``naive``            — dedup-free main-memory interpreter (the
  xsltproc/Xalan stand-in; see DESIGN.md substitution notes),
* ``memo``             — Gottlob-style memoizing interpreter.

Engines are callables ``engine(query) -> QueryRunner`` where the runner
executes against a context node and returns the result-count (benchmarks
count rather than materialize to keep allocation noise out of the
measurement, like the paper's result-drain).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.baselines.memo import MemoInterpreter
from repro.baselines.naive import NaiveInterpreter
from repro.compiler.improved import TranslationOptions
from repro.compiler.pipeline import XPathCompiler
from repro.dom.node import Node
from repro.xpath.context import make_context


class QueryRunner:
    """A prepared query: compile once, run many times."""

    def __init__(self, run: Callable[[Node], int], label: str):
        self._run = run
        self.label = label

    def __call__(self, context_node: Node) -> int:
        return self._run(context_node)


def _compiled_engine(options: TranslationOptions, label: str):
    compiler = XPathCompiler(options)

    def prepare(query: str) -> QueryRunner:
        compiled = compiler.compile(query)

        def run(context_node: Node) -> int:
            result = compiled.evaluate(context_node)
            return len(result) if isinstance(result, list) else 1

        return QueryRunner(run, label)

    return prepare


def _interpreter_engine(factory, label: str):
    def prepare(query: str) -> QueryRunner:
        interpreter = factory()

        def run(context_node: Node) -> int:
            result = interpreter.evaluate(query, make_context(context_node))
            return len(result) if isinstance(result, list) else 1

        return QueryRunner(run, label)

    return prepare


ENGINE_REGISTRY: Dict[str, Callable[[str], QueryRunner]] = {
    "natix": _compiled_engine(TranslationOptions.improved(), "natix"),
    "natix-opt": _compiled_engine(
        TranslationOptions.improved(optimize=True), "natix-opt"
    ),
    "natix-canonical": _compiled_engine(
        TranslationOptions.canonical(), "natix-canonical"
    ),
    "naive": _interpreter_engine(NaiveInterpreter, "naive"),
    "memo": _interpreter_engine(MemoInterpreter, "memo"),
}


def make_engine(
    name: str, options: Optional[TranslationOptions] = None
) -> Callable[[str], QueryRunner]:
    """Look up an engine, or build a custom algebraic one from options."""
    if options is not None:
        return _compiled_engine(options, name)
    try:
        return ENGINE_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of "
            f"{sorted(ENGINE_REGISTRY)}"
        ) from None
