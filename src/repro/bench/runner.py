"""Timing and rendering for the evaluation harness.

``run_figure_sweep`` produces the runtime-vs-size series of one paper
figure; ``run_fig10_table`` the DBLP table.  Both print in the paper's
format (series per engine / a two-engine time table) so a reproduction
run can be read side by side with the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.engines import make_engine
from repro.bench.experiments import Ablation, Fig10Table, FigureSweep
from repro.dom.document import Document
from repro.workloads.dblp import generate_dblp
from repro.workloads.docgen import generate_document

_DOC_CACHE: Dict[Tuple[int, int, int], Document] = {}


def cached_document(size: Tuple[int, int, int]) -> Document:
    """Generated documents are cached per (elements, fanout, depth)."""
    if size not in _DOC_CACHE:
        _DOC_CACHE[size] = generate_document(*size)
    return _DOC_CACHE[size]


_DBLP_CACHE: Dict[int, Document] = {}


def cached_dblp(publications: int) -> Document:
    if publications not in _DBLP_CACHE:
        _DBLP_CACHE[publications] = generate_dblp(publications)
    return _DBLP_CACHE[publications]


def time_once(runner, context_node) -> Tuple[float, int]:
    """(seconds, result count) for one execution."""
    start = time.perf_counter()
    count = runner(context_node)
    return time.perf_counter() - start, count


@dataclass
class SeriesPoint:
    elements: int
    seconds: Optional[float]  # None when capped ("curve stops")
    results: Optional[int]
    #: Plan-cache / operator-count columns (see QueryRunner.stats_columns);
    #: lands in BENCH_*.json so compile-amortization is trackable.
    columns: Dict[str, object] = field(default_factory=dict)


@dataclass
class FigureResult:
    figure: str
    query: str
    series: Dict[str, List[SeriesPoint]]

    def render(self) -> str:
        lines = [f"{self.figure}: {self.query}"]
        header = "elements".rjust(10) + "".join(
            name.rjust(18) for name in self.series
        )
        lines.append(header)
        lengths = {len(points) for points in self.series.values()}
        rows = max(lengths) if lengths else 0
        any_series = next(iter(self.series.values()))
        for index in range(rows):
            row = [str(any_series[index].elements).rjust(10)]
            for points in self.series.values():
                point = points[index]
                if point.seconds is None:
                    row.append("—".rjust(18))
                else:
                    row.append(f"{point.seconds * 1000:.1f} ms".rjust(18))
            lines.append("".join(row))
        return "\n".join(lines)


def run_figure_sweep(
    sweep: FigureSweep,
    sizes: Sequence[Tuple[int, int, int]],
) -> FigureResult:
    """Execute one figure's sweep and return its per-engine series."""
    series: Dict[str, List[SeriesPoint]] = {}
    for engine_name in sweep.engines:
        prepare = make_engine(engine_name)
        runner = prepare(sweep.query)
        cap = sweep.engine_size_caps.get(engine_name)
        points: List[SeriesPoint] = []
        for size in sizes:
            elements = size[0]
            if cap is not None and elements > cap:
                # Mirrors the paper: "the curves sometimes stop before
                # reaching the end of the x-axis".
                points.append(SeriesPoint(elements, None, None))
                continue
            document = cached_document(size)
            seconds, count = time_once(runner, document.root)
            points.append(
                SeriesPoint(
                    elements, seconds, count, runner.stats_columns()
                )
            )
        series[engine_name] = points
    return FigureResult(sweep.figure, sweep.query, series)


@dataclass
class TableRow:
    query: str
    times: Dict[str, float]
    results: int


@dataclass
class TableResult:
    rows: List[TableRow]
    engines: Sequence[str]

    def render(self) -> str:
        width = max(len(r.query) for r in self.rows) + 2
        header = "query".ljust(width) + "".join(
            e.rjust(16) for e in self.engines
        ) + "results".rjust(10)
        lines = [header]
        for row in self.rows:
            line = row.query.ljust(width)
            for engine in self.engines:
                line += f"{row.times[engine] * 1000:.1f} ms".rjust(16)
            line += str(row.results).rjust(10)
            lines.append(line)
        return "\n".join(lines)


def run_fig10_table(table: Fig10Table) -> TableResult:
    """Execute the DBLP table: every query on every engine."""
    document = cached_dblp(table.publications)
    rows: List[TableRow] = []
    for query in table.queries:
        times: Dict[str, float] = {}
        results = 0
        for engine_name in table.engines:
            runner = make_engine(engine_name)(query)
            seconds, results = time_once(runner, document.root)
            times[engine_name] = seconds
        rows.append(TableRow(query, times, results))
    return TableResult(rows, table.engines)


def run_cache_amortization(
    query: str,
    size: Tuple[int, int, int],
    repeats: int = 100,
) -> Dict[str, object]:
    """Cold per-call compilation vs. one session's plan cache.

    Evaluates ``query`` ``repeats`` times the one-shot way (full
    compile every call) and through one :class:`XPathEngine`, and
    returns both wall times plus the session's cache columns — the
    compile-amortization row of BENCH_*.json.
    """
    from repro.api import evaluate
    from repro.engine.session import XPathEngine

    document = cached_document(size)
    node = document.root

    start = time.perf_counter()
    for _ in range(repeats):
        evaluate(query, node)
    cold_seconds = time.perf_counter() - start

    engine = XPathEngine()
    start = time.perf_counter()
    for _ in range(repeats):
        engine.evaluate(query, node)
    session_seconds = time.perf_counter() - start

    stats = engine.stats()
    return {
        "query": query,
        "repeats": repeats,
        "cold_seconds": cold_seconds,
        "session_seconds": session_seconds,
        "speedup": cold_seconds / session_seconds
        if session_seconds
        else float("inf"),
        "cache_hits": stats.cache.hits,
        "cache_misses": stats.cache.misses,
        "operator_next_calls": sum(
            o.next_calls for o in stats.operators
        ),
        "operator_tuples": sum(o.tuples_out for o in stats.operators),
    }


def run_ablation(ablation: Ablation) -> Dict[str, float]:
    """Run one ablation; returns seconds per variant."""
    document = cached_document(ablation.document)
    timings: Dict[str, float] = {}
    for variant, options in ablation.variants.items():
        prepare = (
            make_engine(variant, options)
            if options is not None
            else make_engine(variant)
        )
        runner = prepare(ablation.query)
        seconds, _count = time_once(runner, document.root)
        timings[variant] = seconds
    return timings
