"""Binary encoding primitives for the page store.

Everything in the store is built from two primitives: unsigned LEB128
varints and length-prefixed UTF-8 strings.  Node records use
*biased* ids (``id + 1``) so that "no node" encodes as 0.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import StorageError


def encode_varint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise StorageError(f"cannot encode negative varint {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode a varint at ``offset``; returns (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise StorageError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise StorageError("varint too long")


def encode_string(text: str, out: bytearray) -> None:
    """Append a length-prefixed UTF-8 string."""
    raw = text.encode("utf-8")
    encode_varint(len(raw), out)
    out.extend(raw)


def decode_string(data: bytes, offset: int) -> Tuple[str, int]:
    length, offset = decode_varint(data, offset)
    end = offset + length
    if end > len(data):
        raise StorageError("truncated string")
    return data[offset:end].decode("utf-8"), end


def encode_id_list(ids: List[int], out: bytearray) -> None:
    """Append a delta-encoded monotone id list (children are pre-order)."""
    encode_varint(len(ids), out)
    previous = 0
    for identifier in ids:
        if identifier < previous:
            raise StorageError("id list must be non-decreasing")
        encode_varint(identifier - previous, out)
        previous = identifier


def decode_id_list(data: bytes, offset: int) -> Tuple[List[int], int]:
    count, offset = decode_varint(data, offset)
    ids: List[int] = []
    previous = 0
    for _ in range(count):
        delta, offset = decode_varint(data, offset)
        previous += delta
        ids.append(previous)
    return ids, offset
