"""Lazy node proxies over the page store.

:class:`StoredNode` subclasses the in-memory :class:`~repro.dom.node.Node`
and overrides the structural accessors to fetch through the store on
first use.  Everything above the node protocol — the axes, the physical
algebra, the interpreters — runs unchanged on stored documents; no full
main-memory representation of the document is ever built (children are
materialized per visited node, and the page buffer bounds what is held
in memory at the byte level).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.dom.node import Node, NodeKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.store import StoredDocument


class StoredNode(Node):
    """A node whose structure loads lazily from the page store."""

    __slots__ = ("_store_doc", "_node_id", "_children_loaded",
                 "_child_ids")

    def __init__(
        self,
        store_doc: "StoredDocument",
        node_id: int,
        kind: NodeKind,
        name: Optional[str],
        value: Optional[str],
        parent: Optional[Node],
        child_ids: Sequence[int],
        sort_key: tuple,
    ):
        super().__init__(kind, name=name, value=value)
        self._store_doc = store_doc
        self._node_id = node_id
        self._children_loaded = False
        self._child_ids = tuple(child_ids)
        self.parent = parent
        self.document = store_doc  # duck-typed Document
        self.sort_key = sort_key

    # ------------------------------------------------------------------

    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def children(self) -> Sequence[Node]:
        if not self._children_loaded:
            # Build the full list before publishing, and set the flag
            # last: racing readers either see the finished list or
            # rebuild it from the same singleton proxies (the store's
            # node cache guarantees one proxy per id), so concurrent
            # materialization is idempotent.
            children = [
                self._store_doc.node(child_id, parent=self)
                for child_id in self._child_ids
            ]
            self._children = children
            self._children_loaded = True
        return self._children

    # ``attributes`` are decoded together with the record (they are tiny
    # and always adjacent), and ``string_value``/traversal in the base
    # class go through the lazy ``children`` property, so no further
    # overrides are needed.
