"""Storing documents into page files and opening them again.

File layout::

    header:  magic "NATX", version byte, page_size, node count,
             section lengths (names, id map, directory, data)
    names:   deduplicated element/attribute name table
    id map:  ID attribute value -> element node id
    dir:     per-node (offset, length) into the data region
    data:    node records, read through the buffer manager

Node ids equal pre-order document ranks, so a stored node's id *is* the
first component of its document-order sort key — stored and in-memory
nodes order and hash identically.
"""

from __future__ import annotations

import io
import os
import threading
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.dom.document import Document
from repro.dom.node import Node, NodeKind
from repro.errors import IndexRegionMissing, StorageError
from repro.storage.encoding import (
    decode_id_list,
    decode_string,
    decode_varint,
    encode_id_list,
    encode_string,
    encode_varint,
)
from repro.storage.nodes import StoredNode
from repro.storage.pages import (
    DEFAULT_BUFFER_PAGES,
    PAGE_SIZE,
    BufferManager,
    PageFile,
)

_MAGIC = b"NATX"
_VERSION = 1

_HAS_VALUE = 1


class DocumentStore:
    """Entry points for writing and opening stored documents."""

    @staticmethod
    def write(document: Document, path: Union[str, os.PathLike],
              page_size: int = PAGE_SIZE, indexes: bool = True) -> None:
        """Persist ``document`` to ``path``.

        By default the structural indexes (:mod:`repro.index`) are built
        and appended as an index region; pass ``indexes=False`` for a
        bare v1 store (the on-disk bytes up to the index footer are
        byte-identical either way).
        """
        writer = _Writer(document, page_size)
        blob = writer.serialize()
        with open(path, "wb") as handle:
            handle.write(blob)
            if indexes:
                # Local import: repro.index builds on this module.
                from repro.index.build import build_index_data
                from repro.index.persist import (
                    append_index_blob,
                    serialize_index_blob,
                )

                data = build_index_data(document)
                index_blob = serialize_index_blob(
                    data, writer.fingerprint()
                )
                append_index_blob(handle, len(blob), index_blob)

    @staticmethod
    def open(path: Union[str, os.PathLike],
             buffer_pages: int = DEFAULT_BUFFER_PAGES) -> "StoredDocument":
        """Open a stored document with a bounded page buffer."""
        handle = open(path, "rb")
        try:
            return StoredDocument(handle, buffer_pages)
        except Exception:
            handle.close()
            raise

    @staticmethod
    def build_indexes(path: Union[str, os.PathLike],
                      buffer_pages: int = DEFAULT_BUFFER_PAGES) -> None:
        """Retrofit (or rebuild) indexes onto an existing store file.

        Walks the stored document once through the page buffer, then
        appends a fresh index region — replacing any previous one — in
        place.  The data pages are never rewritten.
        """
        from repro.index.build import build_index_data
        from repro.index.persist import (
            append_index_blob,
            serialize_index_blob,
        )

        with DocumentStore.open(path, buffer_pages) as stored:
            data = build_index_data(stored)
            blob = serialize_index_blob(data, stored.fingerprint)
            store_end = stored.store_end
        with open(path, "r+b") as handle:
            append_index_blob(handle, store_end, blob)


class _Writer:
    """Serializes one document into the store format."""

    def __init__(self, document: Document, page_size: int):
        self.document = document
        self.page_size = page_size
        self.names: List[str] = []
        self._name_index: Dict[str, int] = {}
        self._fingerprint: Optional[bytes] = None

    def _name_id(self, name: Optional[str]) -> int:
        """Biased name index (0 = no name)."""
        if name is None:
            return 0
        index = self._name_index.get(name)
        if index is None:
            index = len(self.names)
            self.names.append(name)
            self._name_index[name] = index
        return index + 1

    def serialize(self) -> bytes:
        nodes = list(self.document.iter_nodes())
        data = bytearray()
        offsets: List[Tuple[int, int]] = []
        for node in nodes:
            start = len(data)
            self._encode_node(node, data)
            offsets.append((start, len(data) - start))

        names_blob = bytearray()
        encode_varint(len(self.names), names_blob)
        for name in self.names:
            encode_string(name, names_blob)

        id_blob = bytearray()
        id_map = self.document._id_map
        encode_varint(len(id_map), id_blob)
        for value, element in sorted(id_map.items()):
            encode_string(value, id_blob)
            encode_varint(element.sort_key[0], id_blob)

        dir_blob = bytearray()
        encode_varint(len(offsets), dir_blob)
        previous = 0
        for offset, length in offsets:
            encode_varint(offset - previous, dir_blob)
            encode_varint(length, dir_blob)
            previous = offset

        header = bytearray()
        header.extend(_MAGIC)
        header.append(_VERSION)
        encode_varint(self.page_size, header)
        encode_varint(len(offsets), header)
        encode_varint(len(names_blob), header)
        encode_varint(len(id_blob), header)
        encode_varint(len(dir_blob), header)
        encode_varint(len(data), header)
        from repro.index.persist import structural_fingerprint

        self._fingerprint = structural_fingerprint(
            bytes(names_blob), bytes(dir_blob), len(offsets), len(data)
        )
        return bytes(header) + bytes(names_blob) + bytes(id_blob) + bytes(
            dir_blob
        ) + bytes(data)

    def fingerprint(self) -> bytes:
        """The structural fingerprint of the blob ``serialize`` built."""
        if self._fingerprint is None:
            raise StorageError("serialize() has not run yet")
        return self._fingerprint

    def _encode_node(self, node: Node, out: bytearray) -> None:
        encode_varint(int(node.kind), out)
        encode_varint(self._name_id(node.name), out)
        flags = _HAS_VALUE if node.value is not None else 0
        out.append(flags)
        if node.value is not None:
            encode_string(node.value, out)
        parent_id = node.parent.sort_key[0] + 1 if node.parent else 0
        encode_varint(parent_id, out)
        encode_id_list([child.sort_key[0] for child in node.children], out)
        encode_varint(len(node.attributes), out)
        for attribute in node.attributes:
            encode_varint(self._name_id(attribute.name), out)
            encode_string(attribute.value or "", out)
        declarations = node.namespace_declarations
        encode_varint(len(declarations), out)
        for prefix in sorted(declarations):
            encode_string(prefix, out)
            encode_string(declarations[prefix], out)


class StoredDocument:
    """A document opened from a page file.

    Implements the pieces of the :class:`~repro.dom.document.Document`
    interface the evaluators use (``root``, ``get_element_by_id``,
    ``node_count``, ``iter_nodes``), backed by lazily decoded node
    proxies and the page buffer.  A ``StoredDocument`` is a first-class
    evaluation target: ``evaluate(query, stored)`` behaves exactly like
    ``evaluate(query, document)`` on the in-memory form (see
    :func:`repro.api.resolve_context_node`).
    """

    def __init__(self, handle: io.BufferedIOBase, buffer_pages: int):
        self._handle = handle
        try:
            self._init(handle, buffer_pages)
        except BaseException:
            # The constructor owns the handle from the first line on:
            # a failure anywhere in here (bad magic, truncated header,
            # index-trailer validation) must not leak the open file —
            # callers constructing a StoredDocument directly have no
            # object to close yet.
            handle.close()
            raise

    def _init(self, handle: io.BufferedIOBase, buffer_pages: int) -> None:
        header = handle.read(5)
        if header[:4] != _MAGIC:
            raise StorageError("not a document store file")
        if header[4] != _VERSION:
            raise StorageError(f"unsupported store version {header[4]}")
        # The variable part of the header is small; read a generous slab.
        slab = handle.read(64)
        self.page_size, at = decode_varint(slab, 0)
        self._node_count, at = decode_varint(slab, at)
        names_len, at = decode_varint(slab, at)
        id_len, at = decode_varint(slab, at)
        dir_len, at = decode_varint(slab, at)
        data_len, at = decode_varint(slab, at)
        header_end = 5 + at

        handle.seek(header_end)
        names_blob = handle.read(names_len)
        id_blob = handle.read(id_len)
        dir_blob = handle.read(dir_len)

        self._names = _decode_names(names_blob)
        self._id_map = _decode_id_map(id_blob)
        self._offsets, self._lengths = _decode_directory(dir_blob)
        if len(self._offsets) != self._node_count:
            raise StorageError("directory does not match node count")

        data_start = header_end + names_len + id_len + dir_len
        page_file = PageFile(handle, data_start, data_len, self.page_size)
        self.buffer = BufferManager(page_file, buffer_pages)
        self._cache: Dict[int, StoredNode] = {}
        # Reentrant: decoding a node may recursively decode its parent.
        self._cache_lock = threading.RLock()
        self.uri: Optional[str] = getattr(handle, "name", None)

        #: Where the v1 store bytes end; any index region starts here.
        self.store_end = data_start + data_len
        # The fingerprint hashes sections this constructor already read,
        # so the index freshness check below costs no extra I/O.
        from repro.index.persist import structural_fingerprint

        self.fingerprint = structural_fingerprint(
            names_blob, dir_blob, self._node_count, data_len
        )
        #: "fresh" (indexes loaded from the catalog), "stale" (an index
        #: region exists but its fingerprint does not match this store's
        #: structure — evaluation falls back to scans), or "none".
        self.index_status = "none"
        self.indexes: Optional["DocumentIndexes"] = None
        self._load_indexes(buffer_pages)

    def _load_indexes(self, buffer_pages: int) -> None:
        try:
            file_end = os.fstat(self._handle.fileno()).st_size
        except (OSError, ValueError, io.UnsupportedOperation):
            self._handle.seek(0, os.SEEK_END)
            file_end = self._handle.tell()
        if file_end <= self.store_end:
            return
        from repro.index.runtime import DocumentIndexes

        try:
            indexes = DocumentIndexes.load(
                self._handle, file_end, self.page_size, buffer_pages
            )
        except IndexRegionMissing:
            # Trailing bytes but no footer magic: not an index region.
            return
        except StorageError:
            # A footer exists but the region cannot be decoded (corrupt
            # trailer, garbage catalog).  The data pages are untouched
            # by index corruption, so the open *succeeds* and
            # evaluation falls back to scans — exactly like a stale
            # region.
            self.index_status = "stale"
            return
        if (indexes.catalog.fingerprint != self.fingerprint
                or indexes.node_count != self._node_count):
            self.index_status = "stale"
            return
        self.indexes = indexes
        self.index_status = "fresh"

    # ------------------------------------------------------------------

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "StoredDocument":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return self._node_count

    @property
    def root(self) -> StoredNode:
        return self.node(0)

    def get_element_by_id(self, value: str) -> Optional[StoredNode]:
        node_id = self._id_map.get(value)
        return self.node(node_id) if node_id is not None else None

    def iter_nodes(self) -> Iterator[Node]:
        yield self.root
        yield from self.root.iter_descendants()

    def node(self, node_id: int,
             parent: Optional[Node] = None) -> StoredNode:
        """The proxy for ``node_id`` (decoded and cached on first use).

        Proxies are singletons per node id — concurrent readers decode
        under the cache lock so two threads can never hold distinct
        proxies for the same stored node (identity matters to duplicate
        elimination and to the lazily linked parent/child structure).
        The lock-free fast path serves already-decoded nodes.
        """
        cached = self._cache.get(node_id)
        if cached is not None:
            return cached
        if node_id < 0 or node_id >= self._node_count:
            raise StorageError(f"node id {node_id} out of range")
        with self._cache_lock:
            cached = self._cache.get(node_id)
            if cached is not None:
                return cached
            record = self.buffer.read_record(
                self._offsets[node_id], self._lengths[node_id]
            )
            node = self._decode_node(node_id, record, parent)
            self._cache[node_id] = node
            return node

    def clear_node_cache(self) -> None:
        """Drop decoded proxies (page buffer stays managed by capacity)."""
        with self._cache_lock:
            self._cache.clear()

    def buffer_stats(self) -> dict:
        """Page-buffer counters as a plain dict (observability surface
        read by ``XPathEngine.stats()`` for page-backed targets).

        The top-level counters describe the *data* page buffer, as they
        always have; ``by_kind`` breaks I/O out per page kind so index
        savings are attributable (index reads never hide data reads).
        """
        stats = self.buffer.stats
        report = {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "cached_pages": self.buffer.cached_pages,
            "capacity": self.buffer.capacity,
        }
        by_kind = {self.buffer.kind: dict(report)}
        if self.indexes is not None:
            by_kind[self.indexes.buffer.kind] = self.indexes.buffer_stats()
        report["by_kind"] = by_kind
        return report

    # ------------------------------------------------------------------

    def _decode_node(self, node_id: int, record: bytes,
                     parent: Optional[Node]) -> StoredNode:
        kind_value, at = decode_varint(record, 0)
        name_id, at = decode_varint(record, at)
        flags = record[at]
        at += 1
        value: Optional[str] = None
        if flags & _HAS_VALUE:
            value, at = decode_string(record, at)
        parent_id, at = decode_varint(record, at)
        child_ids, at = decode_id_list(record, at)
        kind = NodeKind(kind_value)
        name = self._names[name_id - 1] if name_id else None

        if parent is None and parent_id:
            parent = self.node(parent_id - 1)

        node = StoredNode(
            self, node_id, kind, name, value, parent, child_ids,
            (node_id, 0, 0),
        )

        attr_count, at = decode_varint(record, at)
        for index in range(attr_count):
            attr_name_id, at = decode_varint(record, at)
            attr_value, at = decode_string(record, at)
            attribute = Node(
                NodeKind.ATTRIBUTE,
                name=self._names[attr_name_id - 1] if attr_name_id else None,
                value=attr_value,
            )
            attribute.parent = node
            attribute.document = self  # type: ignore[assignment]
            attribute.sort_key = (node_id, 2, index)
            node._attributes.append(attribute)

        ns_count, at = decode_varint(record, at)
        for _ in range(ns_count):
            prefix, at = decode_string(record, at)
            uri, at = decode_string(record, at)
            node._ns_decls[prefix] = uri
        return node


def _decode_names(blob: bytes) -> List[str]:
    count, at = decode_varint(blob, 0)
    names: List[str] = []
    for _ in range(count):
        name, at = decode_string(blob, at)
        names.append(name)
    return names


def _decode_id_map(blob: bytes) -> Dict[str, int]:
    count, at = decode_varint(blob, 0)
    mapping: Dict[str, int] = {}
    for _ in range(count):
        value, at = decode_string(blob, at)
        node_id, at = decode_varint(blob, at)
        mapping[value] = node_id
    return mapping


def _decode_directory(blob: bytes) -> Tuple[List[int], List[int]]:
    count, at = decode_varint(blob, 0)
    offsets: List[int] = []
    lengths: List[int] = []
    previous = 0
    for _ in range(count):
        delta, at = decode_varint(blob, at)
        length, at = decode_varint(blob, at)
        previous += delta
        offsets.append(previous)
        lengths.append(length)
    return offsets, lengths
