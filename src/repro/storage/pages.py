"""The page file and the buffer manager.

The store's data region is an array of fixed-size pages on disk.  All
reads go through the :class:`BufferManager`, which keeps a bounded LRU
cache of page images and counts hits, misses and evictions — the
statistics the storage benchmarks and the scalability tests observe.

Records are addressed by absolute byte offset and length; a record may
span pages (long text nodes), in which case the buffer manager fetches
the covered page range.

Both classes are safe for concurrent readers.  :class:`PageFile` reads
through ``os.pread`` when the handle is a real file (positionless, so
no seek/read race; the read also releases the GIL), falling back to a
lock around seek+read otherwise.  :class:`BufferManager` latches its
LRU table so hit/miss/eviction accounting stays atomic — every
``get_page`` call counts exactly one hit or one miss — while the actual
page fetch on a miss runs *outside* the latch so a slow read never
blocks hits on other pages.
"""

from __future__ import annotations

import io
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import BinaryIO, Optional

from repro.errors import StorageError

#: Default page size in bytes (Natix uses disk-style small pages).
PAGE_SIZE = 8192

#: Default number of pages the buffer manager keeps in memory.
DEFAULT_BUFFER_PAGES = 256


class PageFile:
    """Random-access page I/O over one open file."""

    def __init__(self, handle: BinaryIO, data_start: int, data_length: int,
                 page_size: int = PAGE_SIZE):
        self._handle = handle
        self.data_start = data_start
        self.data_length = data_length
        self.page_size = page_size
        self._seek_lock = threading.Lock()
        try:
            self._fileno: Optional[int] = handle.fileno()
        except (OSError, ValueError, AttributeError,
                io.UnsupportedOperation):
            # In-memory handles (BytesIO) have no descriptor; reads fall
            # back to lock-guarded seek+read.
            self._fileno = None

    @property
    def page_count(self) -> int:
        return -(-self.data_length // self.page_size)

    def read_page(self, page_no: int) -> bytes:
        if page_no < 0 or page_no >= self.page_count:
            raise StorageError(f"page {page_no} out of range")
        offset = self.data_start + page_no * self.page_size
        if self._fileno is not None:
            return os.pread(self._fileno, self.page_size, offset)
        with self._seek_lock:
            self._handle.seek(offset)
            return self._handle.read(self.page_size)


@dataclass
class BufferStats:
    """Counters exposed to tests and benchmarks."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class BufferManager:
    """A bounded LRU cache of page images.

    ``kind`` labels the page kind this buffer serves (``"data"`` for
    node records, ``"index"`` for the index region of the same file) so
    ``stats()`` surfaces can attribute I/O per kind instead of lumping
    everything into one counter set.
    """

    def __init__(self, page_file: PageFile,
                 capacity: int = DEFAULT_BUFFER_PAGES,
                 kind: str = "data"):
        if capacity < 1:
            raise StorageError("buffer capacity must be at least one page")
        self._file = page_file
        self._capacity = capacity
        self.kind = kind
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        self._latch = threading.Lock()
        self.stats = BufferStats()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def cached_pages(self) -> int:
        return len(self._pages)

    def get_page(self, page_no: int) -> bytes:
        with self._latch:
            cached = self._pages.get(page_no)
            if cached is not None:
                self.stats.hits += 1
                self._pages.move_to_end(page_no)
                return cached
            self.stats.misses += 1
        # Fetch outside the latch: pread is thread-safe and releases the
        # GIL, so other readers keep hitting the table meanwhile.  Two
        # racing misses on the same page both count (both really read);
        # the insert below is idempotent, so only one image survives.
        image = self._file.read_page(page_no)
        with self._latch:
            existing = self._pages.get(page_no)
            if existing is not None:
                self._pages.move_to_end(page_no)
                return existing
            self._pages[page_no] = image
            if len(self._pages) > self._capacity:
                self._pages.popitem(last=False)
                self.stats.evictions += 1
            return image

    def read_record(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at data-region ``offset`` (may span pages)."""
        if offset < 0 or offset + length > self._file.data_length:
            raise StorageError("record range out of bounds")
        page_size = self._file.page_size
        first_page = offset // page_size
        last_page = (offset + length - 1) // page_size if length else first_page
        if first_page == last_page:
            page = self.get_page(first_page)
            start = offset - first_page * page_size
            return page[start : start + length]
        parts = []
        remaining = length
        cursor = offset
        for page_no in range(first_page, last_page + 1):
            page = self.get_page(page_no)
            start = cursor - page_no * page_size
            take = min(page_size - start, remaining)
            parts.append(page[start : start + take])
            cursor += take
            remaining -= take
        return b"".join(parts)

    def clear(self) -> None:
        with self._latch:
            self._pages.clear()
