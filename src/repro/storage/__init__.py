"""Page-based persistent document storage (the Natix storage substrate).

The paper's engine evaluates location steps "via NVM commands that
directly access the persistent representation of the documents in the
Natix page buffer ... avoiding an expensive representation change into a
separate main memory format" (section 5.2.2).  This package reproduces
that architecture in Python:

* :mod:`repro.storage.encoding` — varint/record binary encoding,
* :mod:`repro.storage.pages` — the page file and the LRU buffer manager
  with hit/miss statistics,
* :mod:`repro.storage.store` — storing documents into a page file and
  opening them again,
* :mod:`repro.storage.nodes` — lazy node proxies implementing the same
  node protocol as the in-memory DOM, so every engine runs unchanged on
  either representation.
"""

from repro.storage.pages import BufferManager, PageFile, PAGE_SIZE
from repro.storage.store import DocumentStore, StoredDocument

__all__ = [
    "BufferManager",
    "PageFile",
    "PAGE_SIZE",
    "DocumentStore",
    "StoredDocument",
]
