"""Wire protocol of the network serving front end.

One request, one response — but the response is a *stream* of JSON
frames (newline-delimited, carried as HTTP/1.1 chunks), so a large
node-set answer leaves the server page by page instead of as one
materialized body:

``header``
    opens every successful response: the query id, the resolved
    target, the plan kind and the effective page size,
``page``
    at most ``page_size`` result items, in emission order with a
    monotonically increasing ``seq`` — reassembling pages in ``seq``
    order reconstructs the full result,
``footer``
    closes a successful response with page/item totals and the
    server-side elapsed time,
``error``
    replaces the footer when the evaluation failed mid-stream (or the
    whole response when it failed before the first page): a typed
    code, the HTTP-equivalent status, and the engine's exception type
    name — so a client can re-raise the exact
    :mod:`repro.errors` class the in-process API would have raised.

Result items are self-describing dicts.  Nodes travel in the same
canonical shape the differential oracle compares
(:func:`repro.testing.oracle.canonical_value`): ``sort_key`` (the
pre-order rank triple), node ``kind``, ``name`` and the string value —
live node handles cannot cross the wire, exactly as they cannot cross
the collection layer's process boundary
(:class:`repro.collection.NodeRecord`, which adds ``shard``).  Scalars
carry their XPath type; non-finite numbers are spelled ``"NaN"`` /
``"Infinity"`` / ``"-Infinity"`` because JSON has no tokens for them.

The error-code table maps the :mod:`repro.errors` hierarchy onto
HTTP-style classes: governance aborts are the 4xx "slow down" family
(408 deadline, 429 budget), compile-time errors are 400s (the query
itself is wrong), a lost collection shard is a 503 (retryable server
trouble), and anything else in the execution layer is a 500.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro import errors as E
from repro.api import EvalOptions

#: Protocol revision carried in every header frame.
PROTOCOL_VERSION = 1

#: Request modes: ``stream`` pulls pages lazily from the iterator
#: engine; ``full`` materializes through the engine's coalescing
#: ``evaluate`` path (identical concurrent requests share one
#: execution) and pages the finished list.
MODES = ("stream", "full")

#: ``(code, http_status)`` per error class, most specific first — the
#: first ``isinstance`` match wins, so subclasses precede their bases.
ERROR_TABLE: Tuple[Tuple[type, str, int], ...] = (
    (E.QueryTimeoutError, "timeout", 408),
    (E.QueryCancelledError, "cancelled", 408),
    (E.QueryBudgetError, "budget-exceeded", 429),
    (E.ShardFailedError, "shard-failed", 503),
    (E.UnboundVariableError, "bad-query", 400),
    (E.XPathError, "bad-query", 400),
    (E.CodegenError, "bad-query", 400),
    (E.XMLSyntaxError, "bad-document", 400),
    (E.TranslationError, "internal", 500),
    (E.CollectionError, "collection-error", 500),
    (E.StorageError, "storage-error", 500),
    (E.ExecutionError, "execution-error", 500),
    (E.ReproError, "internal", 500),
)

#: Server-side rejection codes (no engine exception behind them).
REJECTION_STATUS: Dict[str, int] = {
    "bad-request": 400,
    "unknown-target": 404,
    "not-found": 404,
    "method-not-allowed": 405,
    "quota-exceeded": 429,
    "queue-full": 429,
    "draining": 503,
    "internal": 500,
}


class ProtocolError(Exception):
    """A request the server rejects before (or instead of) evaluating.

    Carries the typed ``code`` (a :data:`REJECTION_STATUS` key) and the
    HTTP status to answer with; the message is the human-readable
    detail placed in the error frame.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.status = REJECTION_STATUS[code]


def classify_error(error: BaseException) -> Tuple[str, int]:
    """The ``(code, http_status)`` classification of an engine error.

    Exceptions outside the :class:`~repro.errors.ReproError` hierarchy
    classify as ``("crash", 500)`` — a client seeing that code has
    found a server bug, exactly like the differential oracle's
    ``crash`` outcome kind.
    """
    for exc_type, code, status in ERROR_TABLE:
        if isinstance(error, exc_type):
            return code, status
    return "crash", 500


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


@dataclass
class QueryRequest:
    """One decoded query request.

    The body carries the full :class:`~repro.api.EvalOptions` surface
    (variables, namespaces, governance limits, backend modes) plus the
    protocol-level knobs: the named ``target``, the ``page_size`` and
    the ``mode`` (see :data:`MODES`).
    """

    query: str
    target: Optional[str] = None
    mode: str = "stream"
    page_size: Optional[int] = None
    ordered: bool = False
    variables: Dict[str, object] = field(default_factory=dict)
    namespaces: Dict[str, str] = field(default_factory=dict)
    timeout: Optional[float] = None
    max_tuples: Optional[int] = None
    max_bytes: Optional[int] = None
    index: Optional[str] = None
    codegen: Optional[str] = None
    optimizer: Optional[str] = None

    def eval_options(self, *, default_timeout: Optional[float] = None,
                     cancel=None) -> EvalOptions:
        """The request folded into one :class:`~repro.api.EvalOptions`.

        ``default_timeout`` is the server's per-client admission
        deadline, applied when the request does not bring its own —
        this is how the admission quota feeds the governor every
        evaluation runs under.
        """
        timeout = self.timeout if self.timeout is not None else (
            default_timeout
        )
        try:
            return EvalOptions(
                variables=self.variables or None,
                namespaces=self.namespaces or None,
                timeout=timeout,
                max_tuples=self.max_tuples,
                max_bytes=self.max_bytes,
                index=self.index,
                codegen=self.codegen,
                optimizer=self.optimizer,
                cancel=cancel,
            )
        except ValueError as error:
            raise ProtocolError("bad-request", str(error)) from None


def _decode_variables(raw: object) -> Dict[str, object]:
    """JSON variable bindings → XPath values (scalars only).

    Numbers become XPath numbers (floats), booleans and strings map
    directly; the non-finite string spellings round-trip back to
    floats.  Node-set variables cannot travel as JSON and are
    rejected.
    """
    if not isinstance(raw, dict):
        raise ProtocolError("bad-request", "variables must be an object")
    variables: Dict[str, object] = {}
    for name, value in raw.items():
        if isinstance(value, bool):
            variables[name] = value
        elif isinstance(value, (int, float)):
            variables[name] = float(value)
        elif isinstance(value, str):
            variables[name] = _number_from_wire(value, default=value)
        else:
            raise ProtocolError(
                "bad-request",
                f"variable ${name} must be a number, boolean or string "
                f"(node-set variables cannot travel as JSON)",
            )
    return variables


def parse_request(body: bytes) -> QueryRequest:
    """Decode one query-request body, validating every field."""
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(
            "bad-request", f"request body is not valid JSON: {error}"
        ) from None
    if not isinstance(data, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    query = data.get("query")
    if not isinstance(query, str) or not query:
        raise ProtocolError(
            "bad-request", "request needs a non-empty string 'query'"
        )
    unknown = set(data) - {
        "query", "target", "mode", "page_size", "ordered", "variables",
        "namespaces", "timeout", "max_tuples", "max_bytes", "index",
        "codegen", "optimizer",
    }
    if unknown:
        raise ProtocolError(
            "bad-request", f"unknown request field(s) {sorted(unknown)}"
        )
    mode = data.get("mode", "stream")
    if mode not in MODES:
        raise ProtocolError(
            "bad-request", f"mode must be one of {list(MODES)}, got {mode!r}"
        )
    page_size = data.get("page_size")
    if page_size is not None and (
        not isinstance(page_size, int) or isinstance(page_size, bool)
        or page_size < 1
    ):
        raise ProtocolError(
            "bad-request", "page_size must be a positive integer"
        )
    target = data.get("target")
    if target is not None and not isinstance(target, str):
        raise ProtocolError("bad-request", "target must be a string")
    namespaces = data.get("namespaces") or {}
    if not isinstance(namespaces, dict) or not all(
        isinstance(k, str) and isinstance(v, str)
        for k, v in namespaces.items()
    ):
        raise ProtocolError(
            "bad-request", "namespaces must map prefixes to URI strings"
        )

    def _number(key: str, *, integral: bool) -> Optional[float]:
        value = data.get(key)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError(
                "bad-request", f"{key} must be a positive number"
            )
        if value <= 0:
            raise ProtocolError(
                "bad-request", f"{key} must be a positive number"
            )
        return int(value) if integral else float(value)

    def _mode_knob(key: str, allowed) -> Optional[str]:
        value = data.get(key)
        if value is None:
            return None
        if value not in allowed:
            raise ProtocolError(
                "bad-request",
                f"{key} must be one of {list(allowed)}, got {value!r}",
            )
        return value

    return QueryRequest(
        query=query,
        target=target,
        mode=mode,
        page_size=page_size,
        ordered=bool(data.get("ordered", False)),
        variables=_decode_variables(data.get("variables") or {}),
        namespaces=dict(namespaces),
        timeout=_number("timeout", integral=False),
        max_tuples=_number("max_tuples", integral=True),
        max_bytes=_number("max_bytes", integral=True),
        index=_mode_knob("index", ("auto", "off", "force")),
        codegen=_mode_knob("codegen", ("auto", "off", "force")),
        optimizer=_mode_knob("optimizer", ("heuristic", "cost")),
    )


# ----------------------------------------------------------------------
# Result items
# ----------------------------------------------------------------------


def _number_to_wire(value: float) -> object:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    return value


def _number_from_wire(value: object, default: object = None) -> object:
    if value == "NaN":
        return float("nan")
    if value == "Infinity":
        return float("inf")
    if value == "-Infinity":
        return float("-inf")
    return value if default is None else default


def encode_item(value: object) -> dict:
    """One result item (a node, a collection record, or a scalar)."""
    sort_key = getattr(value, "sort_key", None)
    if sort_key is not None:
        item = {
            "type": "node",
            "sort_key": list(sort_key),
            "kind": _node_kind(value),
            "name": getattr(value, "name", None) or "",
            "value": _string_value(value),
        }
        shard = getattr(value, "shard", None)
        if shard is not None:
            item["shard"] = shard
        return item
    if isinstance(value, bool):
        return {"type": "boolean", "value": value}
    if isinstance(value, float):
        return {"type": "number", "value": _number_to_wire(value)}
    return {"type": "string", "value": str(value)}


def _node_kind(node: object) -> int:
    kind = getattr(node, "kind", 0)
    return getattr(kind, "value", kind)


def _string_value(node: object) -> str:
    string_value = getattr(node, "string_value", "")
    if callable(string_value):
        return string_value()
    return string_value


def decode_scalar(item: Mapping[str, object]) -> object:
    """A scalar item back to its Python value (client side)."""
    value = item.get("value")
    if item.get("type") == "number":
        decoded = _number_from_wire(value)
        return float(decoded) if isinstance(decoded, (int, float)) else (
            decoded
        )
    return value


def canonical_items(items: List[Mapping[str, object]]) -> object:
    """Reassembled page items → the oracle's canonical value form.

    Mirrors :func:`repro.testing.oracle.canonical_value` exactly, so a
    loopback HTTP response can be compared against any in-process
    route: node items sort into the same ``(sort_key, kind, name,
    string_value)`` tuples, scalars carry type tags, NaN normalizes.
    """
    if items and items[0].get("type") == "node":
        return (
            "node-set",
            tuple(
                sorted(
                    (
                        tuple(item["sort_key"]),
                        item["kind"],
                        item["name"],
                        item["value"],
                    )
                    for item in items
                )
            ),
        )
    if not items:
        return ("node-set", ())
    item = items[0]
    kind = item.get("type")
    value = decode_scalar(item)
    if kind == "number":
        if isinstance(value, float) and math.isnan(value):
            return ("number", "NaN")
        return ("number", value)
    return (kind, value)


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------


def header_frame(qid: int, *, target: str, kind: str,
                 page_size: int, mode: str) -> dict:
    return {
        "frame": "header",
        "protocol": PROTOCOL_VERSION,
        "qid": qid,
        "target": target,
        "kind": kind,
        "page_size": page_size,
        "mode": mode,
    }


def page_frame(qid: int, seq: int, items: List[dict]) -> dict:
    return {"frame": "page", "qid": qid, "seq": seq, "items": items}


def footer_frame(qid: int, *, pages: int, items: int,
                 elapsed_ms: float) -> dict:
    return {
        "frame": "footer",
        "qid": qid,
        "pages": pages,
        "items": items,
        "elapsed_ms": round(elapsed_ms, 3),
    }


def error_frame(qid: Optional[int], code: str, status: int,
                error: str, message: str) -> dict:
    frame = {
        "frame": "error",
        "code": code,
        "status": status,
        "error": error,
        "message": message,
    }
    if qid is not None:
        frame["qid"] = qid
    return frame


def error_frame_for(qid: Optional[int],
                    error: BaseException) -> Tuple[dict, int]:
    """The error frame (and status) for an engine exception."""
    if isinstance(error, ProtocolError):
        frame = error_frame(
            qid, error.code, error.status, "ProtocolError", str(error)
        )
        return frame, error.status
    code, status = classify_error(error)
    frame = error_frame(
        qid, code, status, type(error).__name__, str(error)
    )
    return frame, status


def encode_frame(frame: Mapping[str, object]) -> bytes:
    """One frame as a newline-terminated JSON line."""
    return (json.dumps(frame, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )
