"""Standalone entry point: ``python -m repro.server``.

Examples::

    python -m repro.server --store catalog=catalog.natix
    python -m repro.server --document books=books.xml --port 8080
    python -m repro.server --collection corpus=corpus.coll \\
        --default-target corpus --page-size 128
    python -m repro.server --version

Targets are ``NAME=PATH`` pairs (a bare ``PATH`` takes its stem as the
name); at least one is required.  The process serves until SIGINT /
SIGTERM, then drains gracefully under ``--drain-grace``.

Exit codes follow the package convention (see ``docs/api.md``): 0 on a
clean shutdown, 1 when a target fails to open or the server cannot
start, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
from contextlib import ExitStack
from pathlib import Path
from typing import List, Optional, Tuple

from repro import __version__, open_collection, open_store, parse_document
from repro.engine.session import XPathEngine
from repro.errors import ReproError
from repro.server.server import ServerConfig, XPathServer


def _parse_target(spec: str) -> Tuple[str, str]:
    """``NAME=PATH`` (or bare ``PATH`` — the stem names it)."""
    name, sep, path = spec.partition("=")
    if sep:
        if not name:
            raise argparse.ArgumentTypeError(
                f"empty target name in {spec!r}"
            )
        return name, path
    return Path(spec).stem, spec


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Streaming HTTP/JSON front end over the XPath engine",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {__version__}",
    )
    parser.add_argument(
        "--store", action="append", default=[], metavar="NAME=PATH",
        type=_parse_target,
        help="serve a stored document (page file); repeatable",
    )
    parser.add_argument(
        "--document", action="append", default=[], metavar="NAME=PATH",
        type=_parse_target,
        help="parse an XML file and serve it in memory; repeatable",
    )
    parser.add_argument(
        "--collection", action="append", default=[],
        metavar="NAME=DIR", type=_parse_target,
        help="serve a sharded collection directory; repeatable",
    )
    parser.add_argument(
        "--default-target", metavar="NAME",
        help="target for requests that name none (implied when only "
             "one target is configured)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8040,
        help="listen port (default: 8040; 0 lets the kernel pick)",
    )
    parser.add_argument(
        "--page-size", type=int, default=None, metavar="N",
        help="default result items per page frame",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="evaluation threads (default: engine default)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="per-client admission quota",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=None, metavar="N",
        help="server-wide executor queue bound",
    )
    parser.add_argument(
        "--default-timeout", type=float, default=None, metavar="SECONDS",
        help="deadline applied to requests that bring none "
             "(default: 30; 0 disables)",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=None, metavar="SECONDS",
        help="graceful-shutdown drain budget (default: 10)",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="reap keep-alive connections idle this long "
             "(default: 60; 0 disables)",
    )
    parser.add_argument(
        "--index", choices=("auto", "off", "force"), default="auto",
        help="engine index-routing mode (default: auto)",
    )
    parser.add_argument(
        "--codegen", choices=("auto", "off", "force"), default="off",
        help="engine codegen mode for mode=full requests (default: off)",
    )
    parser.add_argument(
        "--optimizer", choices=("heuristic", "cost"),
        default="heuristic",
        help="engine plan-choice mode (default: heuristic)",
    )
    arguments = parser.parse_args(argv)

    specs = arguments.store + arguments.document + arguments.collection
    if not specs:
        parser.error(
            "at least one --store/--document/--collection target is "
            "required"
        )
    names = [name for name, _path in specs]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        parser.error(f"duplicate target name(s): {sorted(duplicates)}")
    if arguments.default_target and (
        arguments.default_target not in names
    ):
        parser.error(
            f"--default-target {arguments.default_target!r} is not "
            "among the configured targets"
        )

    config_fields = {}
    if arguments.page_size is not None:
        config_fields["page_size"] = arguments.page_size
    if arguments.workers is not None:
        config_fields["workers"] = arguments.workers
    if arguments.max_inflight is not None:
        config_fields["max_inflight"] = arguments.max_inflight
    if arguments.queue_depth is not None:
        config_fields["queue_depth"] = arguments.queue_depth
    if arguments.default_timeout is not None:
        config_fields["default_timeout"] = (
            arguments.default_timeout or None
        )
    if arguments.drain_grace is not None:
        config_fields["drain_grace"] = arguments.drain_grace
    if arguments.idle_timeout is not None:
        config_fields["idle_timeout"] = arguments.idle_timeout or None

    try:
        config = ServerConfig(
            host=arguments.host, port=arguments.port, **config_fields
        )
    except ValueError as error:
        parser.error(str(error))

    try:
        with ExitStack() as stack:
            targets = {}
            for name, path in arguments.store:
                targets[name] = stack.enter_context(open_store(path))
            for name, path in arguments.document:
                with open(path, "r", encoding="utf-8") as handle:
                    targets[name] = parse_document(handle.read())
            for name, path in arguments.collection:
                targets[name] = stack.enter_context(
                    open_collection(path, index=arguments.index,
                                    optimizer=arguments.optimizer)
                )
            engine = XPathEngine(
                index=arguments.index,
                codegen=arguments.codegen,
                optimizer=arguments.optimizer,
            )
            server = XPathServer(
                targets, engine=engine, config=config,
                default_target=arguments.default_target,
            )
            return asyncio.run(_serve(server))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:  # bind failure, unreadable target file
        print(f"error: {error}", file=sys.stderr)
        return 1


async def _serve(server: XPathServer) -> int:
    await server.start()
    loop = asyncio.get_running_loop()
    stopping = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stopping.set)
        except NotImplementedError:  # non-Unix event loops
            pass
    print(
        f"serving {sorted(server.targets)} on "
        f"http://{server.config.host}:{server.port} "
        f"(pid {os.getpid()})",
        file=sys.stderr,
    )
    serve_task = asyncio.ensure_future(server.serve_forever())
    await stopping.wait()
    print("draining...", file=sys.stderr)
    await server.shutdown()
    serve_task.cancel()
    try:
        await serve_task
    except asyncio.CancelledError:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
