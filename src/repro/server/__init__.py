"""The network serving front end: streaming HTTP/JSON over the engine.

See ``docs/server.md`` for the protocol, and ``python -m repro.server
--help`` for the standalone entry point.
"""

from repro.server.admission import AdmissionController
from repro.server.client import QueryResult, ServerClient
from repro.server.protocol import (
    ERROR_TABLE,
    MODES,
    PROTOCOL_VERSION,
    REJECTION_STATUS,
    ProtocolError,
    QueryRequest,
    canonical_items,
    classify_error,
    encode_item,
    parse_request,
)
from repro.server.server import (
    ServerConfig,
    ServerHandle,
    XPathServer,
    start_in_thread,
)

__all__ = [
    "AdmissionController",
    "ERROR_TABLE",
    "MODES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryRequest",
    "QueryResult",
    "REJECTION_STATUS",
    "ServerClient",
    "ServerConfig",
    "ServerHandle",
    "XPathServer",
    "canonical_items",
    "classify_error",
    "encode_item",
    "parse_request",
    "start_in_thread",
]
