"""The asyncio serving front end over the XPath engine.

One :class:`XPathServer` owns one :class:`~repro.engine.session.XPathEngine`
(shared plan cache, singleflight, governance counters) and a registry of
named evaluation *targets* — parsed documents, page-backed stores, or
sharded :class:`~repro.collection.Collection`\\ s.  Clients speak the
NDJSON frame protocol of :mod:`repro.server.protocol` over plain
HTTP/1.1 (stdlib only, no framework):

* ``POST /xpath`` — evaluate a query; the response streams back as
  chunked ``header`` / ``page`` / ``footer`` frames,
* ``GET /stats`` — the full engine + server counter snapshot,
* ``GET /healthz`` — liveness (503 while draining),
* ``GET /version`` — package and protocol versions.

Concurrency model
-----------------

Connection handling and HTTP parsing live on the event loop; every
admitted query is dispatched to a dedicated thread-pool task.  For
streaming responses that *one* executor task owns the whole evaluation:
it pulls pages lazily from :meth:`XPathEngine.evaluate_stream` and
pushes them into a small bounded buffer that the event loop drains into
chunks.  The bound is the backpressure: when the client reads slowly
the buffer fills, the producer blocks on the semaphore, and the
iterator tree underneath stops advancing — a huge ``//item`` answer
never exists in memory beyond ``buffer_pages × page_size`` items.
Because the task runs start-to-finish on one executor thread, the
engine's thread-confined plan instances are never interleaved between
queries.

``mode: "full"`` requests go through :meth:`XPathEngine.evaluate`
instead — materialized, but coalesced by the engine's singleflight, so
a thundering herd of identical requests executes once.  Streams are
deliberately *not* coalesced: each consumer paces its own iterator.

Every query runs under a per-request
:class:`~repro.engine.governor.CancelToken`.  A client that disconnects
mid-stream trips it (the evaluation aborts at the next governor check
instead of running to completion for nobody), and graceful shutdown
trips every active token once the drain grace expires.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set

from repro import __version__
from repro.collection import Collection
from repro.engine.governor import CancelToken
from repro.engine.session import (
    DEFAULT_MAX_WORKERS,
    DEFAULT_PAGE_SIZE,
    XPathEngine,
)
from repro.server.admission import AdmissionController
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    QueryRequest,
    encode_frame,
    encode_item,
    error_frame_for,
    footer_frame,
    header_frame,
    page_frame,
    parse_request,
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`XPathServer`."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 — let the kernel pick (tests, benchmarks)
    page_size: int = DEFAULT_PAGE_SIZE  #: default result page size
    max_page_size: int = 4096  #: cap on per-request ``page_size``
    workers: int = DEFAULT_MAX_WORKERS  #: evaluation threads
    max_inflight: int = 8  #: per-client admission quota
    queue_depth: int = 16  #: server-wide executor queue bound
    default_timeout: Optional[float] = 30.0  #: admission deadline (s)
    drain_grace: float = 10.0  #: shutdown drain budget (s)
    buffer_pages: int = 4  #: stream backpressure bound, in pages
    max_body_bytes: int = 1 << 20  #: request body cap
    idle_timeout: Optional[float] = 60.0  #: idle keep-alive reap (s)

    def __post_init__(self):
        if self.page_size < 1 or self.max_page_size < self.page_size:
            raise ValueError(
                "need 1 <= page_size <= max_page_size, got "
                f"{self.page_size}/{self.max_page_size}"
            )
        if self.buffer_pages < 1:
            raise ValueError("buffer_pages must be at least 1")
        if self.drain_grace < 0:
            raise ValueError("drain_grace must not be negative")
        if self.idle_timeout is not None and self.idle_timeout <= 0:
            raise ValueError(
                "idle_timeout must be positive (or None to disable)"
            )


class _StreamAborted(Exception):
    """Producer-side signal: the consumer is gone, stop evaluating."""


class _PageBuffer:
    """The bounded thread → event-loop page conduit of one stream.

    The producer (executor thread) blocks in :meth:`put_page` once
    ``capacity`` pages are queued but unconsumed; the consumer (event
    loop) releases one slot per page it takes.  :meth:`abort` unwedges
    a blocked producer when the consumer bails out early — it signals
    the producer's condition variable directly, so a producer parked on
    a full buffer sees :class:`_StreamAborted` within the wakeup
    latency of the condition (microseconds), not at the next tick of a
    polling loop.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, capacity: int):
        self._loop = loop
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._lock = threading.Lock()
        self._free = threading.Condition(self._lock)
        self._slots = capacity
        self._aborted = False

    def put_page(self, items: List[dict]) -> None:
        with self._free:
            while self._slots <= 0 and not self._aborted:
                self._free.wait()
            if self._aborted:
                raise _StreamAborted()
            self._slots -= 1
        self._send(("page", items))

    def put_header(self, kind: str) -> None:
        self._send(("header", kind))

    def finish(self, error: Optional[BaseException]) -> None:
        self._send(("error", error) if error is not None else ("done", None))

    def _send(self, event) -> None:
        try:
            self._loop.call_soon_threadsafe(self._queue.put_nowait, event)
        except RuntimeError:  # the loop already closed under shutdown
            raise _StreamAborted() from None

    async def get(self):
        event = await self._queue.get()
        if event[0] == "page":
            with self._free:
                self._slots += 1
                self._free.notify()
        return event

    def abort(self) -> None:
        with self._free:
            self._aborted = True
            self._free.notify_all()


@dataclass
class _HttpRequest:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes


class _BadRequestLine(Exception):
    """The bytes on the wire are not an HTTP/1.1 request."""


class XPathServer:
    """One engine, many named targets, served over loopback HTTP."""

    def __init__(
        self,
        targets: Mapping[str, object],
        *,
        engine: Optional[XPathEngine] = None,
        config: Optional[ServerConfig] = None,
        default_target: Optional[str] = None,
    ):
        if not targets:
            raise ValueError("a server needs at least one target")
        self.config = config or ServerConfig()
        self.engine = engine or XPathEngine()
        self.targets: Dict[str, object] = dict(targets)
        if default_target is None and len(self.targets) == 1:
            default_target = next(iter(self.targets))
        if default_target is not None and default_target not in (
            self.targets
        ):
            raise ValueError(
                f"default_target {default_target!r} is not a target"
            )
        self.default_target = default_target
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="xpath-serve",
        )
        self._admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            queue_depth=self.config.queue_depth,
            workers=self.config.workers,
        )
        self._counters: Counter = Counter(
            requests=0, queries=0, queries_ok=0, queries_failed=0,
            rejected_draining=0, pages_sent=0, items_sent=0,
            connections_total=0, connections_reaped=0,
        )
        self._lock = threading.Lock()
        self._qids = itertools.count(1)
        #: writer -> last-activity loop time, or None while a request
        #: is being served (busy connections are never reaped).
        self._connections: Dict[asyncio.StreamWriter, Optional[float]] = {}
        self._active_cancels: Set[CancelToken] = set()
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._reaper: Optional[asyncio.Task] = None
        self._started_at = time.time()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if self.config.idle_timeout is not None:
            self._reaper = asyncio.get_running_loop().create_task(
                self._reap_idle_connections()
            )

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def shutdown(self, drain: Optional[float] = None) -> None:
        """Drain in-flight queries, then stop accepting and close.

        While draining, the listener stays open and every new query is
        answered with a clean ``draining`` (503) frame — load balancers
        and retrying clients see an orderly refusal, not a connection
        reset.  Queries still in flight get ``drain`` seconds
        (default: the configured ``drain_grace``) to finish; stragglers
        have their cancel tokens tripped and abort with the typed
        governance error at the next governor check.
        """
        if self._draining:
            return
        self._draining = True
        loop = asyncio.get_running_loop()
        grace = self.config.drain_grace if drain is None else drain
        deadline = loop.time() + grace
        while self._admission.total_inflight and loop.time() < deadline:
            await asyncio.sleep(0.02)
        if self._admission.total_inflight:
            with self._lock:
                tokens = list(self._active_cancels)
            for token in tokens:
                token.cancel("server shutting down")
            hard = loop.time() + max(grace, 5.0)
            while self._admission.total_inflight and loop.time() < hard:
                await asyncio.sleep(0.02)
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        with self._lock:
            writers = list(self._connections)
        for writer in writers:
            writer.close()
        await asyncio.sleep(0)  # let handlers observe their closed pipes
        self._executor.shutdown(wait=True)

    # -- observability -------------------------------------------------

    def stats(self) -> dict:
        """The JSON-safe ``/stats`` payload: server + engine."""
        with self._lock:
            counters = dict(self._counters)
            connections = len(self._connections)
        return {
            "server": {
                "version": __version__,
                "protocol": PROTOCOL_VERSION,
                "uptime_seconds": round(
                    time.time() - self._started_at, 3
                ),
                "draining": self._draining,
                "connections": connections,
                "page_size": self.config.page_size,
                "counters": counters,
                "admission": self._admission.snapshot(),
                "targets": {
                    name: (
                        "collection"
                        if isinstance(target, Collection) else "document"
                    )
                    for name, target in self.targets.items()
                },
            },
            "engine": self.engine.stats().to_dict(),
        }

    def _count(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                self._counters[name] += delta

    # -- connection handling -------------------------------------------

    async def _reap_idle_connections(self) -> None:
        """Close keep-alive connections idle beyond ``idle_timeout``.

        A client that opens a connection and goes silent would
        otherwise hold its fd forever (and, while draining, delay
        shutdown); the reaper closes such connections — their blocked
        ``readline`` sees EOF and the handler exits — and counts each
        under ``connections_reaped``.  Connections mid-request (marked
        busy) are never reaped, however long their query streams.
        """
        loop = asyncio.get_running_loop()
        timeout = self.config.idle_timeout
        interval = min(max(timeout / 4.0, 0.05), 1.0)
        while True:
            await asyncio.sleep(interval)
            now = loop.time()
            with self._lock:
                stale = [
                    conn for conn, last_active in self._connections.items()
                    if last_active is not None
                    and now - last_active > timeout
                ]
                for conn in stale:
                    self._connections.pop(conn, None)
                    self._counters["connections_reaped"] += 1
            for conn in stale:
                conn.close()

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        loop = asyncio.get_running_loop()
        with self._lock:
            self._connections[writer] = loop.time()
            self._counters["connections_total"] += 1
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                self._count(requests=1)
                with self._lock:
                    if writer in self._connections:
                        self._connections[writer] = None  # busy
                keep_alive = await self._dispatch(request, writer)
                with self._lock:
                    if writer in self._connections:
                        self._connections[writer] = loop.time()
                if not keep_alive:
                    break
        except _BadRequestLine as error:
            try:
                frame, status = error_frame_for(
                    None, ProtocolError("bad-request", str(error))
                )
                await self._send(
                    writer,
                    self._json_response(status, frame, keep_alive=False),
                )
            except (ConnectionError, OSError):
                pass
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ValueError,  # readline() overran the stream limit
        ):
            pass
        finally:
            with self._lock:
                self._connections.pop(writer, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[_HttpRequest]:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequestLine(request_line[:80])
        method, path, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
            if len(headers) > 128:
                raise _BadRequestLine("too many headers")
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _BadRequestLine("bad content-length") from None
        if length < 0 or length > self.config.max_body_bytes:
            raise _BadRequestLine(f"content-length {length}")
        body = await reader.readexactly(length) if length else b""
        return _HttpRequest(method, path.split("?", 1)[0], headers, body)

    # -- responses -----------------------------------------------------

    @staticmethod
    def _json_response(status: int, payload: dict,
                       *, keep_alive: bool = True) -> bytes:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        return head.encode("latin-1") + body

    @staticmethod
    def _chunk(data: bytes) -> bytes:
        return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"

    async def _send(self, writer: asyncio.StreamWriter,
                    data: bytes) -> None:
        writer.write(data)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _dispatch(self, request: _HttpRequest,
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; the return value is keep-alive."""
        if request.path == "/healthz":
            if request.method != "GET":
                return await self._reject(
                    writer, "method-not-allowed", "use GET /healthz"
                )
            status = 503 if self._draining else 200
            payload = {
                "status": "draining" if self._draining else "ok",
                "inflight": self._admission.total_inflight,
            }
            await self._send(
                writer, self._json_response(status, payload)
            )
            return True
        if request.path == "/stats":
            if request.method != "GET":
                return await self._reject(
                    writer, "method-not-allowed", "use GET /stats"
                )
            await self._send(
                writer, self._json_response(200, self.stats())
            )
            return True
        if request.path == "/version":
            if request.method != "GET":
                return await self._reject(
                    writer, "method-not-allowed", "use GET /version"
                )
            payload = {"version": __version__,
                       "protocol": PROTOCOL_VERSION}
            await self._send(writer, self._json_response(200, payload))
            return True
        if request.path == "/xpath":
            if request.method != "POST":
                return await self._reject(
                    writer, "method-not-allowed", "use POST /xpath"
                )
            return await self._handle_query(request, writer)
        return await self._reject(
            writer, "not-found", f"no route {request.path!r}"
        )

    async def _reject(self, writer: asyncio.StreamWriter, code: str,
                      message: str, *, qid: Optional[int] = None) -> bool:
        frame, status = error_frame_for(qid, ProtocolError(code, message))
        await self._send(writer, self._json_response(status, frame))
        return True

    # -- the query path ------------------------------------------------

    def _resolve_target(self, request: QueryRequest):
        name = request.target or self.default_target
        if name is None:
            raise ProtocolError(
                "bad-request",
                "this server has several targets; the request must "
                f"name one of {sorted(self.targets)}",
            )
        try:
            return name, self.targets[name]
        except KeyError:
            raise ProtocolError(
                "unknown-target",
                f"no target {name!r} (have {sorted(self.targets)})",
            ) from None

    async def _handle_query(self, http: _HttpRequest,
                            writer: asyncio.StreamWriter) -> bool:
        qid = next(self._qids)
        self._count(queries=1)
        if self._draining:
            self._count(rejected_draining=1)
            return await self._reject(
                writer, "draining", "server is shutting down", qid=qid
            )
        try:
            request = parse_request(http.body)
            name, target = self._resolve_target(request)
        except ProtocolError as error:
            self._count(queries_failed=1)
            frame, status = error_frame_for(qid, error)
            await self._send(writer, self._json_response(status, frame))
            return True

        client = http.headers.get("x-client-id")
        if not client:
            peer = writer.get_extra_info("peername")
            client = peer[0] if peer else "unknown"
        try:
            self._admission.admit(client)
        except ProtocolError as error:
            self._count(queries_failed=1)
            frame, status = error_frame_for(qid, error)
            await self._send(writer, self._json_response(status, frame))
            return True

        cancel = CancelToken()
        with self._lock:
            self._active_cancels.add(cancel)
        try:
            return await self._run_query(
                qid, request, name, target, cancel, writer
            )
        finally:
            with self._lock:
                self._active_cancels.discard(cancel)
            self._admission.release(client)

    async def _run_query(self, qid: int, request: QueryRequest,
                         name: str, target, cancel: CancelToken,
                         writer: asyncio.StreamWriter) -> bool:
        loop = asyncio.get_running_loop()
        page_size = min(
            request.page_size or self.config.page_size,
            self.config.max_page_size,
        )
        buffer = _PageBuffer(loop, self.config.buffer_pages)
        try:
            eval_options = request.eval_options(
                default_timeout=self.config.default_timeout,
                cancel=cancel,
            )
        except ProtocolError as error:
            self._count(queries_failed=1)
            frame, status = error_frame_for(qid, error)
            await self._send(writer, self._json_response(status, frame))
            return True

        started = time.perf_counter()
        producer = loop.run_in_executor(
            self._executor,
            self._produce, request, target, eval_options, page_size,
            buffer,
        )
        streaming = False
        keep_alive = True
        pages = 0
        items = 0
        try:
            while True:
                event, payload = await buffer.get()
                if event == "header":
                    await self._send(
                        writer,
                        (
                            "HTTP/1.1 200 OK\r\n"
                            "Content-Type: application/x-ndjson\r\n"
                            "Transfer-Encoding: chunked\r\n"
                            "Connection: keep-alive\r\n"
                            "\r\n"
                        ).encode("latin-1"),
                    )
                    frame = header_frame(
                        qid, target=name, kind=payload,
                        page_size=page_size, mode=request.mode,
                    )
                    await self._send(
                        writer, self._chunk(encode_frame(frame))
                    )
                    streaming = True
                elif event == "page":
                    frame = page_frame(qid, pages, payload)
                    await self._send(
                        writer, self._chunk(encode_frame(frame))
                    )
                    pages += 1
                    items += len(payload)
                elif event == "done":
                    elapsed_ms = (time.perf_counter() - started) * 1e3
                    frame = footer_frame(
                        qid, pages=pages, items=items,
                        elapsed_ms=elapsed_ms,
                    )
                    await self._send(
                        writer,
                        self._chunk(encode_frame(frame)) + b"0\r\n\r\n",
                    )
                    self._count(
                        queries_ok=1, pages_sent=pages, items_sent=items
                    )
                    break
                else:  # "error"
                    frame, status = error_frame_for(qid, payload)
                    if streaming:
                        # Mid-stream: the 200 head is gone; the error
                        # frame replaces the footer, the chunked body
                        # still terminates cleanly.
                        await self._send(
                            writer,
                            self._chunk(encode_frame(frame))
                            + b"0\r\n\r\n",
                        )
                    else:
                        await self._send(
                            writer, self._json_response(status, frame)
                        )
                    self._count(
                        queries_failed=1, pages_sent=pages,
                        items_sent=items,
                    )
                    break
        except (ConnectionError, OSError):
            # The client went away mid-response: abort the evaluation
            # instead of computing pages nobody will read.
            cancel.cancel("client disconnected")
            keep_alive = False
        finally:
            buffer.abort()
            try:
                await producer
            except Exception:
                pass
        return keep_alive

    def _produce(self, request: QueryRequest, target, eval_options,
                 page_size: int, buffer: _PageBuffer) -> None:
        """Executor-thread body of one query: evaluate, push frames.

        Never raises — every outcome (including engine errors) travels
        through the buffer as an event, so the event-loop side is the
        single place that renders frames.  The engine's thread-confined
        plan instances are safe because this one thread owns the whole
        evaluation, start to finish.
        """
        try:
            if isinstance(target, Collection):
                if request.mode == "full":
                    result = self.engine.evaluate_collection(
                        request.query, target, eval_options
                    )
                    buffer.put_header(result.kind)
                    merged = result.merged()
                    for start in range(0, max(len(merged), 1), page_size):
                        page = merged[start:start + page_size]
                        buffer.put_page([encode_item(v) for v in page])
                else:
                    stream = self.engine.evaluate_collection_stream(
                        request.query, target, eval_options,
                        page_size=page_size,
                    )
                    sent_header = False
                    for kind, page in stream:
                        if not sent_header:
                            buffer.put_header(kind)
                            sent_header = True
                        buffer.put_page([encode_item(v) for v in page])
            elif request.mode == "full":
                result = self.engine.evaluate(
                    request.query, target, eval_options,
                    ordered=request.ordered,
                )
                if isinstance(result, list):
                    buffer.put_header("node-set")
                    for start in range(
                        0, max(len(result), 1), page_size
                    ):
                        page = result[start:start + page_size]
                        buffer.put_page(
                            [encode_item(v) for v in page]
                        )
                else:
                    buffer.put_header("scalar")
                    buffer.put_page([encode_item(result)])
            else:
                plan = self.engine.compile(
                    request.query,
                    namespaces=eval_options.namespace_map(),
                    target=target,
                )
                kind = (
                    "node-set"
                    if plan.translation.kind == "sequence" else "scalar"
                )
                stream = self.engine.evaluate_stream(
                    request.query, target, eval_options,
                    page_size=page_size, ordered=request.ordered,
                )
                buffer.put_header(kind)
                for page in stream:
                    buffer.put_page([encode_item(v) for v in page])
            buffer.finish(None)
        except _StreamAborted:
            pass
        except BaseException as error:
            try:
                buffer.finish(error)
            except _StreamAborted:
                pass


# ----------------------------------------------------------------------
# Thread-hosted helper (tests, benchmarks, the differential oracle)
# ----------------------------------------------------------------------


class ServerHandle:
    """A server running on its own event-loop thread."""

    def __init__(self, server: XPathServer,
                 thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop):
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def host(self) -> str:
        return self.server.config.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def stop(self, drain: Optional[float] = None,
             timeout: float = 30.0) -> None:
        """Gracefully shut the server down and join its thread."""
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain), self._loop
        )
        try:
            future.result(timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(
    targets: Mapping[str, object],
    *,
    engine: Optional[XPathEngine] = None,
    config: Optional[ServerConfig] = None,
    default_target: Optional[str] = None,
) -> ServerHandle:
    """Start an :class:`XPathServer` on a background event-loop thread.

    The returned handle exposes the bound port and a blocking
    :meth:`~ServerHandle.stop`; use it as a context manager in tests::

        with start_in_thread({"doc": store}) as handle:
            client = ServerClient(handle.host, handle.port)
            ...
    """
    server = XPathServer(
        targets, engine=engine, config=config,
        default_target=default_target,
    )
    started = threading.Event()
    boot_errors: List[BaseException] = []
    loop_holder: List[asyncio.AbstractEventLoop] = []

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as error:  # bind failures, mostly
            boot_errors.append(error)
            started.set()
            loop.close()
            return
        loop_holder.append(loop)
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=run, name="xpath-server", daemon=True
    )
    thread.start()
    started.wait(timeout=30)
    if boot_errors:
        raise boot_errors[0]
    if not loop_holder:
        raise RuntimeError("server event loop failed to start")
    return ServerHandle(server, thread, loop_holder[0])
