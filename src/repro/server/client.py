"""A minimal blocking client for the serving front end.

Built on stdlib :mod:`http.client` — the same dependency budget as the
server.  Used by the test suite, the differential oracle's ``server``
route and ``benchmarks/bench_server.py``; it doubles as executable
documentation of the frame protocol for clients in other languages.

:meth:`ServerClient.query` POSTs one request and decodes the NDJSON
frame stream *incrementally* (page by page off the chunked body, never
buffering the whole response), returning a :class:`QueryResult` whose
``error`` carries the typed frame when the server reported one instead
of raising — callers decide whether an error is exceptional.
:meth:`QueryResult.raise_for_error` re-raises the matching
:mod:`repro.errors` exception class by its wire-carried type name.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro import errors as _errors
from repro.server.protocol import canonical_items, decode_scalar


@dataclass
class QueryResult:
    """One decoded query response: frames, reassembled."""

    status: int
    header: Optional[dict] = None
    pages: List[List[dict]] = field(default_factory=list)
    footer: Optional[dict] = None
    error: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def items(self) -> List[dict]:
        """Every result item, pages reassembled in ``seq`` order
        (frames arrive in ``seq`` order on the one connection)."""
        return [item for page in self.pages for item in page]

    @property
    def kind(self) -> Optional[str]:
        return self.header.get("kind") if self.header else None

    def scalar(self) -> object:
        """The scalar value of a one-item scalar response."""
        items = self.items
        if len(items) != 1 or items[0].get("type") == "node":
            raise ValueError(f"not a scalar result: {self.kind!r}")
        return decode_scalar(items[0])

    def canonical(self) -> object:
        """The differential-oracle comparison form of the result."""
        return canonical_items(self.items)

    def raise_for_error(self) -> "QueryResult":
        """Re-raise the server-side error, typed, or return self."""
        if self.error is None:
            return self
        name = self.error.get("error", "")
        message = self.error.get("message", "")
        exc_type = getattr(_errors, name, None)
        if isinstance(exc_type, type) and issubclass(
            exc_type, _errors.ReproError
        ):
            try:
                raise exc_type(message)
            except TypeError:
                # Classes with structured constructors (the governance
                # errors carry limits/usage) reconstruct from the wire
                # message alone — the type is what callers match on.
                error = exc_type.__new__(exc_type)
                Exception.__init__(error, message)
                raise error from None
        raise RuntimeError(
            f"server error [{self.error.get('code')}]: {message}"
        )


class ServerClient:
    """One keep-alive connection to an :class:`XPathServer`."""

    def __init__(self, host: str, port: int, *,
                 client_id: Optional[str] = None,
                 timeout: float = 60.0):
        self._conn = http.client.HTTPConnection(
            host, port, timeout=timeout
        )
        self._client_id = client_id

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plain JSON endpoints ------------------------------------------

    def _get_json(self, path: str) -> dict:
        self._conn.request("GET", path, headers=self._headers())
        response = self._conn.getresponse()
        return json.loads(response.read().decode("utf-8"))

    def stats(self) -> dict:
        return self._get_json("/stats")

    def healthz(self) -> dict:
        return self._get_json("/healthz")

    def version(self) -> dict:
        return self._get_json("/version")

    def _headers(self) -> Dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self._client_id:
            headers["X-Client-Id"] = self._client_id
        return headers

    # -- queries -------------------------------------------------------

    def query(self, query: str, *, target: Optional[str] = None,
              **fields) -> QueryResult:
        """POST one query and decode the full frame stream.

        ``fields`` pass through to the request body verbatim (``mode``,
        ``page_size``, ``ordered``, ``variables``, ``namespaces``,
        ``timeout``, ``max_tuples``, ``max_bytes``, ...).
        """
        body: Dict[str, object] = {"query": query, **fields}
        if target is not None:
            body["target"] = target
        payload = json.dumps(body).encode("utf-8")
        self._conn.request(
            "POST", "/xpath", body=payload, headers=self._headers()
        )
        response = self._conn.getresponse()
        result = QueryResult(status=response.status)
        for frame in self._frames(response):
            kind = frame.get("frame")
            if kind == "header":
                result.header = frame
            elif kind == "page":
                result.pages.append(frame["items"])
            elif kind == "footer":
                result.footer = frame
            elif kind == "error":
                result.error = frame
        return result

    @staticmethod
    def _frames(response: http.client.HTTPResponse) -> Iterator[dict]:
        """Decode newline-delimited frames incrementally.

        ``http.client`` de-chunks the transfer encoding; reading line
        by line keeps at most one frame in memory at a time, matching
        the server's page-at-a-time production.
        """
        buffered = b""
        while True:
            chunk = response.read(65536)
            if not chunk:
                break
            buffered += chunk
            while b"\n" in buffered:
                line, buffered = buffered.split(b"\n", 1)
                if line.strip():
                    yield json.loads(line.decode("utf-8"))
        if buffered.strip():
            yield json.loads(buffered.decode("utf-8"))
