"""Per-client admission control for the serving front end.

Admission happens on the event loop, *before* a query is handed to the
executor — a rejected request costs one JSON error frame and never
touches a worker thread.  Two quotas apply:

``max_inflight``
    per client (the ``X-Client-Id`` header, falling back to the peer
    address): how many of that client's queries may be admitted but
    not yet finished.  A client at its quota gets ``quota-exceeded``
    (429) until one of its queries completes.
``queue_depth``
    server-wide: how many admitted queries may be *waiting* for an
    executor thread (total in-flight beyond the worker count).  A full
    queue gets ``queue-full`` (429) regardless of the client — the
    server sheds load instead of buffering it.

Every admitted query runs under the server's default deadline (unless
the request brings its own), so an admission slot is always bounded in
time — the quota cannot be wedged open by a query that never ends.
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.server.protocol import ProtocolError


class AdmissionController:
    """Tracks in-flight queries per client and server-wide."""

    def __init__(self, *, max_inflight: int, queue_depth: int,
                 workers: int):
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must not be negative")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.workers = workers
        self._lock = threading.Lock()
        self._per_client: Dict[str, int] = {}
        self._total = 0
        self._admitted = 0
        self._released = 0
        self._orphan_releases = 0
        self._rejected_quota = 0
        self._rejected_queue = 0

    @property
    def total_inflight(self) -> int:
        with self._lock:
            return self._total

    def admit(self, client: str) -> None:
        """Claim one slot for ``client`` or raise the typed rejection."""
        with self._lock:
            inflight = self._per_client.get(client, 0)
            if inflight >= self.max_inflight:
                self._rejected_quota += 1
                raise ProtocolError(
                    "quota-exceeded",
                    f"client {client!r} already has {inflight} queries "
                    f"in flight (max_inflight={self.max_inflight})",
                )
            queued = self._total - self.workers
            if queued >= self.queue_depth:
                self._rejected_queue += 1
                raise ProtocolError(
                    "queue-full",
                    f"{self._total} queries in flight, "
                    f"{max(queued, 0)} waiting "
                    f"(queue_depth={self.queue_depth})",
                )
            self._per_client[client] = inflight + 1
            self._total += 1
            self._admitted += 1

    def release(self, client: str) -> None:
        """Return ``client``'s slot (exactly once per admit).

        A release with no matching admit — a double release on some
        exit path, the bug class this guards against — is *not*
        silently clamped away: it leaves the quota untouched and is
        counted as an ``orphan_releases`` anomaly in the snapshot, so a
        stats check catches the broken path instead of the quota
        slowly inflating.
        """
        with self._lock:
            inflight = self._per_client.get(client, 0)
            if inflight <= 0:
                self._orphan_releases += 1
                return
            if inflight == 1:
                self._per_client.pop(client, None)
            else:
                self._per_client[client] = inflight - 1
            self._total = max(0, self._total - 1)
            self._released += 1

    def snapshot(self) -> dict:
        """Quota counters for ``/stats`` (JSON-safe)."""
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "queue_depth": self.queue_depth,
                "workers": self.workers,
                "inflight": self._total,
                "queued": max(0, self._total - self.workers),
                "clients": dict(self._per_client),
                "admitted": self._admitted,
                "released": self._released,
                "orphan_releases": self._orphan_releases,
                "rejected_quota": self._rejected_quota,
                "rejected_queue": self._rejected_queue,
            }
