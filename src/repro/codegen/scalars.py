"""Lowering of scalar (subscript) IR to inline Python expressions.

Each scalar node becomes one Python expression string; the dynamic-
semantics entry points (``compare``, ``to_boolean``, ``coerce``,
``call_builtin`` …) are the same functions the tree-walking
:class:`~repro.engine.subscripts.InterpSubscript` calls, so a lowered
expression computes bit-identical results — the win is eliminating the
per-node tree walk and dispatch, not changing any conversion rule.

Nested sequence-valued plans (:class:`~repro.algebra.scalar.SNested`)
are lowered to a nested generator function emitted into the enclosing
function scope plus an ``_agg(...)`` call over it.

``lower`` returns ``(code, is_bool)``; ``is_bool`` lets predicate sites
skip a redundant ``_to_boolean`` wrapper.
"""

from __future__ import annotations

from typing import Tuple

from repro.algebra import scalar as S
from repro.xpath.datamodel import XPathType


def const_expr(value: object) -> str:
    """A Python literal for an XPath constant (NaN/inf made spellable)."""
    if isinstance(value, float) and not isinstance(value, bool):
        if value != value:
            return "float('nan')"
        if value == float("inf"):
            return "float('inf')"
        if value == float("-inf"):
            return "float('-inf')"
    return repr(value)


def lower(expr: S.Scalar, emitter, fn) -> Tuple[str, bool]:
    """Lower ``expr`` to a Python expression string.

    ``emitter`` supplies register locals (:meth:`local`) and nested-plan
    generator emission (:meth:`lower_nested`); ``fn`` is the function
    scope nested generator definitions land in.
    """
    if isinstance(expr, S.SConst):
        return const_expr(expr.value), isinstance(expr.value, bool)
    if isinstance(expr, S.SAttr):
        return emitter.local(expr.name), False
    if isinstance(expr, S.SVar):
        return f"ctx.variable({expr.name!r})", False
    if isinstance(expr, S.SNested):
        return emitter.lower_nested(expr, fn), expr.agg == "exists"
    if isinstance(expr, S.SStringValue):
        inner, _ = lower(expr.operand, emitter, fn)
        return f"_as_string({inner})", False
    if isinstance(expr, S.SConvert):
        inner, _ = lower(expr.operand, emitter, fn)
        return (
            f"_coerce({inner}, _TY_{expr.target.name})",
            expr.target == XPathType.BOOLEAN,
        )
    if isinstance(expr, S.SArith):
        left, _ = lower(expr.left, emitter, fn)
        right, _ = lower(expr.right, emitter, fn)
        if expr.op in ("+", "-", "*"):
            return (
                f"(_as_number({left}) {expr.op} _as_number({right}))",
                False,
            )
        return (
            f"_arith({expr.op!r}, _as_number({left}), _as_number({right}))",
            False,
        )
    if isinstance(expr, S.SNeg):
        inner, _ = lower(expr.operand, emitter, fn)
        return f"(-_as_number({inner}))", False
    if isinstance(expr, S.SCmp):
        left, _ = lower(expr.left, emitter, fn)
        right, _ = lower(expr.right, emitter, fn)
        return (
            f"_compare({expr.op!r}, _ncmp({left}), _ncmp({right}))",
            True,
        )
    if isinstance(expr, S.SBool):
        left = lower_bool(expr.left, emitter, fn)
        right = lower_bool(expr.right, emitter, fn)
        op = "and" if expr.op == "and" else "or"
        return f"({left} {op} {right})", True
    if isinstance(expr, S.SNot):
        return f"(not {lower_bool(expr.operand, emitter, fn)})", True
    if isinstance(expr, S.SFunc):
        args = ", ".join(
            lower(arg, emitter, fn)[0] for arg in expr.args
        )
        return f"_call_builtin({expr.name!r}, [{args}], None)", False
    if isinstance(expr, S.SDeref):
        inner, _ = lower(expr.operand, emitter, fn)
        return f"_deref({inner}, ctx)", False
    if isinstance(expr, S.STokenize):
        inner, _ = lower(expr.operand, emitter, fn)
        return f"_as_string({inner}).split()", False
    if isinstance(expr, S.SRoot):
        inner, _ = lower(expr.operand, emitter, fn)
        return f"_root({inner})", False
    from repro.codegen.emitter import CodegenUnsupported

    raise CodegenUnsupported(
        f"no Python lowering for scalar {type(expr).__name__}"
    )


def lower_bool(expr: S.Scalar, emitter, fn) -> str:
    """Lower ``expr`` coerced to a boolean (predicate position)."""
    code, is_bool = lower(expr, emitter, fn)
    if is_bool:
        return code
    return f"_to_boolean({code})"
