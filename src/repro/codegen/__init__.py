"""Plan-to-Python code generation backend.

Compiles a translated algebra plan into one specialized Python
generator function (operators fused, node tests inlined, subscripts
lowered to expressions, governance amortized at loop heads).  Entry
point is :func:`generate_python`; plans the backend cannot compile
raise :class:`CodegenUnsupported` and execute on the interpreted
iterator engine instead.
"""

from repro.codegen.emitter import (
    CodegenUnsupported,
    GeneratedPlan,
    generate_python,
)

__all__ = ["CodegenUnsupported", "GeneratedPlan", "generate_python"]
