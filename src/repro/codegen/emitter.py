"""Plan-to-Python code generation (produce/consume emission).

Walks a logical algebra plan and emits ONE specialized Python generator
function per plan.  Operators are fused into straight-line loops in
push style: every operator's *produce* code contains its consumer's
code at the innermost point, so a cache-hot ``unnest → select → map``
chain runs as a single nested ``for``/``if`` block with zero per-tuple
virtual calls.  Node tests are inlined (mirroring
:func:`~repro.xpath.axes.make_node_test` case by case), subscripts are
lowered to inline expressions (:mod:`repro.codegen.scalars`), and
registers become plain Python locals named ``r<slot>`` — shared slots
(the attribute manager's aliases) collapse to a single local, exactly
like the interpreter's shared register file.

Governance is amortized: instead of a ``tick()`` per axis candidate,
loops maintain two local counters (``_ev`` events, ``_tu`` tuples) and
flush them to the :class:`~repro.engine.governor.ResourceGovernor`
every 256 events, preserving deadline, budget and cancellation
semantics with bounded detection latency.  Materializing operators
(sort, cross product, Tmp^cs, MemoX) charge byte budgets per snapshot
exactly like the interpreter's ``snapshot_cost``.

Operators with no emitter (index scans, binary grouping) raise
:class:`CodegenUnsupported`; callers fall back to the iterator engine.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Callable, List, Optional, Sequence, Set

from repro.algebra import operators as ops
from repro.algebra import scalar as S
from repro.algebra.properties import attributes, free_variables
from repro.codegen import scalars
from repro.codegen.runtime import base_namespace
from repro.compiler.translate import (
    TOP_CONTEXT_ATTR,
    TOP_POSITION_ATTR,
    TOP_SIZE_ATTR,
)
from repro.engine.context import ExecutionContext
from repro.engine.tuples import AttributeManager
from repro.errors import CodegenError, ExecutionError
from repro.xpath.axes import Axis, NodeTestKind, principal_node_kind


class CodegenUnsupported(CodegenError):
    """The plan contains something the Python backend cannot compile."""


#: Hard ceiling on emitted lines — ⊕ duplicates its consumer per branch,
#: so pathological union nests could otherwise explode quadratically.
_MAX_LINES = 20000

#: Axes cheap enough to enumerate without the generator indirection.
_INLINE_AXIS = {
    Axis.CHILD: "{src}.children",
    Axis.ATTRIBUTE: "{src}.attributes",
    Axis.DESCENDANT: "{src}.iter_descendants()",
}

_GOV_TUPLE = (
    "_ev += 1; _tu += 1",
    "if _ev >= 256:",
    "    _ev, _tu = _flush(_tu)",
)
_GOV_TICK = (
    "_ev += 1",
    "if _ev >= 256:",
    "    _ev, _tu = _flush(_tu)",
)

Consume = Callable[["_Fn"], None]


class _Block:
    __slots__ = ("fn",)

    def __init__(self, fn: "_Fn"):
        self.fn = fn

    def __enter__(self) -> None:
        self.fn.indent += 1

    def __exit__(self, *exc_info) -> None:
        self.fn.indent -= 1


class _Fn:
    """One function scope being emitted (the plan or a nested generator)."""

    __slots__ = ("name", "params", "lines", "defs", "touched", "indent",
                 "emitter")

    def __init__(self, name: str, emitter: "_Emitter", params: str = ""):
        self.name = name
        self.params = params
        self.lines: List[str] = []
        self.defs: List["_Fn"] = []
        #: Register locals assigned (or snapshot-read) in this scope;
        #: they are initialized to None at scope top, mirroring the
        #: interpreter's zeroed register file.
        self.touched: Set[str] = set()
        self.indent = 0
        self.emitter = emitter

    def w(self, line: str) -> None:
        self.emitter.count_line()
        self.lines.append("    " * self.indent + line)

    def wmany(self, lines: Sequence[str]) -> None:
        for line in lines:
            self.w(line)

    def block(self) -> _Block:
        return _Block(self)

    def touch(self, local: str) -> None:
        self.touched.add(local)


#: Register-local references in a generated line (string literals are
#: stripped first so a node test against an element literally named
#: ``r1`` cannot be mistaken for a register).
_REG_RE = re.compile(r"\br\d+\b")
_STR_RE = re.compile(r"'(?:[^'\\]|\\.)*'|\"(?:[^\"\\]|\\.)*\"")


def _referenced_registers(lines: Sequence[str]) -> List[str]:
    refs: Set[str] = set()
    for line in lines:
        refs.update(_REG_RE.findall(_STR_RE.sub("", line)))
    return sorted(refs, key=lambda name: int(name[1:]))


def _render(fn: _Fn, depth: int, preamble: Sequence[str]) -> List[str]:
    pad = "    " * depth
    inner = "    " * (depth + 1)
    out = [f"{pad}def {fn.name}({fn.params}):"]
    for line in preamble:
        out.append(inner + line)
    for sub in fn.defs:
        # Registers arrive as parameters (the caller passes its current
        # values, mirroring the interpreter seeding a nested plan from
        # the outer tuple), so only the shared counters need wiring.
        out.extend(_render(sub, depth + 1, ["nonlocal _ev, _tu"]))
    for line in fn.lines:
        out.append(inner + line)
    # Every emitted function is a generator, even when its body turned
    # out to contain no reachable yield (an empty ⊕, say).
    out.append(inner + "if False:")
    out.append(inner + "    yield None")
    return out


class _Emitter:
    """Stateful produce/consume walk over one logical plan."""

    def __init__(self) -> None:
        self.manager = AttributeManager()
        self._n = 0
        self._lines = 0
        #: Per-execution setup lines in the main function (memo dicts,
        #: namespace-sensitive node-test closures).
        self.hoist: List[str] = []

    # -- bookkeeping ---------------------------------------------------

    def count_line(self) -> None:
        self._lines += 1
        if self._lines > _MAX_LINES:
            raise CodegenUnsupported("generated plan too large")

    def uid(self) -> int:
        self._n += 1
        return self._n

    def slot(self, attr: str) -> int:
        return self.manager.slot(attr)

    def local(self, attr: str) -> str:
        return f"r{self.manager.slot(attr)}"

    def owned_slots(self, plan: ops.Operator) -> List[int]:
        return sorted({self.slot(a) for a in attributes(plan)})

    def _scalar_key_slots(self, expr: S.Scalar) -> List[int]:
        names: Set[str] = set(S.referenced_attrs(expr))
        for embedded in S.nested_plans(expr):
            names |= free_variables(embedded.plan)
        return sorted(self.slot(name) for name in names)

    # -- register pre-pass ---------------------------------------------

    def register(self, plan: ops.Operator) -> None:
        """Replay the iterator backend's register aliasing, in its order.

        Mirrors :class:`~repro.compiler.codegen.CodeGenerator`: union
        result slots are allocated before their branches, projection
        renames unify, and pure-aliasing maps alias — so owned-slot and
        key-slot computations during emission see the final groups.
        """
        name = type(plan).__name__
        if name == "Concat":
            self.manager.slot(plan.result_attr)
        elif name == "Project":
            for new_name, old_name in plan.renames.items():
                self.manager.unify(new_name, old_name)
        elif name == "MapOp" and isinstance(plan.expr, S.SAttr):
            self.manager.alias(plan.attr, plan.expr.name)
        for child in plan.children():
            self.register(child)
        for sub in plan.subscripts():
            for nested in S.nested_plans(sub):
                self.register(nested.plan)

    # -- shared emission helpers ---------------------------------------

    def gov_tuple(self, fn: _Fn) -> None:
        fn.wmany(_GOV_TUPLE)

    def gov_tick(self, fn: _Fn) -> None:
        fn.wmany(_GOV_TICK)

    def snapshot_expr(self, slots: Sequence[int]) -> str:
        if not slots:
            return "()"
        body = ", ".join(f"r{s}" for s in slots)
        if len(slots) == 1:
            body += ","
        return f"({body})"

    def restore_line(self, slots: Sequence[int], source: str,
                     fn: _Fn) -> None:
        if not slots:
            return
        targets = ", ".join(f"r{s}" for s in slots)
        if len(slots) == 1:
            targets += ","
        for slot in slots:
            fn.touch(f"r{slot}")
        fn.w(f"{targets} = {source}")

    def charge_snapshot(self, fn: _Fn, slots: Sequence[int]) -> None:
        cost = 56 + 16 * len(slots)
        fn.w("if _gov is not None:")
        with fn.block():
            fn.w(f"_gov.add_bytes({cost})")

    def finalize_sub(self, sub: _Fn) -> str:
        """Parameterize a nested def over every register it references.

        The caller passes its current register values at the call site,
        which is exactly the interpreter's dependent-execution contract:
        a nested plan (subscript, aggregate source, semijoin probe) is
        seeded from the enclosing tuple, and its own register writes
        never leak back out.  Returns the argument list for the call.
        """
        regs = ", ".join(_referenced_registers(sub.lines))
        sub.params = regs
        return regs

    def lower_nested(self, nested: S.SNested, fn: _Fn) -> str:
        """Emit a nested plan as a generator def; return the agg call."""
        result_attr = nested.plan.result_attr
        if result_attr is None:
            raise CodegenUnsupported("nested plan lacks a result attribute")
        i = self.uid()
        sub = _Fn(f"_np{i}", self)
        result = self.local(result_attr)
        self.emit(nested.plan, sub, lambda f: f.w(f"yield {result}"))
        args = self.finalize_sub(sub)
        fn.defs.append(sub)
        return f"_agg({nested.agg!r}, _np{i}({args}))"

    # -- dispatch ------------------------------------------------------

    def emit(self, plan: ops.Operator, fn: _Fn, consume: Consume) -> None:
        method = getattr(self, f"_emit_{type(plan).__name__}", None)
        if method is None:
            raise CodegenUnsupported(
                f"no Python codegen for {type(plan).__name__}"
            )
        method(plan, fn, consume)

    # -- leaves --------------------------------------------------------

    def _emit_SingletonScan(self, plan: ops.SingletonScan, fn: _Fn,
                            consume: Consume) -> None:
        consume(fn)

    def _emit_VarScan(self, plan: ops.VarScan, fn: _Fn,
                      consume: Consume) -> None:
        i = self.uid()
        slot = self.slot(plan.attr)
        fn.w(f"_vs{i} = ctx.variable({plan.variable!r})")
        fn.w(f"if not isinstance(_vs{i}, list):")
        with fn.block():
            fn.w(
                "raise _ExecutionError('variable $%s used as a node-set "
                f"but bound to %s' % ({plan.variable!r}, "
                f"type(_vs{i}).__name__))"
            )
        fn.touch(f"r{slot}")
        fn.w(f"for r{slot} in _vs{i}:")
        with fn.block():
            self.gov_tuple(fn)
            consume(fn)

    # -- unary pipeline ops --------------------------------------------

    def _emit_Select(self, plan: ops.Select, fn: _Fn,
                     consume: Consume) -> None:
        def selected(f: _Fn) -> None:
            predicate = scalars.lower_bool(plan.predicate, self, f)
            f.w(f"if {predicate}:")
            with f.block():
                consume(f)

        self.emit(plan.child, fn, selected)

    def _emit_MapOp(self, plan: ops.MapOp, fn: _Fn,
                    consume: Consume) -> None:
        if isinstance(plan.expr, S.SAttr):
            # Pure aliasing map: the register pre-pass already bound the
            # new attribute to the same slot; no code.
            self.emit(plan.child, fn, consume)
            return
        slot = self.slot(plan.attr)

        def mapped(f: _Fn) -> None:
            code, _ = scalars.lower(plan.expr, self, f)
            f.touch(f"r{slot}")
            f.w(f"r{slot} = {code}")
            consume(f)

        self.emit(plan.child, fn, mapped)

    def _emit_MatMap(self, plan: ops.MatMap, fn: _Fn,
                     consume: Consume) -> None:
        i = self.uid()
        slot = self.slot(plan.attr)
        key_slots = self._scalar_key_slots(plan.expr)
        # The memo lives for one whole plan execution (the interpreter
        # clears it in _prepare; a fresh dict per call is the same).
        self.hoist.append(f"_mm{i} = {{}}")
        key = ", ".join(f"_hashable(r{s})" for s in key_slots)
        trail = "," if len(key_slots) == 1 else ""

        def memoized(f: _Fn) -> None:
            f.w(f"_mk{i} = ({key}{trail})")
            f.touch(f"r{slot}")
            f.w(f"if _mk{i} in _mm{i}:")
            with f.block():
                f.w(f"r{slot} = _mm{i}[_mk{i}]")
            f.w("else:")
            with f.block():
                code, _ = scalars.lower(plan.expr, self, f)
                f.w(f"r{slot} = {code}")
                f.w(f"_mm{i}[_mk{i}] = r{slot}")
            consume(f)

        self.emit(plan.child, fn, memoized)

    def _emit_PosMap(self, plan: ops.PosMap, fn: _Fn,
                     consume: Consume) -> None:
        i = self.uid()
        slot = self.slot(plan.attr)
        ctx_slot = (
            self.slot(plan.context_attr)
            if plan.context_attr is not None
            else None
        )
        fn.w(f"_pc{i} = 0")
        if ctx_slot is not None:
            fn.w(f"_pf{i} = True")
            fn.w(f"_pl{i} = None")

        def counted(f: _Fn) -> None:
            if ctx_slot is not None:
                f.w(f"if _pf{i} or r{ctx_slot} != _pl{i}:")
                with f.block():
                    f.w(f"_pc{i} = 0")
                    f.w(f"_pl{i} = r{ctx_slot}")
                    f.w(f"_pf{i} = False")
            f.w(f"_pc{i} += 1")
            f.touch(f"r{slot}")
            f.w(f"r{slot} = float(_pc{i})")
            consume(f)

        self.emit(plan.child, fn, counted)

    def _emit_ProjectDup(self, plan: ops.ProjectDup, fn: _Fn,
                         consume: Consume) -> None:
        i = self.uid()
        slot = self.slot(plan.attr)
        fn.w(f"_dd{i} = set()")

        def dedup(f: _Fn) -> None:
            f.w(f"_dh{i} = _hashable(r{slot})")
            f.w(f"if _dh{i} not in _dd{i}:")
            with f.block():
                f.w(f"_dd{i}.add(_dh{i})")
                consume(f)

        self.emit(plan.child, fn, dedup)

    def _emit_Project(self, plan: ops.Project, fn: _Fn,
                      consume: Consume) -> None:
        # Renames were unified in the register pre-pass; like the
        # interpreter's PassThroughIt this emits nothing.
        self.emit(plan.child, fn, consume)

    # -- unnesting -----------------------------------------------------

    def _emit_UnnestMap(self, plan: ops.UnnestMap, fn: _Fn,
                        consume: Consume) -> None:
        src = f"r{self.slot(plan.in_attr)}"
        out_slot = self.slot(plan.out_attr)
        template = _INLINE_AXIS.get(plan.axis)
        axis_expr = (
            template.format(src=src)
            if template is not None
            else f"_iter_axis(_AX_{plan.axis.name}, {src})"
        )

        def unnested(f: _Fn) -> None:
            i = self.uid()
            f.w(f"if {src} is None:")
            with f.block():
                f.w("pass")
            f.w(f"elif not isinstance({src}, _Node):")
            with f.block():
                f.w(
                    "raise _ExecutionError("
                    f"'location step input is not a node: %r' % ({src},))"
                )
            f.w("else:")
            with f.block():
                cand = f"_c{i}"
                f.w(f"for {cand} in {axis_expr}:")
                with f.block():
                    self.gov_tick(f)

                    def matched(ff: _Fn) -> None:
                        ff.touch(f"r{out_slot}")
                        ff.w(f"r{out_slot} = {cand}")
                        self.gov_tuple(ff)
                        consume(ff)

                    self._emit_node_test(plan, f, cand, matched)

        self.emit(plan.child, fn, unnested)

    def _emit_node_test(self, plan: ops.UnnestMap, fn: _Fn, cand: str,
                        body: Consume) -> None:
        """Inline the node test, mirroring make_node_test case by case."""
        kind, name, axis = plan.test_kind, plan.test_name, plan.axis
        if kind == NodeTestKind.NODE:
            body(fn)
            return
        if kind == NodeTestKind.TEXT:
            fn.w(f"if {cand}.kind is _K_TEXT:")
            with fn.block():
                body(fn)
            return
        if kind == NodeTestKind.COMMENT:
            fn.w(f"if {cand}.kind is _K_COMMENT:")
            with fn.block():
                body(fn)
            return
        if kind == NodeTestKind.PI:
            condition = f"{cand}.kind is _K_PROCESSING_INSTRUCTION"
            if name is not None:
                condition += f" and {cand}.name == {name!r}"
            fn.w(f"if {condition}:")
            with fn.block():
                body(fn)
            return
        principal = principal_node_kind(axis)
        if kind == NodeTestKind.ANY_NAME and name is None:
            fn.w(f"if {cand}.kind is _K_{principal.name}:")
            with fn.block():
                body(fn)
            return
        if kind == NodeTestKind.NAME and ":" not in (name or ""):
            fn.w(
                f"if {cand}.kind is _K_{principal.name} "
                f"and {cand}.name == {name!r}:"
            )
            with fn.block():
                fn.w(f"_d = {cand}.document")
                fn.w(
                    "if (_d is not None and not getattr(_d, "
                    "'has_namespace_declarations', True)) "
                    f"or not {cand}.namespace_uri():"
                )
                with fn.block():
                    body(fn)
            return
        # Prefixed names and prefix:* need the expression context's
        # namespace bindings — compile the closure once per execution.
        j = self.uid()
        self.hoist.append(
            f"_nt{j} = _make_node_test(_NT_{kind.name}, {name!r}, "
            f"_AX_{axis.name}, ctx.namespaces)"
        )
        fn.w(f"if _nt{j}({cand}):")
        with fn.block():
            body(fn)

    def _emit_ExprUnnestMap(self, plan: ops.ExprUnnestMap, fn: _Fn,
                            consume: Consume) -> None:
        i = self.uid()
        slot = self.slot(plan.attr)

        def unnested(f: _Fn) -> None:
            code, _ = scalars.lower(plan.expr, self, f)
            f.w(f"_uv{i} = {code}")
            f.w(f"if not isinstance(_uv{i}, list):")
            with f.block():
                f.w(f"_uv{i} = [_uv{i}]")
            f.touch(f"r{slot}")
            f.w(f"for r{slot} in _uv{i}:")
            with f.block():
                f.w(f"if r{slot} is not None:")
                with f.block():
                    self.gov_tuple(f)
                    consume(f)

        self.emit(plan.child, fn, unnested)

    def _emit_Unnest(self, plan: ops.Unnest, fn: _Fn,
                     consume: Consume) -> None:
        # μ is the degenerate unnest-map reading the nested attribute.
        shim = ops.ExprUnnestMap(
            plan.child, plan.out_attr, S.SAttr(plan.nested_attr)
        )
        self._emit_ExprUnnestMap(shim, fn, consume)

    # -- binary ops ----------------------------------------------------

    def _emit_DJoin(self, plan: ops.DJoin, fn: _Fn,
                    consume: Consume) -> None:
        # The dependent side's code (including its state inits) lands
        # inside the outer loop body: re-running it per outer tuple IS
        # the re-open the interpreter performs.
        def per_left(f: _Fn) -> None:
            self.emit(plan.right, f, consume)

        self.emit(plan.left, fn, per_left)

    def _emit_CrossProduct(self, plan: ops.CrossProduct, fn: _Fn,
                           consume: Consume) -> None:
        i = self.uid()
        owned = self.owned_slots(plan.right)
        fn.w(f"_xb{i} = []")

        def collect(f: _Fn) -> None:
            f.w(f"_xs{i} = {self.snapshot_expr(owned)}")
            self.charge_snapshot(f, owned)
            f.w(f"_xb{i}.append(_xs{i})")

        self.emit(plan.right, fn, collect)

        def per_left(f: _Fn) -> None:
            f.w(f"for _xr{i} in _xb{i}:")
            with f.block():
                self.restore_line(owned, f"_xr{i}", f)
                self.gov_tuple(f)
                consume(f)

        self.emit(plan.left, fn, per_left)

    def _emit_SemiJoin(self, plan, fn: _Fn, consume: Consume,
                       anti: bool = False) -> None:
        def per_left(f: _Fn) -> None:
            i = self.uid()
            probe = _Fn(f"_pr{i}", self)

            def witness(pf: _Fn) -> None:
                predicate = scalars.lower_bool(plan.predicate, self, pf)
                pf.w(f"if {predicate}:")
                with pf.block():
                    pf.w("yield True")

            self.emit(plan.right, probe, witness)
            args = self.finalize_sub(probe)
            f.defs.append(probe)
            f.w(f"_w{i} = next(_pr{i}({args}), False)")
            f.w(f"if {'not _w' if anti else '_w'}{i}:")
            with f.block():
                self.gov_tuple(f)
                consume(f)

        self.emit(plan.left, fn, per_left)

    def _emit_AntiJoin(self, plan: ops.AntiJoin, fn: _Fn,
                       consume: Consume) -> None:
        self._emit_SemiJoin(plan, fn, consume, anti=True)

    def _emit_Concat(self, plan: ops.Concat, fn: _Fn,
                     consume: Consume) -> None:
        self.slot(plan.result_attr)
        for branch in plan.inputs:
            if branch.result_attr is None:
                raise CodegenUnsupported(
                    "union branch lacks a result attribute"
                )
            self.emit(branch, fn, consume)

    # -- materializing ops ---------------------------------------------

    def _emit_SortOp(self, plan: ops.SortOp, fn: _Fn,
                     consume: Consume) -> None:
        i = self.uid()
        owned = self.owned_slots(plan.child)
        attr_slot = self.slot(plan.attr)
        fn.w(f"_sb{i} = []")

        def collect(f: _Fn) -> None:
            f.w(f"if not isinstance(r{attr_slot}, _Node):")
            with f.block():
                f.w(
                    "raise _ExecutionError("
                    "'Sort requires a node-valued attribute')"
                )
            f.w(f"_ss{i} = {self.snapshot_expr(owned)}")
            self.charge_snapshot(f, owned)
            f.w(f"_sb{i}.append((r{attr_slot}.sort_key, _ss{i}))")

        self.emit(plan.child, fn, collect)
        fn.w(f"_sb{i}.sort(key=_sort_key0)")
        fn.w(f"for _sp{i} in _sb{i}:")
        with fn.block():
            self.restore_line(owned, f"_sp{i}[1]", fn)
            self.gov_tuple(fn)
            consume(fn)

    def _emit_TmpCs(self, plan: ops.TmpCs, fn: _Fn,
                    consume: Consume) -> None:
        i = self.uid()
        owned = self.owned_slots(plan.child)
        cp_slot = self.slot(plan.cp_attr)
        cs_slot = self.slot(plan.cs_attr)
        ctx_slot = (
            self.slot(plan.context_attr)
            if plan.context_attr is not None
            else None
        )
        if cp_slot not in owned:
            raise CodegenUnsupported(
                "Tmp^cs input does not carry its position register"
            )
        if ctx_slot is not None and ctx_slot not in owned:
            owned = sorted(set(owned) | {ctx_slot})
        cp_pos = owned.index(cp_slot)
        ctx_pos = owned.index(ctx_slot) if ctx_slot is not None else None
        fn.w(f"_tb{i} = []")

        def collect(f: _Fn) -> None:
            f.w(f"_ts{i} = {self.snapshot_expr(owned)}")
            self.charge_snapshot(f, owned)
            f.w(f"_tb{i}.append(_ts{i})")

        self.emit(plan.child, fn, collect)
        fn.w(f"_ti{i} = 0")
        fn.w(f"_tn{i} = len(_tb{i})")
        fn.w(f"while _ti{i} < _tn{i}:")
        with fn.block():
            if ctx_pos is None:
                fn.w(f"_tj{i} = _tn{i}")
            else:
                fn.w(f"_tj{i} = _ti{i} + 1")
                fn.w(
                    f"while _tj{i} < _tn{i} and not ("
                    f"_tb{i}[_tj{i}][{ctx_pos}] "
                    f"!= _tb{i}[_ti{i}][{ctx_pos}]):"
                )
                with fn.block():
                    fn.w(f"_tj{i} += 1")
            fn.w(f"_tz{i} = _tb{i}[_tj{i} - 1][{cp_pos}]")
            fn.w(f"_tg{i} = _ti{i}")
            fn.w(f"while _tg{i} < _tj{i}:")
            with fn.block():
                self.restore_line(owned, f"_tb{i}[_tg{i}]", fn)
                fn.touch(f"r{cs_slot}")
                fn.w(f"r{cs_slot} = _tz{i}")
                self.gov_tuple(fn)
                consume(fn)
                fn.w(f"_tg{i} += 1")
            fn.w(f"_ti{i} = _tj{i}")

    def _emit_Aggregate(self, plan: ops.Aggregate, fn: _Fn,
                        consume: Consume) -> None:
        if plan.input_attr is None:
            raise CodegenUnsupported("Aggregate requires an input attribute")
        i = self.uid()
        out_slot = self.slot(plan.attr)
        source = self.local(plan.input_attr)
        sub = _Fn(f"_ag{i}", self)
        self.emit(plan.child, sub, lambda f: f.w(f"yield {source}"))
        args = self.finalize_sub(sub)
        fn.defs.append(sub)
        fn.touch(f"r{out_slot}")
        fn.w(f"r{out_slot} = _agg({plan.func!r}, _ag{i}({args}))")
        consume(fn)

    def _emit_MemoX(self, plan: ops.MemoX, fn: _Fn,
                    consume: Consume) -> None:
        i = self.uid()
        owned = self.owned_slots(plan.child)
        key_slots = [self.slot(a) for a in plan.key_attrs]
        self.hoist.append(f"_mx{i} = {{}}")
        key = ", ".join(f"_hashable(r{s})" for s in key_slots)
        trail = "," if len(key_slots) == 1 else ""
        fn.w(f"_mk{i} = ({key}{trail})")
        fn.w(f"_mr{i} = _mx{i}.get(_mk{i})")
        fn.w(f"if _mr{i} is not None:")
        with fn.block():
            fn.w(f"for _ms{i} in _mr{i}:")
            with fn.block():
                self.restore_line(owned, f"_ms{i}", fn)
                self.gov_tuple(fn)
                consume(fn)
        fn.w("else:")
        with fn.block():
            fn.w(f"_mw{i} = []")

            def record(f: _Fn) -> None:
                f.w(f"_m2{i} = {self.snapshot_expr(owned)}")
                self.charge_snapshot(f, owned)
                f.w(f"_mw{i}.append(_m2{i})")
                consume(f)

            self.emit(plan.child, fn, record)
            # Memoize only on exhaustion: abandoning the generator
            # mid-recording (an exists() early exit) skips this line,
            # exactly like closing the interpreted iterator mid-stream.
            fn.w(f"_mx{i}[_mk{i}] = _mw{i}")


class GeneratedPlan:
    """A compiled-to-Python plan: one generator function plus metadata.

    Generated functions keep all state in locals, so one GeneratedPlan
    is safely shared across threads (unlike interpreted
    :class:`~repro.engine.plan.PhysicalPlan` instances, which own a
    mutable register file and must be thread-confined).
    """

    __slots__ = ("fn", "kind", "source", "stats")

    def __init__(self, fn, kind: str, source: str):
        self.fn = fn
        self.kind = kind
        self.source = source
        self.stats: Counter = Counter()

    def execute(self, context: ExecutionContext):
        """Run the generated function; mirrors PhysicalPlan.execute."""
        governor = context.governor
        if governor is not None:
            governor.check()
        self.stats["codegen_executions"] += 1
        gen = self.fn(context)
        try:
            if self.kind == "scalar":
                for value in gen:
                    return value
                raise ExecutionError("scalar plan produced no tuple")
            results = []
            if governor is None:
                results.extend(gen)
            else:
                for value in gen:
                    results.append(value)
                    governor.add_bytes(16)
            return results
        finally:
            gen.close()

    def execute_count(self, context: ExecutionContext) -> int:
        governor = context.governor
        if governor is not None:
            governor.check()
        self.stats["codegen_executions"] += 1
        count = 0
        gen = self.fn(context)
        try:
            for _ in gen:
                count += 1
            return count
        finally:
            gen.close()


def generate_python(translation, options=None,
                    source: str = "") -> GeneratedPlan:
    """Compile a translation result into a :class:`GeneratedPlan`.

    Raises :class:`CodegenUnsupported` (a :class:`CodegenError`) when
    the plan contains an operator or scalar without a Python lowering —
    callers fall back to the interpreted iterator backend.
    """
    plan = translation.plan
    if plan is None or translation.result_attr is None:
        raise CodegenUnsupported("translation has no executable plan")
    emitter = _Emitter()
    try:
        emitter.register(plan)
        main = _Fn("__plan__", emitter, params="ctx")
        result = emitter.local(translation.result_attr)
        emitter.emit(plan, main, lambda f: f.w(f"yield {result}"))
        # Settle the amortized governance counters: a plan that ran to
        # completion below the flush threshold still charges its tuples
        # (an early-exited generator skips this, like a closed iterator).
        main.w("_ev, _tu = _flush(_tu)")
    except CodegenError:
        raise
    except Exception as error:  # noqa: BLE001 - never break compilation
        raise CodegenUnsupported(
            f"emission failed: {type(error).__name__}: {error}"
        )

    manager = emitter.manager
    preamble = [
        "_gov = ctx.governor",
        "_ev = 0",
        "_tu = 0",
        "def _flush(_t):",
        "    if _gov is not None:",
        "        _gov.add_tuples(_t)",
        "        _gov.tick(256)",
        "    return 0, 0",
    ]
    # Zero every register the main body references (including ones that
    # only feed nested-def call sites), mirroring the interpreter's
    # zeroed register file; context bindings below override theirs.
    preamble.extend(
        f"{name} = None" for name in _referenced_registers(main.lines)
    )
    context_slot = manager.lookup(TOP_CONTEXT_ATTR)
    position_slot = manager.lookup(TOP_POSITION_ATTR)
    size_slot = manager.lookup(TOP_SIZE_ATTR)
    if context_slot is not None:
        preamble.append(f"r{context_slot} = ctx.context_node")
    if position_slot is not None:
        preamble.append(f"r{position_slot} = float(ctx.position)")
    if size_slot is not None:
        preamble.append(f"r{size_slot} = float(ctx.size)")
    preamble.extend(emitter.hoist)

    src = "\n".join(_render(main, 0, preamble)) + "\n"
    label = source.replace("\n", " ")[:60] or "plan"
    try:
        code = compile(src, f"<pycodegen: {label}>", "exec")
    except SyntaxError as error:  # pragma: no cover - emitter bug guard
        raise CodegenUnsupported(f"generated source does not parse: {error}")
    namespace = base_namespace()
    exec(code, namespace)  # noqa: S102 - trusted, self-generated source
    return GeneratedPlan(namespace["__plan__"], translation.kind, src)
