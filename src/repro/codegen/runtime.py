"""Runtime support for generated plan functions.

Generated code (see :mod:`repro.codegen.emitter`) is exec'd against a
namespace of interned helpers and constants so the emitted source stays
short and allocation-free on the hot path: node kinds, axes and types
are pre-bound objects compared with ``is``, and the slow-path value
conversions delegate to exactly the same functions the interpreter's
subscript evaluator uses — parity with the iterator engine is by
construction, not by reimplementation.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.dom.node import Node, NodeKind
from repro.engine.subscripts import (
    _as_number as as_number,
    _as_string as as_string,
    call_builtin,
    coerce,
)
from repro.errors import ExecutionError
from repro.xpath.axes import Axis, NodeTestKind, iter_axis, make_node_test
from repro.xpath.datamodel import XPathType, arith, compare, to_boolean


def hashable(value: object) -> object:
    """Memo-key form of a register value (lists become tuples)."""
    if isinstance(value, list):
        return tuple(value)
    return value


def ncmp(value: object) -> object:
    """Bare nodes in comparisons behave as singleton node-sets."""
    if isinstance(value, Node):
        return [value]
    return value


def deref_ctx(value: object, context) -> Optional[Node]:
    """Dereference an ID string against the context document."""
    document = context.context_node.document
    if document is None:
        return None
    return document.get_element_by_id(as_string(value))


def root_of(value: object) -> Node:
    """The document root of a node operand (``root(cn)``)."""
    if not isinstance(value, Node):
        raise ExecutionError("root() requires a node operand")
    return value.root()


def _first_node(values: Iterable[object]) -> Optional[Node]:
    """The value first in document order (node-sets are unordered)."""
    best: Optional[Node] = None
    for node in values:
        if isinstance(node, Node) and (
            best is None or node.sort_key < best.sort_key
        ):
            best = node
    return best


def agg_over(agg: str, values: Iterable[object]) -> object:
    """Apply an aggregate to a stream of values.

    Mirrors :func:`repro.engine.subscripts.run_aggregate` over plain
    values instead of an iterator/register pair, including the
    ``exists`` early exit (abandoning the generator closes it, which
    unwinds any in-progress memo recording exactly like closing the
    interpreted iterator mid-stream).
    """
    if agg == "exists":
        for _ in values:
            return True
        return False
    if agg == "count":
        count = 0
        for _ in values:
            count += 1
        return float(count)
    if agg == "sum":
        total = 0.0
        for value in values:
            total += as_number(value)
        return total
    if agg in ("max", "min"):
        best = float("nan")
        for value in values:
            number = as_number(value)
            if math.isnan(number):
                continue
            if math.isnan(best):
                best = number
            elif agg == "max" and number > best:
                best = number
            elif agg == "min" and number < best:
                best = number
        return best
    if agg == "first_string":
        node = _first_node(values)
        return node.string_value() if node is not None else ""
    if agg == "first_node":
        return _first_node(values)
    if agg == "collect":
        return list(values)
    raise ExecutionError(f"unknown aggregate {agg!r}")


def _sort_key0(item):
    return item[0]


def base_namespace() -> Dict[str, object]:
    """A fresh exec namespace for one generated plan function."""
    namespace: Dict[str, object] = {
        "__builtins__": {
            "isinstance": isinstance,
            "getattr": getattr,
            "len": len,
            "float": float,
            "list": list,
            "set": set,
            "type": type,
            "next": next,
            "range": range,
        },
        "_Node": Node,
        "_ExecutionError": ExecutionError,
        "_as_number": as_number,
        "_as_string": as_string,
        "_to_boolean": to_boolean,
        "_arith": arith,
        "_compare": compare,
        "_coerce": coerce,
        "_call_builtin": call_builtin,
        "_hashable": hashable,
        "_ncmp": ncmp,
        "_deref": deref_ctx,
        "_root": root_of,
        "_agg": agg_over,
        "_iter_axis": iter_axis,
        "_make_node_test": make_node_test,
        "_sort_key0": _sort_key0,
    }
    for kind in NodeKind:
        namespace[f"_K_{kind.name}"] = kind
    for axis in Axis:
        namespace[f"_AX_{axis.name}"] = axis
    for target in XPathType:
        namespace[f"_TY_{target.name}"] = target
    for test_kind in NodeTestKind:
        namespace[f"_NT_{test_kind.name}"] = test_kind
    return namespace
