"""NQE — the iterator-based physical algebra (paper section 5.2).

Every sequence-valued logical operator has a corresponding *iterator*
with the classic ``open``/``next``/``close`` protocol [Graefe 93].
Iterators of one plan share a single register file; the attribute manager
maps attribute names to registers and aliases renamed attributes to the
same register, so the pipeline passes tuples without copying
(section 5.1/5.2.1).

Scalar subscripts are executed either by NVM programs (the default,
matching the paper) or by a tree-walking reference evaluator
(``subscript_mode='interp'``); both are differentially tested.
"""

from repro.engine.context import ExecutionContext
from repro.engine.governor import CancelToken, ResourceGovernor
from repro.engine.plan import PhysicalPlan
from repro.engine.tuples import AttributeManager

__all__ = [
    "CancelToken",
    "ExecutionContext",
    "PhysicalPlan",
    "AttributeManager",
    "ResourceGovernor",
]
