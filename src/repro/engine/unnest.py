"""Unnest-map iterators: location step evaluation (paper's Υ).

The unnest-map is where the algebra touches the document: for each input
tuple it navigates the axis from the node in the input register, applies
the node test, and streams the qualifying nodes into the output register
in axis order.  Navigation goes through the shared node protocol, so the
same iterator runs against the in-memory DOM or the page-backed store —
the paper's "direct access to the persistent representation in the Natix
page buffer" (section 5.2.2).
"""

from __future__ import annotations

from typing import Iterator as PyIterator, Mapping, Optional

from repro.dom.node import Node
from repro.engine.iterator import Iterator, RuntimeState, UnaryIterator
from repro.engine.subscripts import Subscript
from repro.errors import ExecutionError
from repro.xpath.axes import (
    Axis,
    NodeTestKind,
    iter_axis,
    make_node_test,
)


class UnnestMapIt(UnaryIterator):
    """Υ_{out : in/axis::test} — one location step."""

    __slots__ = ("in_slot", "out_slot", "axis", "test_kind", "test_name",
                 "_generator", "_test", "_test_context")

    def __init__(
        self,
        runtime: RuntimeState,
        child: Iterator,
        in_slot: int,
        out_slot: int,
        axis: Axis,
        test_kind: NodeTestKind,
        test_name: Optional[str],
    ):
        super().__init__(runtime, child)
        self.in_slot = in_slot
        self.out_slot = out_slot
        self.axis = axis
        self.test_kind = test_kind
        self.test_name = test_name
        self._generator: Optional[PyIterator[Node]] = None
        self._test = None
        self._test_context = None

    def open(self) -> None:
        super().open()
        self._generator = None
        context = self.runtime.context
        if self._test is None or self._test_context is not context:
            # Compile the node test once per execution context (its
            # namespace bindings parameterize prefixed tests).
            self._test = make_node_test(
                self.test_kind, self.test_name, self.axis,
                context.namespaces,
            )
            self._test_context = context

    def _next(self) -> bool:
        regs = self.runtime.regs
        test = self._test
        stats = self.runtime.stats
        governor = self.runtime.governor
        while True:
            if self._generator is not None:
                for candidate in self._generator:
                    stats["axis_nodes_visited"] += 1
                    if governor is not None:
                        # One next() can walk an entire subtree before a
                        # single candidate passes the test; tick per
                        # visited node so the deadline still fires
                        # promptly inside this loop.
                        governor.tick()
                    if test(candidate):
                        regs[self.out_slot] = candidate
                        stats["tuples:UnnestMap"] += 1
                        return True
                self._generator = None
            if not self.child.next():
                return False
            context_node = regs[self.in_slot]
            if context_node is None:
                # An unbound optional context (e.g. deref miss) has no
                # step results.
                continue
            if not isinstance(context_node, Node):
                raise ExecutionError(
                    f"location step input is not a node: {context_node!r}"
                )
            self._generator = iter_axis(self.axis, context_node)

    def close(self) -> None:
        super().close()
        self._generator = None


class ExprUnnestMapIt(UnaryIterator):
    """Υ over a sequence-valued subscript (``id()`` tokenization etc.).

    The subscript evaluates to a Python list; one output tuple is emitted
    per element.  ``None`` elements are dropped (dangling ID references).
    """

    __slots__ = ("out_slot", "expr", "_values", "_index")

    def __init__(self, runtime: RuntimeState, child: Iterator, out_slot: int,
                 expr: Subscript):
        super().__init__(runtime, child)
        self.out_slot = out_slot
        self.expr = expr
        self._values: list = []
        self._index = 0

    def open(self) -> None:
        super().open()
        self._values = []
        self._index = 0

    def _next(self) -> bool:
        regs = self.runtime.regs
        while True:
            while self._index < len(self._values):
                value = self._values[self._index]
                self._index += 1
                if value is not None:
                    regs[self.out_slot] = value
                    return True
            if not self.child.next():
                return False
            value = self.expr.evaluate(self.runtime)
            if isinstance(value, list):
                self._values = value
                self._index = 0
            else:
                self._values = [value]
                self._index = 0
