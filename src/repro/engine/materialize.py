"""Materializing iterators: sort, Tmp^cs, aggregation, MemoX, Γ.

These are the only operators that buffer tuples; everything else in the
engine pipelines.  Buffered tuples are snapshots of the registers owned
by the operator's subtree (see :class:`~repro.engine.scans.SnapshotReplay`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.dom.node import Node
from repro.engine.governor import snapshot_cost
from repro.engine.iterator import (
    BinaryIterator,
    Iterator,
    RuntimeState,
    UnaryIterator,
)
from repro.engine.scans import SnapshotReplay
from repro.engine.subscripts import Subscript, run_aggregate, _as_number
from repro.errors import ExecutionError


def _charge_snapshot(runtime: RuntimeState, snapshot: tuple) -> None:
    """Charge one buffered snapshot against the byte budget (if any)."""
    governor = runtime.governor
    if governor is not None:
        governor.add_bytes(snapshot_cost(snapshot))


class SortIt(UnaryIterator):
    """Sort_a — materializes and sorts by document order of a node attr."""

    __slots__ = ("slot", "replayer", "_tuples", "_index", "_loaded")

    def __init__(self, runtime: RuntimeState, child: Iterator, slot: int,
                 replayer: SnapshotReplay):
        super().__init__(runtime, child)
        self.slot = slot
        self.replayer = replayer
        self._tuples: List[tuple] = []
        self._index = 0
        self._loaded = False

    def open(self) -> None:
        super().open()
        self._tuples = []
        self._index = 0
        self._loaded = False

    def _load(self) -> None:
        regs = self.runtime.regs
        keyed: List[tuple] = []
        while self.child.next():
            node = regs[self.slot]
            if not isinstance(node, Node):
                raise ExecutionError("Sort requires a node-valued attribute")
            snapshot = self.replayer.save(regs)
            _charge_snapshot(self.runtime, snapshot)
            keyed.append((node.sort_key, snapshot))
        keyed.sort(key=lambda pair: pair[0])
        self._tuples = [snapshot for _key, snapshot in keyed]
        self._loaded = True
        self.runtime.stats["sort_materialized"] += len(self._tuples)

    def _next(self) -> bool:
        if not self._loaded:
            self._load()
        if self._index >= len(self._tuples):
            return False
        self.replayer.restore(self.runtime.regs, self._tuples[self._index])
        self._index += 1
        return True

    def close(self) -> None:
        super().close()
        self._tuples = []
        self._loaded = False


class TmpCsIt(UnaryIterator):
    """Tmp^cs / Tmp^cs_c — single implementation (paper section 5.2.4).

    Materializes one context at a time.  The input already carries the
    position counter ``cp``; the ``cp`` of a context's final tuple *is*
    the context size, which is then written to the ``cs`` register while
    the materialized context is re-emitted.  A context ends at input
    exhaustion (Tmp^cs) or when the input context node in
    ``context_slot`` changes (Tmp^cs_c).
    """

    __slots__ = ("cs_slot", "cp_slot", "context_slot", "replayer",
                 "_buffer", "_index", "_size", "_pending", "_exhausted")

    def __init__(
        self,
        runtime: RuntimeState,
        child: Iterator,
        cs_slot: int,
        cp_slot: int,
        replayer: SnapshotReplay,
        context_slot: Optional[int] = None,
    ):
        super().__init__(runtime, child)
        self.cs_slot = cs_slot
        self.cp_slot = cp_slot
        self.context_slot = context_slot
        self.replayer = replayer
        self._buffer: List[tuple] = []
        self._index = 0
        self._size = 0.0
        self._pending: Optional[tuple] = None
        self._exhausted = False

    def open(self) -> None:
        super().open()
        self._buffer = []
        self._index = 0
        self._pending = None
        self._exhausted = False

    def _context_of(self, snapshot: tuple) -> object:
        if self.context_slot is None:
            return None
        position = self.replayer.slots.index(self.context_slot)
        return snapshot[position]

    def _fill_group(self) -> bool:
        """Materialize the next context; False when input is exhausted."""
        regs = self.runtime.regs
        self._buffer = []
        self._index = 0
        if self._pending is not None:
            # Re-emitting the previous group's tuples clobbered the shared
            # registers; restore the live producer state (the pending
            # tuple was the last one the child actually produced) before
            # pulling the child again, or upstream operators watching the
            # context attribute (PosMap) would see stale values.
            self.replayer.restore(regs, self._pending)
            self._buffer.append(self._pending)
            self._pending = None
        elif not self._exhausted and self.child.next():
            snapshot = self.replayer.save(regs)
            _charge_snapshot(self.runtime, snapshot)
            self._buffer.append(snapshot)
        else:
            self._exhausted = True
            return False
        group_context = self._context_of(self._buffer[0])
        while True:
            if not self.child.next():
                self._exhausted = True
                break
            snapshot = self.replayer.save(regs)
            _charge_snapshot(self.runtime, snapshot)
            if (
                self.context_slot is not None
                and self._context_of(snapshot) != group_context
            ):
                self._pending = snapshot
                break
            self._buffer.append(snapshot)
        # cp of the final tuple equals the context size (section 5.2.4).
        last = self._buffer[-1]
        cp_position = self.replayer.slots.index(self.cp_slot)
        self._size = last[cp_position]
        self.runtime.stats["tmpcs_contexts"] += 1
        return True

    def _next(self) -> bool:
        regs = self.runtime.regs
        while True:
            if self._index < len(self._buffer):
                self.replayer.restore(regs, self._buffer[self._index])
                regs[self.cs_slot] = self._size
                self._index += 1
                return True
            if not self._fill_group():
                return False

    def close(self) -> None:
        super().close()
        self._buffer = []
        self._pending = None


class AggregateIt(UnaryIterator):
    """𝔄_{a;f} — aggregates the whole input into one single-attr tuple."""

    __slots__ = ("out_slot", "func", "input_slot", "_done")

    def __init__(self, runtime: RuntimeState, child: Iterator, out_slot: int,
                 func: str, input_slot: int):
        super().__init__(runtime, child)
        self.out_slot = out_slot
        self.func = func
        self.input_slot = input_slot
        self._done = True

    def open(self) -> None:
        # The child is opened by run_aggregate.
        self._done = False

    def _next(self) -> bool:
        if self._done:
            return False
        value = run_aggregate(
            self.child, self.func, self.input_slot, self.runtime
        )
        self.runtime.regs[self.out_slot] = value
        self._done = True
        return True

    def close(self) -> None:
        self._done = True


class MemoXIt(UnaryIterator):
    """𝔐 — the paper's memoizing sequence operator (section 4.2.2).

    Keyed by the values of its subscript attributes (free variables of
    the producer, typically the context node handed in by a d-join).  On
    a key hit the memoized snapshots are replayed without touching the
    producer.  The memo table survives re-opens — that is its purpose.
    """

    __slots__ = ("key_slots", "replayer", "_memo", "_current", "_index",
                 "_recording", "_record_key")

    def __init__(self, runtime: RuntimeState, child: Iterator,
                 key_slots: Sequence[int], replayer: SnapshotReplay):
        super().__init__(runtime, child)
        self.key_slots = tuple(key_slots)
        self.replayer = replayer
        self._memo: Dict[tuple, List[tuple]] = {}
        self._current: List[tuple] = []
        self._index = 0
        self._recording = False
        self._record_key: Optional[tuple] = None

    def open(self) -> None:
        regs = self.runtime.regs
        key = tuple(_memo_key(regs[s]) for s in self.key_slots)
        if key in self._memo:
            self.runtime.stats["memox_hits"] += 1
            self._current = self._memo[key]
            self._index = 0
            self._recording = False
        else:
            self.runtime.stats["memox_misses"] += 1
            self.child.open()
            self._current = []
            self._index = 0
            self._recording = True
            self._record_key = key

    def _next(self) -> bool:
        regs = self.runtime.regs
        if self._recording:
            if self.child.next():
                snapshot = self.replayer.save(regs)
                _charge_snapshot(self.runtime, snapshot)
                self._current.append(snapshot)
                return True
            self._memo[self._record_key] = self._current
            self._recording = False
            return False
        if self._index < len(self._current):
            self.replayer.restore(regs, self._current[self._index])
            self._index += 1
            return True
        return False

    def close(self) -> None:
        if self._recording:
            # Partially drained sequences are not memoized (an enclosing
            # early exit may abandon the producer at any point).
            self.child.close()
            self._recording = False


def _memo_key(value: object) -> object:
    if isinstance(value, list):
        return tuple(value)
    return value


class BinaryGroupIt(BinaryIterator):
    """Γ — binary grouping, provided for logical-definition completeness.

    For every left tuple, aggregates the matching right tuples
    (``left.A1 θ right.A2``) with ``func`` into the output register.  The
    right side is re-evaluated per left tuple (the physical Tmp^cs
    implementation is what production plans use instead).
    """

    __slots__ = ("out_slot", "left_slot", "theta", "right_slot", "func",
                 "func_slot", "predicate")

    def __init__(
        self,
        runtime: RuntimeState,
        left: Iterator,
        right: Iterator,
        out_slot: int,
        left_slot: int,
        theta: str,
        right_slot: int,
        func: str,
        func_slot: int,
    ):
        super().__init__(runtime, left, right)
        self.out_slot = out_slot
        self.left_slot = left_slot
        self.theta = theta
        self.right_slot = right_slot
        self.func = func
        self.func_slot = func_slot

    def open(self) -> None:
        self.left.open()

    def _next(self) -> bool:
        regs = self.runtime.regs
        if not self.left.next():
            return False
        left_value = regs[self.left_slot]
        matched: List[object] = []
        self.right.open()
        while self.right.next():
            if _theta_match(self.theta, left_value, regs[self.right_slot]):
                matched.append(regs[self.func_slot])
        self.right.close()
        regs[self.out_slot] = _apply_group_func(self.func, matched)
        return True

    def close(self) -> None:
        self.left.close()


def _theta_match(theta: str, left: object, right: object) -> bool:
    if theta == "=":
        return left == right
    if theta == "!=":
        return left != right
    raise ExecutionError(f"unsupported grouping comparison {theta!r}")


def _apply_group_func(func: str, values: List[object]) -> object:
    if func == "count":
        return float(len(values))
    if func == "sum":
        return float(sum(_as_number(v) for v in values))
    if func == "exists":
        return bool(values)
    raise ExecutionError(f"unsupported grouping aggregate {func!r}")
