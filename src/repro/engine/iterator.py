"""The iterator protocol and shared runtime state.

All physical operators implement ``open``/``next``/``close``
[Graefe 93].  ``open()`` (re)initializes the operator — d-joins re-open
their dependent side for every outer tuple, so ``open`` must be a full
reset.  ``next()`` advances to the next tuple, writing the operator's
output attributes into the shared register file and returning ``True``,
or returns ``False`` on exhaustion.

:class:`RuntimeState` bundles everything iterators share: the register
file, the execution context and the runtime counters used by the tests
and the ablation benchmarks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional

from repro.engine.context import ExecutionContext


@dataclass
class RuntimeState:
    """Shared mutable state of one plan execution."""

    regs: List[object]
    context: ExecutionContext
    #: Counters: tuples produced per operator class, memo hits, etc.
    stats: Counter = field(default_factory=Counter)


class Iterator:
    """Base class of all physical operators."""

    __slots__ = ("runtime",)

    def __init__(self, runtime: RuntimeState):
        self.runtime = runtime

    def open(self) -> None:
        raise NotImplementedError

    def next(self) -> bool:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------

    def drain(self) -> int:
        """Open, count all tuples, close.  Testing convenience."""
        self.open()
        count = 0
        while self.next():
            count += 1
        self.close()
        return count


class UnaryIterator(Iterator):
    """Base for operators with one input."""

    __slots__ = ("child",)

    def __init__(self, runtime: RuntimeState, child: Iterator):
        super().__init__(runtime)
        self.child = child

    def open(self) -> None:
        self.child.open()

    def close(self) -> None:
        self.child.close()


class BinaryIterator(Iterator):
    """Base for operators with two inputs."""

    __slots__ = ("left", "right")

    def __init__(self, runtime: RuntimeState, left: Iterator, right: Iterator):
        super().__init__(runtime)
        self.left = left
        self.right = right

    def close(self) -> None:
        self.left.close()
        self.right.close()
