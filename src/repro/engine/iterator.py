"""The iterator protocol and shared runtime state.

All physical operators implement ``open``/``next``/``close``
[Graefe 93].  ``open()`` (re)initializes the operator — d-joins re-open
their dependent side for every outer tuple, so ``open`` must be a full
reset.  ``next()`` advances to the next tuple, writing the operator's
output attributes into the shared register file and returning ``True``,
or returns ``False`` on exhaustion.

``next()`` is a template method on the base class: it counts calls and
produced tuples per operator instance, then delegates to the subclass
hook ``_next()``.  The counters feed the observability layer
(:meth:`~repro.engine.plan.PhysicalPlan.operator_stats` and
``XPathEngine.stats()``) without any per-plan bookkeeping — walking the
iterator tree reads them off the instances.

:class:`RuntimeState` bundles everything iterators share: the register
file, the execution context and the runtime counters used by the tests
and the ablation benchmarks.

Thread confinement: a ``RuntimeState`` and the iterator tree wired to it
form one *plan instance*, and an instance is only ever driven by one
thread at a time — registers, memo tables and the instrumentation
counters are all unguarded by design.  Cross-thread sharing happens one
level up: :class:`~repro.compiler.pipeline.CompiledQuery` hands every
thread its own instance (``thread_physical``) generated from the shared,
immutable translation, and merges the per-instance counters when stats
are read.  Nothing in this module takes a lock, keeping the hot
``next()`` path free of synchronization.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.engine.context import ExecutionContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.governor import ResourceGovernor


@dataclass
class RuntimeState:
    """Shared mutable state of one plan execution."""

    regs: List[object]
    context: ExecutionContext
    #: Counters: tuples produced per operator class, memo hits, etc.
    stats: Counter = field(default_factory=Counter)
    #: The active resource governor, copied off the execution context by
    #: ``PhysicalPlan._prepare`` so the ``next()`` hot path reads one
    #: attribute instead of chasing ``context.governor``.
    governor: Optional["ResourceGovernor"] = None


class Iterator:
    """Base class of all physical operators."""

    __slots__ = ("runtime", "next_calls", "tuples_out")

    def __init__(self, runtime: RuntimeState):
        self.runtime = runtime
        #: Lifetime instrumentation counters (never reset by open()).
        self.next_calls = 0
        self.tuples_out = 0

    def open(self) -> None:
        raise NotImplementedError

    def next(self) -> bool:
        """Advance to the next tuple, counting calls and output tuples.

        This template method is also the governance checkpoint: every
        ``next()`` on any operator ticks the active
        :class:`~repro.engine.governor.ResourceGovernor`, which checks
        the deadline/cancel token every N ticks and charges each
        produced tuple against the tuple budget.  The interior loops of
        the d-join, unnest-map and materialization operators all drive
        their inputs through this method, so no ``while True`` in the
        engine can spin without hitting a checkpoint.
        """
        self.next_calls += 1
        governor = self.runtime.governor
        if governor is not None:
            governor.tick()
        if self._next():
            self.tuples_out += 1
            if governor is not None:
                governor.add_tuples()
            return True
        return False

    def _next(self) -> bool:
        """Subclass hook: the actual advance logic."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------

    @property
    def op_name(self) -> str:
        """Operator display name (class name without the It suffix)."""
        name = type(self).__name__
        return name[:-2] if name.endswith("It") else name

    def children(self) -> Sequence["Iterator"]:
        """Input iterators, for tree walks (stats, diagnostics)."""
        return ()

    def reset_counters(self) -> None:
        """Zero this operator's instrumentation counters."""
        self.next_calls = 0
        self.tuples_out = 0

    # ------------------------------------------------------------------

    def drain(self) -> int:
        """Open, count all tuples, close.  Testing convenience."""
        self.open()
        count = 0
        while self.next():
            count += 1
        self.close()
        return count


class UnaryIterator(Iterator):
    """Base for operators with one input."""

    __slots__ = ("child",)

    def __init__(self, runtime: RuntimeState, child: Iterator):
        super().__init__(runtime)
        self.child = child

    def open(self) -> None:
        self.child.open()

    def close(self) -> None:
        self.child.close()

    def children(self) -> Sequence[Iterator]:
        return (self.child,)


class BinaryIterator(Iterator):
    """Base for operators with two inputs."""

    __slots__ = ("left", "right")

    def __init__(self, runtime: RuntimeState, left: Iterator, right: Iterator):
        super().__init__(runtime)
        self.left = left
        self.right = right

    def close(self) -> None:
        self.left.close()
        self.right.close()

    def children(self) -> Sequence[Iterator]:
        return (self.left, self.right)
