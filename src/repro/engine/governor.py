"""Per-query resource governance: deadlines, budgets, cancellation.

A demand-driven iterator tree has no natural bound on how long one
``next()`` chain may run — a pathological query (deeply nested
predicates over a large stored document) can spin for hours while the
engine faithfully enumerates an O(n^k) cross product.  Serving such an
engine to real traffic requires the standard guardrails a full DBMS
layers over its runtime: per-query **deadlines**, **consumption
budgets** and **cooperative cancellation**.

:class:`ResourceGovernor` bundles all three for one evaluation.  It is
carried on the :class:`~repro.engine.context.ExecutionContext`, copied
onto the :class:`~repro.engine.iterator.RuntimeState` when a plan is
prepared, and polled from the instrumented ``next()`` of every physical
operator — including the interior ``while True`` loops of the d-join,
unnest-map and materialization operators, which may run many node
visits per emitted tuple.  Checks are amortized: the governor counts
*events* (``next()`` calls, axis nodes visited) and only consults the
clock every :data:`CHECK_INTERVAL` events, so the ungoverned hot path
pays a single predictable branch.

A tripped limit raises one of the typed governance errors
(:class:`~repro.errors.QueryTimeoutError`,
:class:`~repro.errors.QueryBudgetError`,
:class:`~repro.errors.QueryCancelledError`) — never a partial result.

Thread model: one governor guards one evaluation on one thread.  The
:class:`CancelToken` is the only cross-thread piece — any thread may
:meth:`~CancelToken.cancel` it, and every governor holding the token
aborts at its next check.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import (
    QueryBudgetError,
    QueryCancelledError,
    QueryTimeoutError,
)

#: Events (``next()`` calls / axis visits) between two full limit
#: checks.  Small enough that an abort fires within microseconds of the
#: deadline on any realistic plan, large enough that the check is noise.
CHECK_INTERVAL = 256


class CancelToken:
    """External cancellation signal shared between threads.

    A thin wrapper over :class:`threading.Event` with an optional
    human-readable reason.  Tokens are reusable across queries: every
    governor constructed with the token observes the same flag.
    """

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason = ""

    def cancel(self, reason: str = "") -> None:
        """Trip the token; every governed query holding it aborts."""
        if reason:
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


class ResourceGovernor:
    """Deadline, budgets and cancel token for one query evaluation.

    ``timeout``
        seconds of wall time (``time.monotonic``) the evaluation may
        run.  The deadline is anchored at construction, so a governor
        created at *submission* also bounds queue wait — that is the
        admission-control behavior ``evaluate_concurrent`` relies on.
    ``max_tuples``
        total tuples produced across **all** operators of the plan (the
        engine's unit of work), not just result tuples.
    ``max_bytes``
        bytes buffered by materializing operators (sort, Tmp^cs, cross
        product, MemoX), estimated per snapshot.
    ``cancel``
        a shared :class:`CancelToken`.

    Any subset may be ``None`` (unlimited).  A governor with every
    limit ``None`` is valid but pointless; callers should pass
    ``governor=None`` instead.
    """

    __slots__ = (
        "timeout", "deadline", "started", "max_tuples", "max_bytes",
        "cancel", "tuples", "bytes", "_events", "check_interval",
    )

    def __init__(
        self,
        *,
        timeout: Optional[float] = None,
        max_tuples: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
        check_interval: int = CHECK_INTERVAL,
    ):
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        if max_tuples is not None and max_tuples <= 0:
            raise ValueError("max_tuples must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if check_interval < 1:
            raise ValueError("check_interval must be at least 1")
        self.timeout = timeout
        self.started = time.monotonic()
        self.deadline = (
            self.started + timeout if timeout is not None else None
        )
        self.max_tuples = max_tuples
        self.max_bytes = max_bytes
        self.cancel = cancel
        #: Consumption so far (exposed for stats and tests).
        self.tuples = 0
        self.bytes = 0
        self._events = 0
        self.check_interval = check_interval

    # ------------------------------------------------------------------

    def check(self) -> None:
        """Raise the matching governance error if any limit is exceeded.

        Budgets are checked where they are charged (:meth:`add_tuples`,
        :meth:`add_bytes`); this method enforces the deadline and the
        cancel token, and is what the amortized :meth:`tick` calls.
        """
        if self.cancel is not None and self.cancel.cancelled:
            raise QueryCancelledError(self.cancel.reason)
        if self.deadline is not None:
            now = time.monotonic()
            if now >= self.deadline:
                raise QueryTimeoutError(self.timeout, now - self.started)

    def tick(self, events: int = 1) -> None:
        """Count ``events`` and run :meth:`check` every Nth event.

        This is the engine's hot-path entry point: every instrumented
        ``next()`` call and every axis node visited inside an
        unnest-map loop ticks once.
        """
        self._events += events
        if self._events >= self.check_interval:
            self._events = 0
            self.check()

    def add_tuples(self, count: int = 1) -> None:
        """Charge produced tuples against the tuple budget."""
        self.tuples += count
        if self.max_tuples is not None and self.tuples > self.max_tuples:
            raise QueryBudgetError("tuples", self.max_tuples, self.tuples)

    def add_bytes(self, count: int) -> None:
        """Charge materialized bytes against the byte budget."""
        self.bytes += count
        if self.max_bytes is not None and self.bytes > self.max_bytes:
            raise QueryBudgetError("bytes", self.max_bytes, self.bytes)

    # ------------------------------------------------------------------

    @property
    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()


def snapshot_cost(snapshot: tuple) -> int:
    """Estimated bytes one materialized register snapshot occupies.

    A deliberately cheap estimate (tuple header + one machine word per
    slot, plus a flat allowance per slot for the referenced value) —
    the byte budget bounds runaway materialization, it is not an
    accounting ledger.
    """
    return 56 + 16 * len(snapshot)
