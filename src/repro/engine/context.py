"""Execution contexts for physical plans.

The paper (section 2.2.2): "the free variables of the complete
expressions must be bound by a top-level map supplied as execution
context ... this top-level map also must provide bindings for the XPath
$ variables and the context node".  :class:`ExecutionContext` is that
top-level map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

from repro.dom.node import Node
from repro.errors import UnboundVariableError
from repro.xpath.datamodel import XPathValue

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.governor import ResourceGovernor


@dataclass
class ExecutionContext:
    """Top-level bindings for one plan execution."""

    #: The initial context node (the free ``cn`` of the paper).
    context_node: Node
    #: XPath ``$`` variable bindings.
    variables: Mapping[str, XPathValue] = field(default_factory=dict)
    #: Prefix-to-URI bindings for QName node tests (spec section 2.3).
    namespaces: Mapping[str, str] = field(default_factory=dict)
    #: Context position/size for a top-level ``position()``/``last()``.
    position: int = 1
    size: int = 1
    #: Resource limits for this execution (``None`` = ungoverned).
    governor: Optional["ResourceGovernor"] = None

    def variable(self, name: str) -> XPathValue:
        try:
            return self.variables[name]
        except KeyError:
            raise UnboundVariableError(name) from None
