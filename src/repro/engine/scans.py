"""Leaf iterators: singleton scan, variable scan, snapshot replay."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.engine.iterator import Iterator, RuntimeState
from repro.errors import ExecutionError


class SingletonScanIt(Iterator):
    """□ — yields exactly one (empty) tuple per open."""

    __slots__ = ("_done",)

    def __init__(self, runtime: RuntimeState):
        super().__init__(runtime)
        self._done = True

    def open(self) -> None:
        self._done = False

    def _next(self) -> bool:
        if self._done:
            return False
        self._done = True
        return True

    def close(self) -> None:
        self._done = True


class VarScanIt(Iterator):
    """Unnests a node-set-valued variable into the given register."""

    __slots__ = ("variable", "slot", "_values", "_index")

    def __init__(self, runtime: RuntimeState, variable: str, slot: int):
        super().__init__(runtime)
        self.variable = variable
        self.slot = slot
        self._values: Sequence[object] = ()
        self._index = 0

    def open(self) -> None:
        value = self.runtime.context.variable(self.variable)
        if not isinstance(value, list):
            raise ExecutionError(
                f"variable ${self.variable} used as a node-set but bound to "
                f"{type(value).__name__}"
            )
        self._values = value
        self._index = 0

    def _next(self) -> bool:
        if self._index >= len(self._values):
            return False
        self.runtime.regs[self.slot] = self._values[self._index]
        self._index += 1
        self.runtime.stats["tuples:VarScan"] += 1
        return True

    def close(self) -> None:
        self._values = ()


class SnapshotReplay:
    """Helper for materializing operators: save/restore register subsets.

    ``slots`` are the registers *owned* by the materialized subtree — the
    attributes it produces.  Restoring only those keeps values of the
    enclosing plan (e.g. the outer tuple of a d-join) intact, which is
    what allows MemoX to replay a memoized sequence under a different
    outer tuple.
    """

    __slots__ = ("slots",)

    def __init__(self, slots: Sequence[int]):
        self.slots = tuple(slots)

    def save(self, regs: List[object]) -> tuple:
        return tuple(regs[s] for s in self.slots)

    def restore(self, regs: List[object], snapshot: tuple) -> None:
        for slot, value in zip(self.slots, snapshot):
            regs[slot] = value


class MaterializedScanIt(Iterator):
    """Replays a list of snapshots (used by tests and the bench harness)."""

    __slots__ = ("replayer", "tuples", "_index")

    def __init__(self, runtime: RuntimeState, replayer: SnapshotReplay,
                 tuples: Optional[List[tuple]] = None):
        super().__init__(runtime)
        self.replayer = replayer
        self.tuples = tuples if tuples is not None else []
        self._index = 0

    def open(self) -> None:
        self._index = 0

    def _next(self) -> bool:
        if self._index >= len(self.tuples):
            return False
        self.replayer.restore(self.runtime.regs, self.tuples[self._index])
        self._index += 1
        return True

    def close(self) -> None:
        pass
