"""Executable physical plans.

:class:`PhysicalPlan` owns the iterator tree, the register file and the
execution entry points.  A plan is compiled once per query and can be
executed many times with different contexts; memoizing iterators
(χ^mat, MemoX) are reset between executions so results never leak across
documents or context nodes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator as PyIterator, List, Optional, Sequence

from repro.dom.node import Node
from repro.engine.context import ExecutionContext
from repro.engine.iterator import Iterator, RuntimeState
from repro.engine.tuples import AttributeManager
from repro.errors import ExecutionError
from repro.xpath.datamodel import XPathValue


@dataclass(frozen=True)
class OperatorStats:
    """Instrumentation snapshot of one physical operator."""

    op_id: int
    operator: str
    next_calls: int
    tuples_out: int


class PhysicalPlan:
    """A compiled, repeatedly executable NQE plan."""

    def __init__(
        self,
        root: Iterator,
        runtime: RuntimeState,
        manager: AttributeManager,
        result_slot: int,
        kind: str,
        context_slot: Optional[int] = None,
        position_slot: Optional[int] = None,
        size_slot: Optional[int] = None,
        resettable: Sequence[Iterator] = (),
    ):
        if kind not in ("sequence", "scalar"):
            raise ValueError(f"unknown plan kind {kind!r}")
        self.root = root
        self.runtime = runtime
        self.manager = manager
        self.result_slot = result_slot
        self.kind = kind
        self.context_slot = context_slot
        self.position_slot = position_slot
        self.size_slot = size_slot
        self.resettable = tuple(resettable)

    # ------------------------------------------------------------------

    def _prepare(self, context: ExecutionContext) -> None:
        runtime = self.runtime
        runtime.context = context
        runtime.governor = context.governor
        # Admission check: a query whose deadline passed while it waited
        # for a worker (or whose cancel token already tripped) aborts
        # before touching a single page.
        if context.governor is not None:
            context.governor.check()
        for index in range(len(runtime.regs)):
            runtime.regs[index] = None
        if self.context_slot is not None:
            runtime.regs[self.context_slot] = context.context_node
        if self.position_slot is not None:
            runtime.regs[self.position_slot] = float(context.position)
        if self.size_slot is not None:
            runtime.regs[self.size_slot] = float(context.size)
        for iterator in self.resettable:
            _reset_memo(iterator)

    def execute(self, context: ExecutionContext) -> XPathValue:
        """Run the plan; node-set results are collected as a list."""
        self._prepare(context)
        regs = self.runtime.regs
        self.root.open()
        try:
            if self.kind == "scalar":
                if not self.root.next():
                    raise ExecutionError("scalar plan produced no tuple")
                return regs[self.result_slot]  # type: ignore[return-value]
            results: List[Node] = []
            governor = self.runtime.governor
            while self.root.next():
                results.append(regs[self.result_slot])  # type: ignore[arg-type]
                if governor is not None:
                    # The result list is a materialization like any
                    # other; a star-join producing millions of nodes
                    # trips the byte budget here even though every
                    # operator upstream pipelines.
                    governor.add_bytes(16)
            return results
        finally:
            self.root.close()

    def execute_stream(
        self, context: ExecutionContext
    ) -> PyIterator[XPathValue]:
        """Run the plan yielding result tuples one at a time.

        The lazy sibling of :meth:`execute`: nothing is collected, so a
        consumer that stops early (or pages results out over a network)
        never holds the whole answer in memory.  The iterator tree is
        opened on first ``next()`` and closed when the generator is
        exhausted, garbage-collected, or ``close()``d — callers that
        abandon a stream mid-way must close it (``with
        contextlib.closing`` or by letting it go out of scope) before
        reusing this plan instance.  Governance accounting matches
        :meth:`execute` (each yielded node charges the same
        materialization bytes), so a budget that aborts the materialized
        path aborts the streamed one at the same point.
        """
        self._prepare(context)
        regs = self.runtime.regs
        self.root.open()
        try:
            if self.kind == "scalar":
                if not self.root.next():
                    raise ExecutionError("scalar plan produced no tuple")
                yield regs[self.result_slot]
                return
            governor = self.runtime.governor
            while self.root.next():
                if governor is not None:
                    governor.add_bytes(16)
                yield regs[self.result_slot]
        finally:
            self.root.close()

    def execute_count(self, context: ExecutionContext) -> int:
        """Run the plan counting result tuples (benchmark entry point)."""
        self._prepare(context)
        self.root.open()
        try:
            count = 0
            while self.root.next():
                count += 1
            return count
        finally:
            self.root.close()

    @property
    def stats(self) -> Counter:
        """Runtime counters accumulated across executions."""
        return self.runtime.stats

    def reset_stats(self) -> None:
        self.runtime.stats.clear()
        for iterator in self.iter_operators():
            iterator.reset_counters()

    # ------------------------------------------------------------------

    def iter_operators(self) -> PyIterator[Iterator]:
        """Preorder walk of the iterator tree (main pipeline only;
        iterators nested inside subscripts are not visited)."""
        stack = [self.root]
        while stack:
            iterator = stack.pop()
            yield iterator
            stack.extend(reversed(list(iterator.children())))

    def operator_stats(self) -> "List[OperatorStats]":
        """Per-operator instrumentation counters, in preorder.

        Counters accumulate across executions of this plan; use
        :meth:`reset_stats` to zero them.
        """
        return [
            OperatorStats(
                op_id=index,
                operator=iterator.op_name,
                next_calls=iterator.next_calls,
                tuples_out=iterator.tuples_out,
            )
            for index, iterator in enumerate(self.iter_operators())
        ]


def _reset_memo(iterator: Iterator) -> None:
    """Clear cross-execution memo state on χ^mat / MemoX iterators."""
    from repro.engine.basic import MatMapIt
    from repro.engine.materialize import MemoXIt

    if isinstance(iterator, MatMapIt):
        iterator._memo.clear()
    elif isinstance(iterator, MemoXIt):
        iterator._memo.clear()
