"""Index-backed location steps (physical IdxName / IdxDesc).

Both iterators are *adaptive* unnest-maps: per input tuple they check
whether the context node's document carries fresh structural indexes
(:class:`~repro.index.runtime.DocumentIndexes`).  If it does, the step
is answered from the name index — a binary-search slice of the posting
list over the context's (pre, post) interval — and only the candidate
ids are materialized as nodes.  If it does not (in-memory document,
stale indexes, or a context the interval logic does not cover), the
tuple falls back to ordinary axis navigation, so a compiled index plan
can never produce a wrong answer on a non-indexed target.

Every index candidate is still re-checked through the compiled node
test before it is emitted: the posting list keys the *stored* QName, a
superset of what a plain-name test matches (the test additionally
rejects elements carrying a namespace), so the recheck is what keeps
namespace semantics exact.

Counters (``RuntimeState.stats``):

``index_hits`` / ``index_skips``
    input tuples answered from the index vs. tuples that fell back,
``index_candidates``
    posting-list candidates materialized and tested.
"""

from __future__ import annotations

from repro.dom.node import Node, NodeKind
from repro.engine.iterator import Iterator, RuntimeState
from repro.engine.unnest import UnnestMapIt
from repro.errors import ExecutionError
from repro.xpath.axes import Axis, NodeTestKind, iter_axis

#: Context node kinds whose pre-order id + subtree extent describe the
#: descendant set.  Attribute/namespace proxies share their owner's
#: pre-order rank, so the interval probe would wrongly return the
#: owner's subtree — those contexts take the fallback path.
_INTERVAL_KINDS = (NodeKind.ELEMENT, NodeKind.ROOT)


class _IndexScanIt(UnnestMapIt):
    """Shared adaptive machinery of the two index scans."""

    __slots__ = ("_ids", "_ids_pos", "_doc", "_context_node")

    def __init__(self, runtime: RuntimeState, child: Iterator,
                 in_slot: int, out_slot: int, axis: Axis, name: str):
        super().__init__(runtime, child, in_slot, out_slot, axis,
                         NodeTestKind.NAME, name)
        self._ids = None
        self._ids_pos = 0
        self._doc = None
        self._context_node = None

    def open(self) -> None:
        super().open()
        self._ids = None
        self._doc = None
        self._context_node = None

    def _emit(self, candidate: Node) -> bool:
        """Test one index candidate; bind and count it when it passes."""
        raise NotImplementedError

    def _next(self) -> bool:
        regs = self.runtime.regs
        stats = self.runtime.stats
        governor = self.runtime.governor
        tuples_key = f"tuples:{self.op_name}"
        while True:
            ids = self._ids
            if ids is not None:
                doc = self._doc
                while self._ids_pos < len(ids):
                    node_id = ids[self._ids_pos]
                    self._ids_pos += 1
                    stats["index_candidates"] += 1
                    if governor is not None:
                        governor.tick()
                    candidate = doc.node(node_id)
                    if self._emit(candidate):
                        regs[self.out_slot] = candidate
                        stats[tuples_key] += 1
                        return True
                self._ids = None
            if self._generator is not None:
                test = self._test
                for candidate in self._generator:
                    stats["axis_nodes_visited"] += 1
                    if governor is not None:
                        governor.tick()
                    if test(candidate):
                        regs[self.out_slot] = candidate
                        stats[tuples_key] += 1
                        return True
                self._generator = None
            if not self.child.next():
                return False
            context_node = regs[self.in_slot]
            if context_node is None:
                continue
            if not isinstance(context_node, Node):
                raise ExecutionError(
                    f"location step input is not a node: {context_node!r}"
                )
            self._context_node = context_node
            indexes = getattr(
                getattr(context_node, "document", None), "indexes", None
            )
            if (indexes is not None
                    and context_node.kind in _INTERVAL_KINDS):
                stats["index_hits"] += 1
                self._doc = context_node.document
                self._ids = indexes.element_ids_in_subtree(
                    self.test_name, context_node.sort_key[0]
                )
                self._ids_pos = 0
            else:
                stats["index_skips"] += 1
                self._generator = iter_axis(self.axis, context_node)

    def close(self) -> None:
        super().close()
        self._ids = None
        self._doc = None
        self._context_node = None


class IndexDescendantScanIt(_IndexScanIt):
    """IdxDesc — descendant::name from the posting-list interval slice."""

    __slots__ = ()

    def __init__(self, runtime: RuntimeState, child: Iterator,
                 in_slot: int, out_slot: int, name: str):
        super().__init__(runtime, child, in_slot, out_slot,
                         Axis.DESCENDANT, name)

    def _emit(self, candidate: Node) -> bool:
        return self._test(candidate)


class IndexNameScanIt(_IndexScanIt):
    """IdxName — child::name: the interval slice plus a parent check."""

    __slots__ = ()

    def __init__(self, runtime: RuntimeState, child: Iterator,
                 in_slot: int, out_slot: int, name: str):
        super().__init__(runtime, child, in_slot, out_slot,
                         Axis.CHILD, name)

    def _emit(self, candidate: Node) -> bool:
        # Node proxies are singletons per id, so identity is the exact
        # parent test.
        return (candidate.parent is self._context_node
                and self._test(candidate))
