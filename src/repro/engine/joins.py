"""Join iterators: d-join, cross product, semi-join, anti-join, concat."""

from __future__ import annotations

from typing import List, Sequence

from repro.engine.governor import snapshot_cost
from repro.engine.iterator import BinaryIterator, Iterator, RuntimeState
from repro.engine.scans import SnapshotReplay
from repro.engine.subscripts import Subscript


class DJoinIt(BinaryIterator):
    """The d-join: re-evaluates the dependent side per outer tuple.

    The dependent (right) side reads the outer tuple's attributes
    directly from the shared registers — handing over the context "one
    node at a time" exactly as in section 3.1.1.
    """

    __slots__ = ("_have_left",)

    def __init__(self, runtime: RuntimeState, left: Iterator, right: Iterator):
        super().__init__(runtime, left, right)
        self._have_left = False

    def open(self) -> None:
        self.left.open()
        self._have_left = False

    def _next(self) -> bool:
        while True:
            if not self._have_left:
                if not self.left.next():
                    return False
                self._have_left = True
                self.right.open()
            if self.right.next():
                self.runtime.stats["tuples:DJoin"] += 1
                return True
            self.right.close()
            self._have_left = False

    def close(self) -> None:
        if self._have_left:
            self.right.close()
            self._have_left = False
        self.left.close()


class CrossIt(BinaryIterator):
    """× — materializes the (independent) right side once, then replays."""

    __slots__ = ("replayer", "_tuples", "_index", "_have_left", "_loaded")

    def __init__(self, runtime: RuntimeState, left: Iterator, right: Iterator,
                 replayer: SnapshotReplay):
        super().__init__(runtime, left, right)
        self.replayer = replayer
        self._tuples: List[tuple] = []
        self._index = 0
        self._have_left = False
        self._loaded = False

    def open(self) -> None:
        self.left.open()
        self._have_left = False
        self._loaded = False
        self._tuples = []
        self._index = 0

    def _load_right(self) -> None:
        regs = self.runtime.regs
        governor = self.runtime.governor
        self.right.open()
        while self.right.next():
            snapshot = self.replayer.save(regs)
            if governor is not None:
                governor.add_bytes(snapshot_cost(snapshot))
            self._tuples.append(snapshot)
        self.right.close()
        self._loaded = True

    def _next(self) -> bool:
        if not self._loaded:
            self._load_right()
        regs = self.runtime.regs
        while True:
            if not self._have_left:
                if not self.left.next():
                    return False
                self._have_left = True
                self._index = 0
            if self._index < len(self._tuples):
                self.replayer.restore(regs, self._tuples[self._index])
                self._index += 1
                return True
            self._have_left = False

    def close(self) -> None:
        self.left.close()
        self._tuples = []
        self._loaded = False


class SemiJoinIt(BinaryIterator):
    """⋉_p — emits a left tuple iff some right tuple satisfies p.

    The probe stops at the first witness (existential semantics, mirroring
    the smart aggregation of section 5.2.5).
    """

    __slots__ = ("predicate", "anti")

    def __init__(self, runtime: RuntimeState, left: Iterator, right: Iterator,
                 predicate: Subscript, anti: bool = False):
        super().__init__(runtime, left, right)
        self.predicate = predicate
        self.anti = anti

    def open(self) -> None:
        self.left.open()

    def _next(self) -> bool:
        while self.left.next():
            witness = False
            self.right.open()
            while self.right.next():
                if self.predicate.evaluate_bool(self.runtime):
                    witness = True
                    break
            self.right.close()
            if witness != self.anti:
                self.runtime.stats[
                    "tuples:AntiJoin" if self.anti else "tuples:SemiJoin"
                ] += 1
                return True
        return False

    def close(self) -> None:
        self.left.close()


class ConcatIt(Iterator):
    """⊕ — streams each input in turn.

    All inputs write their result attribute to the same register (the
    attribute manager aliases them), so no copying is involved.
    """

    __slots__ = ("inputs", "_current")

    def __init__(self, runtime: RuntimeState, inputs: Sequence[Iterator]):
        super().__init__(runtime)
        self.inputs = tuple(inputs)
        self._current = 0

    def open(self) -> None:
        self._current = 0
        if self.inputs:
            self.inputs[0].open()

    def _next(self) -> bool:
        while self._current < len(self.inputs):
            if self.inputs[self._current].next():
                return True
            self.inputs[self._current].close()
            self._current += 1
            if self._current < len(self.inputs):
                self.inputs[self._current].open()
        return False

    def close(self) -> None:
        if self._current < len(self.inputs):
            self.inputs[self._current].close()
        self._current = len(self.inputs)

    def children(self) -> Sequence[Iterator]:
        return self.inputs
