"""Registers and the attribute manager.

The physical algebra is a pipeline: most operators never copy tuples.
Instead, a plan owns a single *register file* (a Python list), every
attribute name is mapped to a register index by the
:class:`AttributeManager`, and an operator "produces a tuple" by writing
its output attributes' registers and returning from ``next()``.

The attribute manager also implements the paper's section-5.1 remark that
the compiler "does not emit actual copy operations" for the many
``cn``-aliasing maps and renaming projections: :meth:`AttributeManager.alias`
binds a second name to an existing register.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class AttributeManager:
    """Assigns attribute names to register slots, with aliasing."""

    def __init__(self):
        self._slots: Dict[str, int] = {}
        self._count = 0

    # ------------------------------------------------------------------

    def slot(self, name: str) -> int:
        """The register index of ``name``, allocating one if new."""
        if name not in self._slots:
            self._slots[name] = self._count
            self._count += 1
        return self._slots[name]

    def alias(self, new_name: str, existing_name: str) -> int:
        """Bind ``new_name`` to the register of ``existing_name``.

        This is the no-copy implementation of Π_{a':a} and of the
        χ_{cn:c_i} maps of the canonical translation.
        """
        index = self.slot(existing_name)
        current = self._slots.get(new_name)
        if current is not None and current != index:
            raise ValueError(
                f"attribute {new_name!r} already bound to a different register"
            )
        self._slots[new_name] = index
        return index

    def unify(self, first: str, second: str) -> int:
        """Make two attribute names share one register.

        Whichever name already has a register wins; if both do, they must
        already agree.  Used for renaming projections, whose direction
        depends on whether the consumer (union attribute) or the producer
        (step attribute) was assigned first.
        """
        first_slot = self._slots.get(first)
        second_slot = self._slots.get(second)
        if first_slot is None and second_slot is None:
            index = self.slot(first)
            self._slots[second] = index
            return index
        if first_slot is None:
            self._slots[first] = second_slot  # type: ignore[assignment]
            return second_slot  # type: ignore[return-value]
        if second_slot is None:
            self._slots[second] = first_slot
            return first_slot
        if first_slot != second_slot:
            raise ValueError(
                f"attributes {first!r} and {second!r} are bound to "
                "different registers"
            )
        return first_slot

    def lookup(self, name: str) -> Optional[int]:
        """The register of ``name`` or ``None`` when unassigned."""
        return self._slots.get(name)

    @property
    def register_count(self) -> int:
        return self._count

    def make_registers(self) -> List[object]:
        """A fresh register file sized for this manager."""
        return [None] * self._count

    def names_for(self, index: int) -> List[str]:
        """All attribute names aliased to a register (diagnostics)."""
        return sorted(n for n, s in self._slots.items() if s == index)

    def snapshot_schema(self) -> Dict[str, int]:
        """A copy of the name-to-register mapping (diagnostics)."""
        return dict(self._slots)
