"""Long-lived query-engine sessions (the ``XPathEngine`` object).

One-shot :func:`repro.api.evaluate` re-runs the full six-phase compiler
on every call.  An :class:`XPathEngine` amortizes that cost across a
workload the way production XPath engines do (whole-query reuse, see
*XPath Whole Query Optimization*): it owns

* a lock-striped LRU **compiled-plan cache**
  (:class:`~repro.engine.cache.StripedPlanCache`) keyed by
  ``(query, TranslationOptions, namespace signature)`` with per-shard
  hit, miss, eviction and lookup counters,
* **batch evaluation** — :meth:`XPathEngine.evaluate_many` compiles
  each distinct query once and shares one
  :class:`~repro.engine.context.ExecutionContext` across the batch,
* **concurrent evaluation** — :meth:`XPathEngine.evaluate_concurrent`
  fans a batch out over a ``ThreadPoolExecutor``; compiled plans are
  shared across threads but every thread executes its own plan
  *instance* (:attr:`~repro.compiler.pipeline.CompiledQuery.thread_physical`),
  so iterator state is never shared,
* **identical-request coalescing** — concurrent :meth:`evaluate` calls
  for the same ``(query, target)`` are collapsed into one execution
  whose result every caller shares (the singleflight pattern; safe
  because evaluation is a deterministic pure read),
* an **observability layer** — per-phase compile timings from the
  pipeline, per-operator ``next()``-call/tuple counters summed over all
  thread instances of each plan, the engine-level runtime counters, and
  the storage buffer-manager statistics when the target is page-backed.

:meth:`XPathEngine.stats` snapshots all of it as a JSON-serializable
dataclass; ``python -m repro --explain-stats`` prints the same snapshot
from the command line.  See ``docs/concurrency.md`` for the full
threading model.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import (
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.compiler.improved import TranslationOptions
from repro.compiler.pipeline import CompiledQuery, XPathCompiler
from repro.dom.document import Document
from repro.dom.node import Node
from repro.engine.cache import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_SHARDS,
    CacheStats,
    ShardStats,
    StripedPlanCache,
)
from repro.engine.context import ExecutionContext
from repro.engine.governor import CancelToken, ResourceGovernor
from repro.engine.plan import OperatorStats
from repro.errors import (
    QueryBudgetError,
    QueryCancelledError,
    QueryTimeoutError,
)
from repro.xpath.datamodel import XPathValue

#: Default thread-pool width of :meth:`XPathEngine.evaluate_concurrent`.
DEFAULT_MAX_WORKERS = 4

#: Default result-page size of :meth:`XPathEngine.evaluate_stream`
#: (and of the network server built on it).
DEFAULT_PAGE_SIZE = 256

#: Environment variable supplying an engine-wide default timeout in
#: seconds.  CI sets it to run whole suites under a global deadline; an
#: explicit ``default_timeout``/per-call ``timeout`` wins over it.
TIMEOUT_ENV_VAR = "REPRO_DEFAULT_TIMEOUT"

#: Governance counters always present in ``stats().runtime_counters``
#: (a dashboard must be able to read them before the first abort; the
#: reconciliation invariant is timed_out + cancelled + budget_aborts +
#: completed == submitted).
GOVERNANCE_COUNTERS = (
    "queries_submitted",
    "queries_completed",
    "queries_timed_out",
    "queries_cancelled",
    "budget_aborts",
)


def _env_default_timeout() -> Optional[float]:
    raw = os.environ.get(TIMEOUT_ENV_VAR)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None

#: Targets ``evaluate`` accepts: a node, or anything document-like.
EvalTarget = Union[Document, Node, object]

_NamespaceSig = Tuple[Tuple[str, str], ...]
_PlanKey = Tuple[str, TranslationOptions, _NamespaceSig, Optional[str]]

#: Valid values of the engine's ``index`` option.
INDEX_MODES = ("auto", "off", "force")

#: Valid values of the engine's ``codegen`` option.
CODEGEN_MODES = ("auto", "off", "force")

#: Valid values of the engine's ``optimizer`` option.
OPTIMIZER_MODES = ("heuristic", "cost")

#: Backwards-compatible name: the plan cache is the striped one now.
PlanCache = StripedPlanCache


def resolve_context_node(target: EvalTarget) -> Node:
    """The context node for an evaluation target.

    Accepts a :class:`~repro.dom.node.Node` directly, or any
    document-like object exposing ``root`` (an in-memory
    :class:`Document` or a page-backed
    :class:`~repro.storage.store.StoredDocument`) — the two must be
    interchangeable as ``evaluate`` targets.
    """
    if isinstance(target, Node):
        return target
    root = getattr(target, "root", None)
    if isinstance(root, Node):
        return root
    raise TypeError(
        f"cannot evaluate against {type(target).__name__!r}: expected a "
        "Node or a document-like object with a 'root' node"
    )


def _namespace_signature(
    namespaces: Optional[Mapping[str, str]]
) -> _NamespaceSig:
    if not namespaces:
        return ()
    return tuple(sorted(namespaces.items()))


# ----------------------------------------------------------------------
# Stats dataclasses (all JSON-serializable via asdict)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BufferSnapshot:
    """Page-buffer counters of the most recent storage-backed target.

    The top-level counters describe the data-page buffer; ``by_kind``
    (when the target exposes it) breaks I/O out per page kind — data
    pages vs. the index region's pages — so the stats can attribute
    page reads saved by index routing.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    cached_pages: int = 0
    capacity: int = 0
    by_kind: Optional[Dict[str, Dict[str, int]]] = None

    def to_dict(self) -> dict:
        """A plain-dict rendering (safe for ``json.dumps``)."""
        return asdict(self)


@dataclass(frozen=True)
class EngineStats:
    """One immutable snapshot of an :class:`XPathEngine`'s counters."""

    cache: CacheStats
    #: Number of actual compiler runs (cache misses).
    compile_count: int
    #: Accumulated seconds per compiler phase across all compiles.
    compile_phase_seconds: Dict[str, float]
    #: Per-phase seconds of the most recent compile only.
    last_compile_phase_seconds: Dict[str, float]
    #: Number of plan executions through this engine.
    execution_count: int
    #: Accumulated execution wall time (excludes compile time).
    execution_seconds: float
    #: Per-operator counters of the most recently executed plan.
    operators: List[OperatorStats]
    #: Engine-level runtime counters summed over all cached plans.
    runtime_counters: Dict[str, int]
    #: Buffer-manager counters when the last target was page-backed.
    buffer: Optional[BufferSnapshot] = None
    #: Stats snapshot of the last collection served through
    #: :meth:`XPathEngine.evaluate_collection` (per-shard task
    #: counters, scatter/gather latency, worker recycles), or ``None``
    #: when this engine never served a collection.
    collection: Optional[object] = None

    def to_dict(self) -> dict:
        """A plain-dict rendering (safe for ``json.dumps``).

        Every nested snapshot renders through its own ``to_dict`` —
        the cache, buffer and collection snapshots are independently
        serializable, and composite keys (per-shard counters) come out
        as JSON-legal string keys.
        """
        data = asdict(self)
        data["cache"] = self.cache.to_dict()
        if self.buffer is not None:
            data["buffer"] = self.buffer.to_dict()
        if self.collection is not None and hasattr(
            self.collection, "to_dict"
        ):
            data["collection"] = self.collection.to_dict()
        return data

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)


# ----------------------------------------------------------------------
# Identical-request coalescing (singleflight)
# ----------------------------------------------------------------------


class _InflightCall:
    """One in-flight evaluation other callers can wait on."""

    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result: Optional[XPathValue] = None
        self.error: Optional[BaseException] = None


class Singleflight:
    """Collapse concurrent duplicate calls into one execution.

    The first caller for a key becomes the *leader* and computes; callers
    arriving while the call is in flight wait and share the leader's
    result (or exception).  Nothing is cached past completion, so the
    pattern is correct for any deterministic read — it only ever merges
    work that is running *right now* against the same immutable target.
    """

    __slots__ = ("_lock", "_calls")

    def __init__(self):
        self._lock = threading.Lock()
        self._calls: Dict[Hashable, _InflightCall] = {}

    def do(self, key: Hashable, supplier) -> Tuple[XPathValue, bool]:
        """Run ``supplier`` (or join a running one); returns
        ``(result, led)`` where ``led`` tells whether this caller did
        the work itself."""
        with self._lock:
            call = self._calls.get(key)
            leader = call is None
            if leader:
                call = _InflightCall()
                self._calls[key] = call
        if not leader:
            call.event.wait()
            if call.error is not None:
                raise call.error
            return call.result, False
        # Admission yield: duplicates that arrived with us are runnable
        # but gated on the GIL — give them one scheduling slot to
        # register as followers before we start computing, otherwise a
        # short query can finish before they ever got the lock.
        time.sleep(0)
        try:
            call.result = supplier()
        except BaseException as error:
            call.error = error
            raise
        finally:
            with self._lock:
                self._calls.pop(key, None)
            call.event.set()
        return call.result, True


# ----------------------------------------------------------------------
# The engine session
# ----------------------------------------------------------------------


class XPathEngine:
    """A long-lived XPath evaluation session with a plan cache.

    ::

        engine = XPathEngine()
        doc = parse_document("<a><b/><b/></a>")
        engine.evaluate("count(/a/b)", doc)      # compiles, caches
        engine.evaluate("count(/a/b)", doc)      # cache hit
        engine.evaluate_concurrent(["/a/b", "//b"], doc, max_workers=2)
        print(engine.stats().to_json(indent=2))

    Thread safety: one engine may be shared freely across threads.  The
    plan cache is lock-striped, stat updates hold a narrow engine lock,
    and every executing thread gets a private instance of each compiled
    plan, so iterator and register state is thread-confined.  Concurrent
    ``evaluate`` calls for the same query and target are coalesced into
    a single execution unless ``coalesce=False``.
    """

    def __init__(
        self,
        options: Optional[TranslationOptions] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_shards: int = DEFAULT_SHARDS,
        *,
        coalesce: bool = True,
        max_workers: int = DEFAULT_MAX_WORKERS,
        index: Union[str, bool] = "auto",
        codegen: str = "off",
        optimizer: str = "heuristic",
        default_timeout: Optional[float] = None,
        default_max_tuples: Optional[int] = None,
        default_max_bytes: Optional[int] = None,
    ):
        self.options = options or TranslationOptions()
        if index is True:
            index = "auto"
        elif index is False:
            index = "off"
        if index not in INDEX_MODES:
            raise ValueError(
                f"index must be one of {INDEX_MODES} (or a bool), "
                f"got {index!r}"
            )
        if codegen not in CODEGEN_MODES:
            raise ValueError(
                f"codegen must be one of {CODEGEN_MODES}, got {codegen!r}"
            )
        if optimizer not in OPTIMIZER_MODES:
            raise ValueError(
                f"optimizer must be one of {OPTIMIZER_MODES}, "
                f"got {optimizer!r}"
            )
        #: "auto" — route name steps onto the target's structural
        #: indexes when the path synopsis says they prune; "force" —
        #: route every eligible step regardless of selectivity; "off" —
        #: never consult indexes.
        self.index_mode: str = index
        #: "auto" — execute plans through the Python codegen backend
        #: when they compile, falling back to the interpreter (counted
        #: as ``codegen_fallbacks``); "force" — raise
        #: :class:`~repro.errors.CodegenError` on plans that do not
        #: compile; "off" — always interpret the iterator tree.
        self.codegen_mode: str = codegen
        #: "heuristic" — index routing behind the paper's hard-coded
        #: selectivity gates; "cost" — routing, memo placement and the
        #: EXPLAIN estimates come from the synopsis-fed cost model
        #: (:mod:`repro.compiler.cost`).  Answers never depend on it.
        self.optimizer_mode: str = optimizer
        self.cache = StripedPlanCache(cache_size, cache_shards)
        self.coalesce = coalesce
        self.max_workers = max_workers
        #: Engine-wide governance defaults, applied to every evaluation
        #: that does not override them per call.  ``default_timeout``
        #: falls back to the :data:`TIMEOUT_ENV_VAR` environment
        #: variable so whole deployments (or CI jobs) can impose a
        #: global deadline without touching call sites.
        self.default_timeout = (
            default_timeout if default_timeout is not None
            else _env_default_timeout()
        )
        self.default_max_tuples = default_max_tuples
        self.default_max_bytes = default_max_bytes
        self._singleflight = Singleflight()
        self._lock = threading.Lock()  # engine-level counters only
        self._compile_count = 0
        self._phase_seconds: Counter = Counter()
        self._last_phase_seconds: Dict[str, float] = {}
        self._execution_count = 0
        self._execution_seconds = 0.0
        self._engine_counters: Counter = Counter(
            {name: 0 for name in GOVERNANCE_COUNTERS}
        )
        self._last_plan: Optional[CompiledQuery] = None
        self._last_buffer: Optional[BufferSnapshot] = None
        self._last_collection_stats = None

    # -- compilation ---------------------------------------------------

    def _target_indexes(self, target: Optional[EvalTarget]):
        """The target's fresh :class:`DocumentIndexes`, or ``None``.

        ``None`` when indexing is off, the target is not page-backed,
        or its indexes are missing/stale (the store only publishes
        ``.indexes`` after the structural fingerprint matched).
        """
        if target is None or self.index_mode == "off":
            return None
        document = target
        if isinstance(target, Node):
            document = getattr(target, "document", None)
        elif getattr(target, "root", None) is None:
            return None
        return getattr(document, "indexes", None)

    def compile(
        self,
        query: str,
        *,
        options: Optional[TranslationOptions] = None,
        namespaces: Optional[Mapping[str, str]] = None,
        target: Optional[EvalTarget] = None,
    ) -> CompiledQuery:
        """The compiled plan for ``query``, through the striped cache.

        Plans are keyed by ``(query, options, namespace signature,
        index signature)``: the same query under different translation
        options or prefix bindings is a different plan, and a plan
        routed onto one store's indexes (``target`` page-backed with
        fresh indexes, engine ``index`` mode not ``"off"``) is keyed by
        that store's structural fingerprint — so it is shared across
        targets with identical structure and never replayed against a
        structurally different one.  Only the key's shard is latched;
        compilation runs outside any lock (a racing duplicate compile is
        harmless — last writer wins, both plans are equivalent).
        """
        opts = options or self.options
        indexes = self._target_indexes(target)
        index_sig = indexes.signature if indexes is not None else None
        key = (query, opts, _namespace_signature(namespaces), index_sig)
        plan = self.cache.get(key)
        if plan is not None:
            return plan
        compiled = XPathCompiler(
            opts, index_info=indexes, index_mode=self.index_mode,
            optimizer=self.optimizer_mode,
        ).compile(query)
        self.cache.put(key, compiled)
        with self._lock:
            self._compile_count += 1
            self._phase_seconds.update(compiled.phase_timings)
            self._last_phase_seconds = dict(compiled.phase_timings)
            report = compiled.optimizer_report
            if report is not None:
                self._engine_counters["plans_index_routed"] += (
                    1 if report.index_scans else 0
                )
                self._engine_counters["rewrite_index_scans"] += (
                    report.index_scans
                )
                self._engine_counters["rewrite_index_skips"] += (
                    report.index_skips
                )
                self._engine_counters["opt_rules_fired"] += (
                    report.rules_fired
                )
                self._engine_counters["opt_rules_declined"] += (
                    report.rules_declined
                )
                if report.mode == "cost":
                    self._engine_counters["plans_cost_optimized"] += 1
        return compiled

    def explain(
        self,
        query: str,
        *,
        options: Optional[TranslationOptions] = None,
        namespaces: Optional[Mapping[str, str]] = None,
        target: Optional[EvalTarget] = None,
    ) -> str:
        """The logical plan of ``query`` as an indented tree.

        Pass ``target`` to see the plan as it would compile for that
        evaluation target (index routing included).
        """
        return self.compile(
            query, options=options, namespaces=namespaces, target=target
        ).explain()

    # -- evaluation ----------------------------------------------------

    def make_governor(
        self,
        *,
        timeout: Optional[float] = None,
        max_tuples: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
    ) -> Optional[ResourceGovernor]:
        """A governor combining per-call limits with engine defaults.

        ``None`` when neither the call nor the engine imposes any limit
        (the ungoverned fast path).  The deadline is anchored *now*, so
        governors built at submission time also bound queue wait.
        """
        timeout = timeout if timeout is not None else self.default_timeout
        max_tuples = (
            max_tuples if max_tuples is not None else self.default_max_tuples
        )
        max_bytes = (
            max_bytes if max_bytes is not None else self.default_max_bytes
        )
        if (timeout is None and max_tuples is None and max_bytes is None
                and cancel is None):
            return None
        return ResourceGovernor(
            timeout=timeout, max_tuples=max_tuples, max_bytes=max_bytes,
            cancel=cancel,
        )

    def _resolve_call(self, func_name: str, eval_options, legacy):
        """Fold an :class:`~repro.api.EvalOptions` (or legacy kwargs)
        into ``(resolved, codegen_mode)`` for one evaluation call.

        The ``engine`` field is ignored (this engine *is* the
        strategy); a per-call ``index`` must agree with the engine's
        configured mode — plans are cached per engine, so one call
        cannot re-route them.
        """
        from repro.api import _resolve_eval_options

        resolved = _resolve_eval_options(
            func_name, eval_options, legacy, stacklevel=4
        )
        if (resolved.index is not None
                and resolved.index != self.index_mode):
            raise ValueError(
                f"per-call index={resolved.index!r} conflicts with this "
                f"engine's index mode {self.index_mode!r}; configure "
                "XPathEngine(index=...) instead"
            )
        if (resolved.optimizer is not None
                and resolved.optimizer != self.optimizer_mode):
            raise ValueError(
                f"per-call optimizer={resolved.optimizer!r} conflicts "
                f"with this engine's optimizer mode "
                f"{self.optimizer_mode!r}; configure "
                "XPathEngine(optimizer=...) instead"
            )
        return resolved, resolved.codegen or self.codegen_mode

    def evaluate(
        self,
        query: str,
        target: EvalTarget,
        eval_options=None,
        *,
        options: Optional[TranslationOptions] = None,
        ordered: bool = False,
        variables: Optional[Mapping[str, XPathValue]] = None,
        namespaces: Optional[Mapping[str, str]] = None,
        timeout: Optional[float] = None,
        max_tuples: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
    ) -> XPathValue:
        """Evaluate ``query`` against ``target`` through the plan cache.

        Per-call configuration (variables, namespaces, governance
        limits, a ``codegen`` override) travels in one
        :class:`~repro.api.EvalOptions`; the old individual keyword
        arguments keep working with a :class:`DeprecationWarning`.
        ``options`` (:class:`TranslationOptions`) and ``ordered`` stay
        separate keywords — compiler parameterization and result shape,
        not per-call evaluation state.

        ``timeout`` (seconds), ``max_tuples``, ``max_bytes`` and
        ``cancel`` bound the evaluation; unset limits fall back to the
        engine's ``default_*`` settings.  A tripped limit raises
        :class:`~repro.errors.QueryTimeoutError` /
        :class:`~repro.errors.QueryBudgetError` /
        :class:`~repro.errors.QueryCancelledError` — never a partial
        result — and leaves the plan cache untouched (the compiled plan
        stays cached and is reusable).

        When ``coalesce`` is enabled (the default) and an identical call
        — same query, options, namespaces, target node, ordering,
        backend and governance limits, no variables — is already in
        flight on another thread, this call waits for that execution
        and shares its result instead of re-evaluating (node-set
        results are shallow-copied per caller).  Coalesced followers
        share the leader's deadline, including a governance error if it
        trips.
        """
        resolved, codegen = self._resolve_call(
            "XPathEngine.evaluate",
            eval_options,
            {
                "variables": variables,
                "namespaces": namespaces,
                "timeout": timeout,
                "max_tuples": max_tuples,
                "max_bytes": max_bytes,
                "cancel": cancel,
            },
        )
        eval_variables = resolved.variables
        eval_namespaces = resolved.namespace_map()
        plan = self.compile(
            query, options=options, namespaces=eval_namespaces,
            target=target,
        )
        node = resolve_context_node(target)
        key = self._coalesce_key(
            query, node, eval_variables, eval_namespaces, options, ordered,
            resolved.timeout, resolved.max_tuples, resolved.max_bytes,
            resolved.cancel, codegen,
        )
        if key is None:
            return self._execute(
                plan, node, eval_variables, eval_namespaces, ordered,
                governor=self.make_governor(
                    timeout=resolved.timeout,
                    max_tuples=resolved.max_tuples,
                    max_bytes=resolved.max_bytes,
                    cancel=resolved.cancel,
                ),
                codegen=codegen,
            )

        result, led = self._singleflight.do(
            key,
            lambda: self._execute(
                plan, node, eval_variables, eval_namespaces, ordered,
                governor=self.make_governor(
                    timeout=resolved.timeout,
                    max_tuples=resolved.max_tuples,
                    max_bytes=resolved.max_bytes,
                    cancel=resolved.cancel,
                ),
                codegen=codegen,
            ),
        )
        if not led:
            with self._lock:
                self._engine_counters["coalesced_requests"] += 1
            if isinstance(result, list):
                return list(result)
        return result

    def evaluate_stream(
        self,
        query: str,
        target: EvalTarget,
        eval_options=None,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        options: Optional[TranslationOptions] = None,
        ordered: bool = False,
    ):
        """Evaluate ``query`` lazily, yielding result *pages*.

        The streaming entry point behind the network server
        (:mod:`repro.server`): result items are pulled from the
        iterator engine on demand and handed out in lists of at most
        ``page_size``, so a large node-set answer never lives in memory
        whole — only the page being built does.  Scalar results arrive
        as a single one-item page.

        Semantics relative to :meth:`evaluate`:

        * the plan cache and compile path are identical (a hot query
          streams from a cached plan),
        * governance applies identically — the governor is built when
          the stream is *created*, so the deadline covers the whole
          consumption, and a tripped limit raises the typed governance
          error out of the page iterator mid-stream,
        * streams are **not** coalesced: each consumer paces its own
          pull, so two identical streams cannot share one execution the
          way two :meth:`evaluate` calls do,
        * the returned generator is thread-confined (it drives the
          calling thread's plan instance) and must be closed before the
          same thread evaluates the same query again.

        Governance outcome accounting matches :meth:`evaluate`: one
        ``queries_submitted`` per stream, resolved into exactly one of
        completed / timed-out / cancelled / budget-abort when the
        stream finishes (an abandoned, half-consumed stream counts as
        completed on close).
        """
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        resolved, _codegen = self._resolve_call(
            "XPathEngine.evaluate_stream", eval_options, {}
        )
        eval_namespaces = resolved.namespace_map()
        plan = self.compile(
            query, options=options, namespaces=eval_namespaces,
            target=target,
        )
        node = resolve_context_node(target)
        governor = self.make_governor(
            timeout=resolved.timeout,
            max_tuples=resolved.max_tuples,
            max_bytes=resolved.max_bytes,
            cancel=resolved.cancel,
        )
        with self._lock:
            self._engine_counters["queries_submitted"] += 1
            self._engine_counters["stream_queries"] += 1
        return self._stream_pages(
            plan, node, resolved, eval_namespaces, page_size, ordered,
            governor,
        )

    def _stream_pages(
        self, plan, node, resolved, namespaces, page_size, ordered,
        governor,
    ):
        """Generator body of :meth:`evaluate_stream` (accounting here:
        ``queries_submitted`` was already counted by the caller)."""
        settled = False

        def settle(counter: str) -> None:
            nonlocal settled
            if settled:
                return
            settled = True
            with self._lock:
                self._engine_counters[counter] += 1

        start = time.perf_counter()
        try:
            items = plan.evaluate_stream(
                node, resolved.variables, namespaces,
                ordered=ordered, governor=governor,
            )
            page: List[XPathValue] = []
            yielded = False
            for item in items:
                page.append(item)
                if len(page) >= page_size:
                    with self._lock:
                        self._engine_counters["stream_pages"] += 1
                    yield page
                    page = []
                    yielded = True
            if page or not yielded:
                # The last partial page — or, for an empty result, one
                # empty page so every stream yields at least once.
                with self._lock:
                    self._engine_counters["stream_pages"] += 1
                yield page
        except QueryTimeoutError:
            settle("queries_timed_out")
            raise
        except QueryCancelledError:
            settle("queries_cancelled")
            raise
        except QueryBudgetError:
            settle("budget_aborts")
            raise
        finally:
            settle("queries_completed")
            self._record_execution(
                time.perf_counter() - start, plan, node
            )

    def evaluate_many(
        self,
        queries: Sequence[str],
        target: EvalTarget,
        eval_options=None,
        *,
        options: Optional[TranslationOptions] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        namespaces: Optional[Mapping[str, str]] = None,
        timeout: Optional[float] = None,
        max_tuples: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
    ) -> List[XPathValue]:
        """Evaluate a batch of queries against one target, sequentially.

        Each distinct query is compiled (or fetched) once and a single
        :class:`ExecutionContext` is shared across the batch, so the
        per-call setup cost is paid once instead of ``len(queries)``
        times.  Results are returned in input order.  Per-call
        configuration travels in :class:`~repro.api.EvalOptions` (the
        old individual keyword arguments warn).  The governance limits
        bound the batch *as a whole* — one shared governor, so
        ``timeout`` is a deadline for all of it and the budgets are
        cumulative across the queries.
        """
        resolved, codegen = self._resolve_call(
            "XPathEngine.evaluate_many",
            eval_options,
            {
                "variables": variables,
                "namespaces": namespaces,
                "timeout": timeout,
                "max_tuples": max_tuples,
                "max_bytes": max_bytes,
                "cancel": cancel,
            },
        )
        eval_namespaces = resolved.namespace_map()
        node = resolve_context_node(target)
        plans = [
            self.compile(
                query, options=options, namespaces=eval_namespaces,
                target=target,
            )
            for query in queries
        ]
        context = ExecutionContext(
            context_node=node,
            variables=dict(resolved.variables or {}),
            namespaces=dict(eval_namespaces or {}),
            governor=self.make_governor(
                timeout=resolved.timeout,
                max_tuples=resolved.max_tuples,
                max_bytes=resolved.max_bytes,
                cancel=resolved.cancel,
            ),
        )
        results: List[XPathValue] = []
        start = time.perf_counter()
        for plan in plans:
            generated = (
                plan._select_generated(codegen)
                if codegen != "off"
                else None
            )
            if generated is not None:
                results.append(generated.execute(context))
            else:
                results.append(plan.thread_physical.execute(context))
            self._note_codegen(plan, codegen)
        elapsed = time.perf_counter() - start
        with self._lock:
            self._execution_count += len(plans)
            self._execution_seconds += elapsed
            if plans:
                self._last_plan = plans[-1]
            self._last_buffer = _buffer_snapshot(node)
        return results

    def evaluate_concurrent(
        self,
        queries: Sequence[str],
        target: EvalTarget,
        eval_options=None,
        *,
        max_workers: Optional[int] = None,
        options: Optional[TranslationOptions] = None,
        ordered: bool = False,
        return_exceptions: bool = False,
        variables: Optional[Mapping[str, XPathValue]] = None,
        namespaces: Optional[Mapping[str, str]] = None,
        timeout: Optional[float] = None,
        max_tuples: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
    ) -> List[XPathValue]:
        """Evaluate a batch of queries through a thread pool.

        Compiled plans are shared between workers, but each worker
        thread executes its own plan instance with its own execution
        context, so no iterator or register state ever crosses threads.
        Duplicate queries in the batch are executed once and their
        result is copied into every matching slot (same answer by
        determinism).  Results are returned in input order; exceptions
        from any worker propagate to the caller — unless
        ``return_exceptions=True``, which places each query's exception
        in its result slot instead, so one timed-out query does not
        discard its siblings' answers.

        Governance is *per query* with admission control: each query's
        governor is built at submission time, so its ``timeout``
        deadline covers time spent queued behind other work.  A query
        that reaches a worker with its deadline already expired aborts
        before opening its iterators.  A governed abort only ever fails
        its own future — the worker thread is released back to the pool,
        and neither the plan cache nor other queries in the batch are
        affected (budgets are per query, not shared).
        """
        resolved, codegen = self._resolve_call(
            "XPathEngine.evaluate_concurrent",
            eval_options,
            {
                "variables": variables,
                "namespaces": namespaces,
                "timeout": timeout,
                "max_tuples": max_tuples,
                "max_bytes": max_bytes,
                "cancel": cancel,
            },
        )
        eval_variables = resolved.variables
        eval_namespaces = resolved.namespace_map()
        node = resolve_context_node(target)
        if not queries:
            return []
        distinct = list(dict.fromkeys(queries))
        plans = {
            query: self.compile(
                query, options=options, namespaces=eval_namespaces,
                target=target,
            )
            for query in distinct
        }
        workers = max(
            1, min(max_workers or self.max_workers, len(distinct))
        )

        # Submission-time admission control: one governor per distinct
        # query, anchored *now* — queue wait counts against the deadline.
        governors = {
            query: self.make_governor(
                timeout=resolved.timeout,
                max_tuples=resolved.max_tuples,
                max_bytes=resolved.max_bytes,
                cancel=resolved.cancel,
            )
            for query in distinct
        }

        def run_one(query: str) -> XPathValue:
            return self._execute(
                plans[query], node, eval_variables, eval_namespaces,
                ordered, governor=governors[query], codegen=codegen,
            )

        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-xpath"
        ) as pool:
            futures = {
                query: pool.submit(run_one, query) for query in distinct
            }
            by_query = {}
            first_error: Optional[BaseException] = None
            for query, future in futures.items():
                try:
                    by_query[query] = future.result()
                except BaseException as error:
                    if not return_exceptions and first_error is None:
                        first_error = error
                    by_query[query] = error
        with self._lock:
            self._engine_counters["concurrent_batches"] += 1
            self._engine_counters["concurrent_executions"] += len(distinct)
        if first_error is not None:
            raise first_error
        return [
            list(result) if isinstance(result, list) else result
            for result in (by_query[query] for query in queries)
        ]

    def evaluate_collection(
        self,
        query: str,
        collection,
        eval_options=None,
        *,
        options: Optional[TranslationOptions] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        namespaces: Optional[Mapping[str, str]] = None,
        timeout: Optional[float] = None,
        max_tuples: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
    ):
        """Evaluate ``query`` over every shard of a ``collection``.

        ``collection`` is a :class:`repro.collection.Collection`; the
        scatter-gather itself (plan shipping, per-shard governors,
        global-document-order merge) is the collection's job — this
        method is the *session* layer above it: per-call configuration
        through :class:`~repro.api.EvalOptions`, engine governance
        defaults, outcome accounting into the engine's governance
        counters (one collection query counts as one query), and
        singleflight coalescing.

        The coalesce key includes the **collection fingerprint**, never
        an object identity: two collections holding byte-identical
        documents have distinct fingerprints (the catalog salts them),
        so identical queries against them never share a flight or a
        result — the cross-process analogue of the plan cache's
        index-signature keying.  Unlike node targets (which coalesce by
        ``id``), a fingerprint survives reopening the same collection.

        Governance: per-call limits fall back to the engine defaults;
        the resulting deadline governs the whole scatter (each shard's
        worker derives its governor from it).  A tripped limit raises
        the typed governance error; a crashed or unresponsive worker
        raises :class:`~repro.errors.ShardFailedError`.  Returns the
        merged :class:`repro.collection.CollectionResult`.
        """
        resolved, _codegen = self._resolve_call(
            "XPathEngine.evaluate_collection",
            eval_options,
            {
                "variables": variables,
                "namespaces": namespaces,
                "timeout": timeout,
                "max_tuples": max_tuples,
                "max_bytes": max_bytes,
                "cancel": cancel,
            },
        )
        eval_variables = resolved.variables
        eval_namespaces = resolved.namespace_map()
        eval_timeout = (
            resolved.timeout if resolved.timeout is not None
            else self.default_timeout
        )
        eval_max_tuples = (
            resolved.max_tuples if resolved.max_tuples is not None
            else self.default_max_tuples
        )
        eval_max_bytes = (
            resolved.max_bytes if resolved.max_bytes is not None
            else self.default_max_bytes
        )

        def run():
            with self._lock:
                self._engine_counters["queries_submitted"] += 1
                self._engine_counters["collection_queries"] += 1
            start = time.perf_counter()
            try:
                result = collection.evaluate(
                    query,
                    variables=eval_variables,
                    namespaces=eval_namespaces,
                    options=options,
                    timeout=eval_timeout,
                    max_tuples=eval_max_tuples,
                    max_bytes=eval_max_bytes,
                    cancel=resolved.cancel,
                )
            except QueryTimeoutError:
                with self._lock:
                    self._engine_counters["queries_timed_out"] += 1
                raise
            except QueryCancelledError:
                with self._lock:
                    self._engine_counters["queries_cancelled"] += 1
                raise
            except QueryBudgetError:
                with self._lock:
                    self._engine_counters["budget_aborts"] += 1
                raise
            except BaseException:
                with self._lock:
                    self._engine_counters["queries_completed"] += 1
                raise
            finally:
                with self._lock:
                    self._execution_count += 1
                    self._execution_seconds += (
                        time.perf_counter() - start
                    )
                    self._last_collection_stats = collection.stats()
            with self._lock:
                self._engine_counters["queries_completed"] += 1
            return result

        if not self.coalesce or eval_variables:
            return run()
        key = (
            "collection",
            query,
            collection.fingerprint,
            options or self.options,
            _namespace_signature(eval_namespaces),
            eval_timeout,
            eval_max_tuples,
            eval_max_bytes,
            id(resolved.cancel) if resolved.cancel is not None else None,
        )
        result, led = self._singleflight.do(key, run)
        if not led:
            with self._lock:
                self._engine_counters["coalesced_requests"] += 1
        return result

    def evaluate_collection_stream(
        self,
        query: str,
        collection,
        eval_options=None,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        options: Optional[TranslationOptions] = None,
    ):
        """Evaluate over a collection, yielding result *pages*.

        The collection analogue of :meth:`evaluate_stream`: the serving
        front end pulls ``page_size``-bounded pages instead of the whole
        merged answer at once.  The scatter-gather itself still
        materializes per-shard slices (records must cross process
        boundaries whole), so unlike the single-document stream this
        bounds what is *in flight to the client*, not what the workers
        hold; governance, pruning and the global document-order merge
        are identical to :meth:`evaluate_collection`.  Streams are not
        coalesced, and outcome accounting mirrors
        :meth:`evaluate_stream`: one submission per stream, settled
        into exactly one governance outcome when it finishes.

        Node-set results page over the merged records; scalar results
        page over the per-shard values in shard order.
        """
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        resolved, _codegen = self._resolve_call(
            "XPathEngine.evaluate_collection_stream", eval_options, {}
        )
        eval_timeout = (
            resolved.timeout if resolved.timeout is not None
            else self.default_timeout
        )
        eval_max_tuples = (
            resolved.max_tuples if resolved.max_tuples is not None
            else self.default_max_tuples
        )
        eval_max_bytes = (
            resolved.max_bytes if resolved.max_bytes is not None
            else self.default_max_bytes
        )
        with self._lock:
            self._engine_counters["queries_submitted"] += 1
            self._engine_counters["collection_queries"] += 1
            self._engine_counters["stream_queries"] += 1
        return self._collection_stream_pages(
            query, collection, resolved, options, page_size,
            eval_timeout, eval_max_tuples, eval_max_bytes,
        )

    def _collection_stream_pages(
        self, query, collection, resolved, options, page_size,
        eval_timeout, eval_max_tuples, eval_max_bytes,
    ):
        """Generator body of :meth:`evaluate_collection_stream`
        (``queries_submitted`` was already counted by the caller)."""
        settled = False

        def settle(counter: str) -> None:
            nonlocal settled
            if settled:
                return
            settled = True
            with self._lock:
                self._engine_counters[counter] += 1

        start = time.perf_counter()
        try:
            result = collection.evaluate(
                query,
                variables=resolved.variables,
                namespaces=resolved.namespace_map(),
                options=options,
                timeout=eval_timeout,
                max_tuples=eval_max_tuples,
                max_bytes=eval_max_bytes,
                cancel=resolved.cancel,
            )
            merged = result.merged()
            yielded = False
            for offset in range(0, len(merged), page_size):
                with self._lock:
                    self._engine_counters["stream_pages"] += 1
                yield result.kind, merged[offset:offset + page_size]
                yielded = True
            if not yielded:
                # An empty result still yields one (empty) page so the
                # consumer always learns the result kind.
                with self._lock:
                    self._engine_counters["stream_pages"] += 1
                yield result.kind, []
        except QueryTimeoutError:
            settle("queries_timed_out")
            raise
        except QueryCancelledError:
            settle("queries_cancelled")
            raise
        except QueryBudgetError:
            settle("budget_aborts")
            raise
        finally:
            settle("queries_completed")
            with self._lock:
                self._execution_count += 1
                self._execution_seconds += time.perf_counter() - start
                self._last_collection_stats = collection.stats()

    def count(
        self,
        query: str,
        target: EvalTarget,
        eval_options=None,
        *,
        options: Optional[TranslationOptions] = None,
        variables: Optional[Mapping[str, XPathValue]] = None,
        namespaces: Optional[Mapping[str, str]] = None,
        timeout: Optional[float] = None,
        max_tuples: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
    ) -> int:
        """Count result tuples without materializing them."""
        resolved, codegen = self._resolve_call(
            "XPathEngine.count",
            eval_options,
            {
                "variables": variables,
                "namespaces": namespaces,
                "timeout": timeout,
                "max_tuples": max_tuples,
                "max_bytes": max_bytes,
                "cancel": cancel,
            },
        )
        eval_namespaces = resolved.namespace_map()
        plan = self.compile(
            query, options=options, namespaces=eval_namespaces,
            target=target,
        )
        node = resolve_context_node(target)
        start = time.perf_counter()
        result = plan.count(
            node, variables=resolved.variables,
            namespaces=eval_namespaces,
            governor=self.make_governor(
                timeout=resolved.timeout,
                max_tuples=resolved.max_tuples,
                max_bytes=resolved.max_bytes,
                cancel=resolved.cancel,
            ),
            codegen=codegen,
        )
        self._note_codegen(plan, codegen)
        self._record_execution(time.perf_counter() - start, plan, node)
        return result

    # -- observability -------------------------------------------------

    def stats(self) -> EngineStats:
        """A snapshot of every counter this engine maintains."""
        runtime_counters: Counter = Counter()
        for plan in self.cache.plans():
            runtime_counters.update(plan.stats)
        with self._lock:
            runtime_counters.update(self._engine_counters)
            operators = (
                self._last_plan.operator_stats() if self._last_plan else []
            )
            return EngineStats(
                cache=self.cache.stats(),
                compile_count=self._compile_count,
                compile_phase_seconds=dict(self._phase_seconds),
                last_compile_phase_seconds=dict(self._last_phase_seconds),
                execution_count=self._execution_count,
                execution_seconds=self._execution_seconds,
                operators=operators,
                runtime_counters=dict(runtime_counters),
                buffer=self._last_buffer,
                collection=self._last_collection_stats,
            )

    def reset_stats(self) -> None:
        """Zero every counter (cached plans stay cached)."""
        with self._lock:
            self._compile_count = 0
            self._phase_seconds.clear()
            self._last_phase_seconds = {}
            self._execution_count = 0
            self._execution_seconds = 0.0
            self._engine_counters.clear()
            self._engine_counters.update(
                {name: 0 for name in GOVERNANCE_COUNTERS}
            )
            self._last_buffer = None
            self._last_collection_stats = None
        self.cache.reset_counters()
        for plan in self.cache.plans():
            plan.reset_stats()

    def clear_cache(self) -> None:
        self.cache.clear()

    # ------------------------------------------------------------------

    def _note_codegen(self, plan: CompiledQuery, codegen: str) -> None:
        """Account one execution's backend choice (after the call, when
        the plan's lazily-computed codegen state is settled)."""
        if codegen == "off":
            return
        with self._lock:
            if plan.codegen_state == "compiled":
                self._engine_counters["codegen_compiled"] += 1
            elif plan.codegen_state == "unsupported":
                self._engine_counters["codegen_fallbacks"] += 1

    def _execute(
        self,
        plan: CompiledQuery,
        node: Node,
        variables: Optional[Mapping[str, XPathValue]],
        namespaces: Optional[Mapping[str, str]],
        ordered: bool,
        governor: Optional[ResourceGovernor] = None,
        codegen: str = "off",
    ) -> XPathValue:
        """One governed plan execution, with outcome accounting.

        Every execution increments ``queries_submitted``; exactly one of
        ``queries_completed`` / ``queries_timed_out`` /
        ``queries_cancelled`` / ``budget_aborts`` follows, so the four
        always sum back to ``queries_submitted``.  "Completed" means the
        run ended without a governance abort — a query raising an
        ordinary evaluation error still *completed* its resource-governed
        run.
        """
        with self._lock:
            self._engine_counters["queries_submitted"] += 1
        start = time.perf_counter()
        try:
            result = plan.evaluate(
                node, variables, namespaces, ordered=ordered,
                governor=governor, codegen=codegen,
            )
            self._note_codegen(plan, codegen)
        except QueryTimeoutError:
            with self._lock:
                self._engine_counters["queries_timed_out"] += 1
            raise
        except QueryCancelledError:
            with self._lock:
                self._engine_counters["queries_cancelled"] += 1
            raise
        except QueryBudgetError:
            with self._lock:
                self._engine_counters["budget_aborts"] += 1
            raise
        except BaseException:
            with self._lock:
                self._engine_counters["queries_completed"] += 1
            raise
        with self._lock:
            self._engine_counters["queries_completed"] += 1
        self._note_estimation(plan, result)
        self._record_execution(time.perf_counter() - start, plan, node)
        return result

    def _note_estimation(self, plan: CompiledQuery, result) -> None:
        """Track the cost optimizer's estimation error against reality.

        Only node-set results of cost-optimized plans are scored (the
        estimator predicts result *rows*); ``cost_estimate_abs_error``
        over ``cost_estimates_recorded`` is the mean absolute error.
        """
        report = plan.optimizer_report
        if (report is None or getattr(report, "mode", "heuristic") != "cost"
                or report.est_root_rows is None
                or not isinstance(result, list)):
            return
        estimated = int(round(report.est_root_rows))
        with self._lock:
            self._engine_counters["cost_estimates_recorded"] += 1
            self._engine_counters["cost_estimated_rows"] += estimated
            self._engine_counters["cost_actual_rows"] += len(result)
            self._engine_counters["cost_estimate_abs_error"] += abs(
                estimated - len(result)
            )

    def _coalesce_key(
        self,
        query: str,
        node: Node,
        variables: Optional[Mapping[str, XPathValue]],
        namespaces: Optional[Mapping[str, str]],
        options: Optional[TranslationOptions],
        ordered: bool,
        timeout: Optional[float] = None,
        max_tuples: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
        codegen: str = "off",
    ) -> Optional[Hashable]:
        """The singleflight key, or None when coalescing is off.

        Calls with variables are never coalesced (variable values may be
        unhashable node-sets).  The target enters by identity — the
        leader keeps the node alive for the duration of the flight, so
        the id cannot be recycled mid-call.  The governance limits are
        part of the key: two calls with different deadlines or budgets
        must never share a flight (a tightly-limited leader would fail
        loosely-limited followers), and a distinct cancel token keys a
        distinct flight for the same reason.  The effective ``codegen``
        backend is part of the key too — a forced-compiled call must
        not share a flight with an interpreted one.
        """
        if not self.coalesce or variables:
            return None
        return (
            query,
            options or self.options,
            _namespace_signature(namespaces),
            id(node),
            ordered,
            timeout,
            max_tuples,
            max_bytes,
            id(cancel) if cancel is not None else None,
            codegen,
        )

    def _record_execution(
        self, elapsed: float, plan: CompiledQuery, node: Node
    ) -> None:
        with self._lock:
            self._execution_count += 1
            self._execution_seconds += elapsed
            self._last_plan = plan
            self._last_buffer = _buffer_snapshot(node)


def _buffer_snapshot(node: Node) -> Optional[BufferSnapshot]:
    """Buffer-manager counters when ``node`` is page-backed, else None."""
    document = getattr(node, "document", None)
    buffer = getattr(document, "buffer", None)
    stats = getattr(buffer, "stats", None)
    if stats is None:
        return None
    by_kind = None
    stats_fn = getattr(document, "buffer_stats", None)
    if stats_fn is not None:
        by_kind = stats_fn().get("by_kind")
    return BufferSnapshot(
        hits=stats.hits,
        misses=stats.misses,
        evictions=stats.evictions,
        cached_pages=buffer.cached_pages,
        capacity=buffer.capacity,
        by_kind=by_kind,
    )
