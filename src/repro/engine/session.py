"""Long-lived query-engine sessions (the ``XPathEngine`` object).

One-shot :func:`repro.api.evaluate` re-runs the full six-phase compiler
on every call.  An :class:`XPathEngine` amortizes that cost across a
workload the way production XPath engines do (whole-query reuse, see
*XPath Whole Query Optimization*): it owns

* an LRU **compiled-plan cache** keyed by
  ``(query, TranslationOptions, namespace signature)`` with hit, miss
  and eviction counters,
* **batch evaluation** — :meth:`XPathEngine.evaluate_many` compiles
  each distinct query once and shares one
  :class:`~repro.engine.context.ExecutionContext` across the batch,
* an **observability layer** — per-phase compile timings from the
  pipeline, per-operator ``next()``-call/tuple counters read off the
  iterator tree, the engine-level runtime counters, and the storage
  buffer-manager statistics when the target is page-backed.

:meth:`XPathEngine.stats` snapshots all of it as a JSON-serializable
dataclass; ``python -m repro --explain-stats`` prints the same snapshot
from the command line.
"""

from __future__ import annotations

import json
import threading
import time
from collections import Counter, OrderedDict
from dataclasses import asdict, dataclass, field
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.compiler.improved import TranslationOptions
from repro.compiler.pipeline import CompiledQuery, XPathCompiler
from repro.dom.document import Document
from repro.dom.node import Node
from repro.engine.context import ExecutionContext
from repro.engine.plan import OperatorStats
from repro.xpath.datamodel import XPathValue

#: Default number of compiled plans an engine keeps.
DEFAULT_CACHE_SIZE = 128

#: Targets ``evaluate`` accepts: a node, or anything document-like.
EvalTarget = Union[Document, Node, object]

_NamespaceSig = Tuple[Tuple[str, str], ...]
_PlanKey = Tuple[str, TranslationOptions, _NamespaceSig]


def resolve_context_node(target: EvalTarget) -> Node:
    """The context node for an evaluation target.

    Accepts a :class:`~repro.dom.node.Node` directly, or any
    document-like object exposing ``root`` (an in-memory
    :class:`Document` or a page-backed
    :class:`~repro.storage.store.StoredDocument`) — the two must be
    interchangeable as ``evaluate`` targets.
    """
    if isinstance(target, Node):
        return target
    root = getattr(target, "root", None)
    if isinstance(root, Node):
        return root
    raise TypeError(
        f"cannot evaluate against {type(target).__name__!r}: expected a "
        "Node or a document-like object with a 'root' node"
    )


def _namespace_signature(
    namespaces: Optional[Mapping[str, str]]
) -> _NamespaceSig:
    if not namespaces:
        return ()
    return tuple(sorted(namespaces.items()))


# ----------------------------------------------------------------------
# Stats dataclasses (all JSON-serializable via asdict)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CacheStats:
    """Plan-cache counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0


@dataclass(frozen=True)
class BufferSnapshot:
    """Page-buffer counters of the most recent storage-backed target."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    cached_pages: int = 0
    capacity: int = 0


@dataclass(frozen=True)
class EngineStats:
    """One immutable snapshot of an :class:`XPathEngine`'s counters."""

    cache: CacheStats
    #: Number of actual compiler runs (cache misses).
    compile_count: int
    #: Accumulated seconds per compiler phase across all compiles.
    compile_phase_seconds: Dict[str, float]
    #: Per-phase seconds of the most recent compile only.
    last_compile_phase_seconds: Dict[str, float]
    #: Number of plan executions through this engine.
    execution_count: int
    #: Accumulated execution wall time (excludes compile time).
    execution_seconds: float
    #: Per-operator counters of the most recently executed plan.
    operators: List[OperatorStats]
    #: Engine-level runtime counters summed over all cached plans.
    runtime_counters: Dict[str, int]
    #: Buffer-manager counters when the last target was page-backed.
    buffer: Optional[BufferSnapshot] = None

    def to_dict(self) -> dict:
        """A plain-dict rendering (safe for ``json.dumps``)."""
        return asdict(self)

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)


# ----------------------------------------------------------------------
# The LRU plan cache
# ----------------------------------------------------------------------


class PlanCache:
    """A bounded LRU cache of :class:`CompiledQuery` objects."""

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE):
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self._plans: "OrderedDict[_PlanKey, CompiledQuery]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, key: _PlanKey) -> Optional[CompiledQuery]:
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            self._plans.move_to_end(key)
        else:
            self.misses += 1
        return plan

    def put(self, key: _PlanKey, plan: CompiledQuery) -> None:
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.evictions += 1

    def plans(self) -> Iterable[CompiledQuery]:
        return self._plans.values()

    def clear(self) -> None:
        self._plans.clear()

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._plans),
            capacity=self.capacity,
        )

    def reset_counters(self) -> None:
        self.hits = self.misses = self.evictions = 0


# ----------------------------------------------------------------------
# The engine session
# ----------------------------------------------------------------------


class XPathEngine:
    """A long-lived XPath evaluation session with a plan cache.

    ::

        engine = XPathEngine()
        doc = parse_document("<a><b/><b/></a>")
        engine.evaluate("count(/a/b)", doc)      # compiles, caches
        engine.evaluate("count(/a/b)", doc)      # cache hit
        print(engine.stats().to_json(indent=2))

    Thread safety: cache lookups and stat updates hold an internal
    lock; plan *execution* does not (each compiled plan owns mutable
    register state), so share an engine across threads only for
    compilation, or give each thread its own engine.
    """

    def __init__(
        self,
        options: Optional[TranslationOptions] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ):
        self.options = options or TranslationOptions()
        self.cache = PlanCache(cache_size)
        self._lock = threading.Lock()
        self._compile_count = 0
        self._phase_seconds: Counter = Counter()
        self._last_phase_seconds: Dict[str, float] = {}
        self._execution_count = 0
        self._execution_seconds = 0.0
        self._last_plan: Optional[CompiledQuery] = None
        self._last_buffer: Optional[BufferSnapshot] = None

    # -- compilation ---------------------------------------------------

    def compile(
        self,
        query: str,
        *,
        options: Optional[TranslationOptions] = None,
        namespaces: Optional[Mapping[str, str]] = None,
    ) -> CompiledQuery:
        """The compiled plan for ``query``, through the LRU cache.

        Plans are keyed by ``(query, options, namespace signature)``:
        the same query under different translation options or prefix
        bindings is a different plan.
        """
        opts = options or self.options
        key = (query, opts, _namespace_signature(namespaces))
        with self._lock:
            plan = self.cache.get(key)
            if plan is not None:
                return plan
        # Compile outside the lock; a racing duplicate compile is
        # harmless (last writer wins, both plans are equivalent).
        compiled = XPathCompiler(opts).compile(query)
        with self._lock:
            self.cache.put(key, compiled)
            self._compile_count += 1
            self._phase_seconds.update(compiled.phase_timings)
            self._last_phase_seconds = dict(compiled.phase_timings)
        return compiled

    def explain(
        self,
        query: str,
        *,
        options: Optional[TranslationOptions] = None,
        namespaces: Optional[Mapping[str, str]] = None,
    ) -> str:
        """The logical plan of ``query`` as an indented tree."""
        return self.compile(
            query, options=options, namespaces=namespaces
        ).explain()

    # -- evaluation ----------------------------------------------------

    def evaluate(
        self,
        query: str,
        target: EvalTarget,
        *,
        variables: Optional[Mapping[str, XPathValue]] = None,
        namespaces: Optional[Mapping[str, str]] = None,
        options: Optional[TranslationOptions] = None,
        ordered: bool = False,
    ) -> XPathValue:
        """Evaluate ``query`` against ``target`` through the plan cache."""
        plan = self.compile(query, options=options, namespaces=namespaces)
        node = resolve_context_node(target)
        start = time.perf_counter()
        result = plan.evaluate(
            node, variables, namespaces, ordered=ordered
        )
        self._record_execution(time.perf_counter() - start, plan, node)
        return result

    def evaluate_many(
        self,
        queries: Sequence[str],
        target: EvalTarget,
        *,
        variables: Optional[Mapping[str, XPathValue]] = None,
        namespaces: Optional[Mapping[str, str]] = None,
        options: Optional[TranslationOptions] = None,
    ) -> List[XPathValue]:
        """Evaluate a batch of queries against one target.

        Each distinct query is compiled (or fetched) once and a single
        :class:`ExecutionContext` is shared across the batch, so the
        per-call setup cost is paid once instead of ``len(queries)``
        times.  Results are returned in input order.
        """
        node = resolve_context_node(target)
        plans = [
            self.compile(query, options=options, namespaces=namespaces)
            for query in queries
        ]
        context = ExecutionContext(
            context_node=node,
            variables=dict(variables or {}),
            namespaces=dict(namespaces or {}),
        )
        results: List[XPathValue] = []
        start = time.perf_counter()
        for plan in plans:
            results.append(plan.physical.execute(context))
        elapsed = time.perf_counter() - start
        with self._lock:
            self._execution_count += len(plans)
            self._execution_seconds += elapsed
            if plans:
                self._last_plan = plans[-1]
            self._last_buffer = _buffer_snapshot(node)
        return results

    def count(
        self,
        query: str,
        target: EvalTarget,
        *,
        variables: Optional[Mapping[str, XPathValue]] = None,
        namespaces: Optional[Mapping[str, str]] = None,
        options: Optional[TranslationOptions] = None,
    ) -> int:
        """Count result tuples without materializing them."""
        plan = self.compile(query, options=options, namespaces=namespaces)
        node = resolve_context_node(target)
        start = time.perf_counter()
        result = plan.count(
            node, variables=variables, namespaces=namespaces
        )
        self._record_execution(time.perf_counter() - start, plan, node)
        return result

    # -- observability -------------------------------------------------

    def stats(self) -> EngineStats:
        """A snapshot of every counter this engine maintains."""
        with self._lock:
            runtime_counters: Counter = Counter()
            for plan in self.cache.plans():
                runtime_counters.update(plan.physical.stats)
            operators = (
                self._last_plan.operator_stats() if self._last_plan else []
            )
            return EngineStats(
                cache=self.cache.stats(),
                compile_count=self._compile_count,
                compile_phase_seconds=dict(self._phase_seconds),
                last_compile_phase_seconds=dict(self._last_phase_seconds),
                execution_count=self._execution_count,
                execution_seconds=self._execution_seconds,
                operators=operators,
                runtime_counters=dict(runtime_counters),
                buffer=self._last_buffer,
            )

    def reset_stats(self) -> None:
        """Zero every counter (cached plans stay cached)."""
        with self._lock:
            self.cache.reset_counters()
            self._compile_count = 0
            self._phase_seconds.clear()
            self._last_phase_seconds = {}
            self._execution_count = 0
            self._execution_seconds = 0.0
            self._last_buffer = None
            for plan in self.cache.plans():
                plan.physical.reset_stats()

    def clear_cache(self) -> None:
        with self._lock:
            self.cache.clear()

    # ------------------------------------------------------------------

    def _record_execution(
        self, elapsed: float, plan: CompiledQuery, node: Node
    ) -> None:
        with self._lock:
            self._execution_count += 1
            self._execution_seconds += elapsed
            self._last_plan = plan
            self._last_buffer = _buffer_snapshot(node)


def _buffer_snapshot(node: Node) -> Optional[BufferSnapshot]:
    """Buffer-manager counters when ``node`` is page-backed, else None."""
    document = getattr(node, "document", None)
    buffer = getattr(document, "buffer", None)
    stats = getattr(buffer, "stats", None)
    if stats is None:
        return None
    return BufferSnapshot(
        hits=stats.hits,
        misses=stats.misses,
        evictions=stats.evictions,
        cached_pages=buffer.cached_pages,
        capacity=buffer.capacity,
    )
