"""Pipelined unary iterators: select, maps, duplicate elimination."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.engine.iterator import RuntimeState, UnaryIterator, Iterator
from repro.engine.subscripts import Subscript


class SelectIt(UnaryIterator):
    """σ_p — filters tuples by a subscript predicate."""

    __slots__ = ("predicate",)

    def __init__(self, runtime: RuntimeState, child: Iterator,
                 predicate: Subscript):
        super().__init__(runtime, child)
        self.predicate = predicate

    def _next(self) -> bool:
        while self.child.next():
            if self.predicate.evaluate_bool(self.runtime):
                self.runtime.stats["tuples:Select"] += 1
                return True
        return False


class MapIt(UnaryIterator):
    """χ — computes an attribute into a register for every tuple."""

    __slots__ = ("slot", "expr")

    def __init__(self, runtime: RuntimeState, child: Iterator, slot: int,
                 expr: Subscript):
        super().__init__(runtime, child)
        self.slot = slot
        self.expr = expr

    def _next(self) -> bool:
        if not self.child.next():
            return False
        self.runtime.regs[self.slot] = self.expr.evaluate(self.runtime)
        return True


class MatMapIt(UnaryIterator):
    """χ^mat — a map memoizing results keyed by its free variables.

    The memo table lives for the whole plan execution (it is *not*
    cleared on re-open), which is the point: re-evaluations under
    different outer tuples with equal free-variable values hit the cache
    (section 4.3.2 / Hellerstein & Naughton).
    """

    __slots__ = ("slot", "expr", "key_slots", "_memo")

    def __init__(self, runtime: RuntimeState, child: Iterator, slot: int,
                 expr: Subscript, key_slots: Sequence[int]):
        super().__init__(runtime, child)
        self.slot = slot
        self.expr = expr
        self.key_slots = tuple(key_slots)
        self._memo: Dict[tuple, object] = {}

    def _next(self) -> bool:
        if not self.child.next():
            return False
        regs = self.runtime.regs
        key = tuple(_hashable(regs[s]) for s in self.key_slots)
        if key in self._memo:
            self.runtime.stats["matmap_hits"] += 1
            regs[self.slot] = self._memo[key]
        else:
            self.runtime.stats["matmap_misses"] += 1
            value = self.expr.evaluate(self.runtime)
            self._memo[key] = value
            regs[self.slot] = value
        return True


def _hashable(value: object) -> object:
    """Memo keys must be hashable; node-set values become tuples."""
    if isinstance(value, list):
        return tuple(value)
    return value


class PosMapIt(UnaryIterator):
    """χ_{cp:counter++} — 1-based position counting.

    With ``context_slot`` (stacked translation) the counter resets when
    the input context node changes (section 4.3.1); without (canonical
    translation) each ``open()`` — one dependent d-join evaluation — is
    one context.
    """

    __slots__ = ("slot", "context_slot", "_counter", "_last_context",
                 "_fresh")

    def __init__(self, runtime: RuntimeState, child: Iterator, slot: int,
                 context_slot: Optional[int] = None):
        super().__init__(runtime, child)
        self.slot = slot
        self.context_slot = context_slot
        self._counter = 0
        self._last_context: object = None
        self._fresh = True

    def open(self) -> None:
        super().open()
        self._counter = 0
        self._fresh = True

    def _next(self) -> bool:
        if not self.child.next():
            return False
        if self.context_slot is not None:
            context = self.runtime.regs[self.context_slot]
            # Equality, not identity: the storage layer may hand out fresh
            # proxy objects for the same stored node.
            if self._fresh or context != self._last_context:
                self._counter = 0
                self._last_context = context
                self._fresh = False
        self._counter += 1
        self.runtime.regs[self.slot] = float(self._counter)
        return True


class ProjectDupIt(UnaryIterator):
    """Π^D — duplicate elimination on one register, pipelined.

    Keeps the first occurrence; later duplicates are skipped.  Operates
    on node identity (nodes hash by document and sort key).
    """

    __slots__ = ("slot", "_seen")

    def __init__(self, runtime: RuntimeState, child: Iterator, slot: int):
        super().__init__(runtime, child)
        self.slot = slot
        self._seen: set = set()

    def open(self) -> None:
        super().open()
        self._seen = set()

    def _next(self) -> bool:
        regs = self.runtime.regs
        while self.child.next():
            value = _hashable(regs[self.slot])
            if value not in self._seen:
                self._seen.add(value)
                return True
            self.runtime.stats["dupelim_dropped"] += 1
        return False


class PassThroughIt(UnaryIterator):
    """Physical no-op for logical projections.

    Renaming projections compile to register aliases; the pass-through
    remains only so plan shapes stay recognizable in diagnostics.
    """

    __slots__ = ()

    def _next(self) -> bool:
        return self.child.next()
