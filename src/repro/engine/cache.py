"""The lock-striped compiled-plan cache.

PR 1's :class:`PlanCache` guarded one ``OrderedDict`` with the engine's
single mutex, so every lookup from every thread serialized on the same
lock.  :class:`StripedPlanCache` shards the key space over N independent
LRU segments, each with its own latch and its own hit/miss/eviction
counters — concurrent readers of *different* queries never touch the
same lock, and the counters can be read per shard (the stress tests
assert ``hits + misses == lookups`` shard by shard) or aggregated into
the engine's :meth:`~repro.engine.session.XPathEngine.stats` snapshot.

Capacity is distributed over the shards (shard ``i`` holds
``ceil``/``floor`` of ``capacity / shards``); the shard count is clamped
to the capacity so a tiny cache degenerates to fewer shards rather than
to zero-capacity segments.  LRU order is therefore *per shard*: with
more than one shard the global eviction order is approximate, which is
the standard striping trade-off.  Construct with ``shards=1`` when exact
global LRU semantics are required (some session tests do).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Hashable, Iterable, List, Optional, Tuple, TypeVar

#: Default number of compiled plans a cache keeps.
DEFAULT_CACHE_SIZE = 128

#: Default number of independent lock-striped segments.
DEFAULT_SHARDS = 8

V = TypeVar("V")


@dataclass(frozen=True)
class ShardStats:
    """Counters of one cache shard."""

    shard: int
    hits: int
    misses: int
    evictions: int
    lookups: int
    size: int
    capacity: int

    def to_dict(self) -> dict:
        """A plain-dict rendering (safe for ``json.dumps``)."""
        return asdict(self)


@dataclass(frozen=True)
class CacheStats:
    """Aggregated plan-cache counters (sum over all shards)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0
    lookups: int = 0
    shard_count: int = 1
    shards: Tuple[ShardStats, ...] = ()

    def to_dict(self) -> dict:
        """A plain-dict rendering (safe for ``json.dumps``); the
        per-shard snapshots become a list of dicts."""
        data = asdict(self)
        data["shards"] = [shard.to_dict() for shard in self.shards]
        return data


class CacheShard:
    """One latch-protected LRU segment of the striped cache."""

    __slots__ = (
        "capacity", "_lock", "_entries",
        "hits", "misses", "evictions", "lookups",
    )

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.lookups = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[object]:
        with self._lock:
            self.lookups += 1
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
            else:
                self.misses += 1
            return entry

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def values(self) -> List[object]:
        with self._lock:
            return list(self._entries.values())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def reset_counters(self) -> None:
        with self._lock:
            self.hits = self.misses = self.evictions = self.lookups = 0

    def counters(self) -> Tuple[int, int, int, int]:
        """One consistent ``(hits, misses, evictions, lookups)`` read.

        Taken under the shard latch, so the tuple can never witness a
        half-applied ``get()`` (lookup bumped, hit/miss not yet) or a
        half-raced ``reset_counters()`` — within the tuple,
        ``hits + misses == lookups`` always holds.
        """
        with self._lock:
            return (self.hits, self.misses, self.evictions, self.lookups)

    def stats(self, index: int) -> ShardStats:
        with self._lock:
            return ShardStats(
                shard=index,
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                lookups=self.lookups,
                size=len(self._entries),
                capacity=self.capacity,
            )


class StripedPlanCache:
    """A bounded LRU cache sharded over independently locked segments."""

    def __init__(
        self,
        capacity: int = DEFAULT_CACHE_SIZE,
        shards: int = DEFAULT_SHARDS,
    ):
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        if shards < 1:
            raise ValueError("plan cache needs at least one shard")
        shards = min(shards, capacity)
        base, extra = divmod(capacity, shards)
        self.capacity = capacity
        self._shards: Tuple[CacheShard, ...] = tuple(
            CacheShard(base + (1 if index < extra else 0))
            for index in range(shards)
        )

    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def _shard(self, key: Hashable) -> CacheShard:
        return self._shards[hash(key) % len(self._shards)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def get(self, key: Hashable) -> Optional[object]:
        return self._shard(key).get(key)

    def put(self, key: Hashable, value: object) -> None:
        self._shard(key).put(key, value)

    def plans(self) -> Iterable[object]:
        for shard in self._shards:
            yield from shard.values()

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    def reset_counters(self) -> None:
        for shard in self._shards:
            shard.reset_counters()

    # -- aggregated counters (back-compat with the flat PlanCache) -----
    #
    # Each property takes one consistent snapshot per shard, so a
    # concurrent get()/reset_counters() can never be observed half-way.
    # The four *separate* properties are still four separate moments in
    # time — invariant checks (hits + misses == lookups) must go through
    # counters() or stats(), which read every counter of a shard under
    # that shard's latch in a single acquisition.

    def counters(self) -> Tuple[int, int, int, int]:
        """Aggregated ``(hits, misses, evictions, lookups)``, jointly
        consistent: the sum of per-shard latched snapshots, so the
        tuple satisfies ``hits + misses == lookups`` even while other
        threads look plans up and reset counters concurrently."""
        hits = misses = evictions = lookups = 0
        for shard in self._shards:
            h, m, e, l = shard.counters()
            hits += h
            misses += m
            evictions += e
            lookups += l
        return (hits, misses, evictions, lookups)

    @property
    def hits(self) -> int:
        return self.counters()[0]

    @property
    def misses(self) -> int:
        return self.counters()[1]

    @property
    def evictions(self) -> int:
        return self.counters()[2]

    @property
    def lookups(self) -> int:
        return self.counters()[3]

    def stats(self) -> CacheStats:
        per_shard = tuple(
            shard.stats(index) for index, shard in enumerate(self._shards)
        )
        return CacheStats(
            hits=sum(s.hits for s in per_shard),
            misses=sum(s.misses for s in per_shard),
            evictions=sum(s.evictions for s in per_shard),
            size=sum(s.size for s in per_shard),
            capacity=self.capacity,
            lookups=sum(s.lookups for s in per_shard),
            shard_count=len(per_shard),
            shards=per_shard,
        )
