"""Subscript evaluation: the bridge between iterators and scalar code.

A physical operator's subscript (selection predicate, map expression,
join predicate) is a :class:`Subscript`: something that can be evaluated
against the current register file.  Two implementations exist:

* :class:`InterpSubscript` — a tree-walking reference evaluator over the
  scalar IR; simple, used as the differential-testing baseline.
* :class:`repro.nvm.machine.NVMSubscript` — an assembled NVM program,
  the default, matching the paper's section 5.2.2.

Nested sequence-valued plans inside subscripts are represented by
:class:`NestedPlan` — a compiled sub-iterator plus an aggregate spec.
Evaluating one runs the sub-iterator to completion (with the smart-
aggregation early exit of section 5.2.5) and yields a scalar, exactly
like the paper's "commands that can access results of nested iterators"
(section 5.2.3).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.dom.node import Node
from repro.errors import ExecutionError
from repro.xpath.datamodel import (
    XPathType,
    arith,
    compare,
    to_boolean,
    to_number,
    to_string,
)
from repro.xpath import functions as fnlib
from repro.algebra import scalar as S

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.iterator import Iterator, RuntimeState


class Subscript:
    """Evaluates to an XPath value against the current registers."""

    __slots__ = ()

    def evaluate(self, runtime: "RuntimeState") -> object:
        raise NotImplementedError

    def evaluate_bool(self, runtime: "RuntimeState") -> bool:
        return to_boolean(self.evaluate(runtime))  # type: ignore[arg-type]


class NestedPlan:
    """A compiled nested iterator aggregated to a scalar value."""

    __slots__ = ("iterator", "agg", "input_slot")

    def __init__(self, iterator: "Iterator", agg: str, input_slot: int):
        self.iterator = iterator
        self.agg = agg
        self.input_slot = input_slot

    def evaluate(self, runtime: "RuntimeState") -> object:
        runtime.stats["nested_plan_evals"] += 1
        return run_aggregate(
            self.iterator, self.agg, self.input_slot, runtime
        )


def run_aggregate(
    iterator: "Iterator", agg: str, input_slot: int, runtime: "RuntimeState"
) -> object:
    """Drain ``iterator`` applying ``agg`` to the values in ``input_slot``.

    Implements the smart aggregation of section 5.2.5: ``exists`` stops
    after the first tuple instead of draining the input.
    """
    regs = runtime.regs
    iterator.open()
    try:
        if agg == "exists":
            found = iterator.next()
            if found:
                runtime.stats["agg_early_exits"] += 1
            return found
        if agg == "count":
            count = 0
            while iterator.next():
                count += 1
            return float(count)
        if agg == "sum":
            total = 0.0
            while iterator.next():
                total += _as_number(regs[input_slot])
            return total
        if agg in ("max", "min"):
            # NaN inputs cannot satisfy any comparison, so they are
            # ignored; the aggregate is NaN only when no comparable value
            # exists (making the enclosing existential comparison false).
            best = float("nan")
            while iterator.next():
                value = _as_number(regs[input_slot])
                if math.isnan(value):
                    continue
                if math.isnan(best):
                    best = value
                elif agg == "max" and value > best:
                    best = value
                elif agg == "min" and value < best:
                    best = value
            return best
        if agg == "first_string":
            node = _first_node(iterator, input_slot, regs)
            return node.string_value() if node is not None else ""
        if agg == "first_node":
            return _first_node(iterator, input_slot, regs)
        if agg == "collect":
            values: List[object] = []
            while iterator.next():
                values.append(regs[input_slot])
            return values
        raise ExecutionError(f"unknown aggregate {agg!r}")
    finally:
        iterator.close()


def _first_node(iterator: "Iterator", slot: int, regs: List[object]) -> Optional[Node]:
    """The input node first in document order (node-sets are unordered)."""
    best: Optional[Node] = None
    while iterator.next():
        node = regs[slot]
        if isinstance(node, Node) and (best is None or node.sort_key < best.sort_key):
            best = node
    return best


def _as_number(value: object) -> float:
    if isinstance(value, Node):
        return to_number(value.string_value())
    return to_number(value)  # type: ignore[arg-type]


def _as_string(value: object) -> str:
    if isinstance(value, Node):
        return value.string_value()
    return to_string(value)  # type: ignore[arg-type]


def coerce(value: object, target: XPathType) -> object:
    """Runtime conversion, treating a bare Node as its string-value."""
    if isinstance(value, Node):
        if target == XPathType.STRING:
            return value.string_value()
        if target == XPathType.NUMBER:
            return to_number(value.string_value())
        if target == XPathType.BOOLEAN:
            return True  # a node exists
        return value
    if target == XPathType.STRING:
        return to_string(value)  # type: ignore[arg-type]
    if target == XPathType.NUMBER:
        return to_number(value)  # type: ignore[arg-type]
    if target == XPathType.BOOLEAN:
        return to_boolean(value)  # type: ignore[arg-type]
    return value


class InterpSubscript(Subscript):
    """Tree-walking reference implementation of subscript evaluation.

    ``slots`` maps attribute names of :class:`~repro.algebra.scalar.SAttr`
    nodes to register indices; ``nested`` maps :class:`SNested` IR objects
    (by identity) to their compiled :class:`NestedPlan`.
    """

    __slots__ = ("expr", "slots", "nested")

    def __init__(
        self,
        expr: S.Scalar,
        slots: Dict[str, int],
        nested: Dict[int, NestedPlan],
    ):
        self.expr = expr
        self.slots = slots
        self.nested = nested

    def evaluate(self, runtime: "RuntimeState") -> object:
        return self._eval(self.expr, runtime)

    # ------------------------------------------------------------------

    def _eval(self, expr: S.Scalar, runtime: "RuntimeState") -> object:
        if isinstance(expr, S.SConst):
            return expr.value
        if isinstance(expr, S.SAttr):
            return runtime.regs[self.slots[expr.name]]
        if isinstance(expr, S.SVar):
            return runtime.context.variable(expr.name)
        if isinstance(expr, S.SNested):
            return self.nested[id(expr)].evaluate(runtime)
        if isinstance(expr, S.SStringValue):
            return _as_string(self._eval(expr.operand, runtime))
        if isinstance(expr, S.SConvert):
            return coerce(self._eval(expr.operand, runtime), expr.target)
        if isinstance(expr, S.SArith):
            return arith(
                expr.op,
                _as_number(self._eval(expr.left, runtime)),
                _as_number(self._eval(expr.right, runtime)),
            )
        if isinstance(expr, S.SNeg):
            return -_as_number(self._eval(expr.operand, runtime))
        if isinstance(expr, S.SCmp):
            left = self._normalize_cmp(self._eval(expr.left, runtime))
            right = self._normalize_cmp(self._eval(expr.right, runtime))
            return compare(expr.op, left, right)
        if isinstance(expr, S.SBool):
            left = to_boolean(self._eval(expr.left, runtime))  # type: ignore[arg-type]
            if expr.op == "and":
                return left and to_boolean(self._eval(expr.right, runtime))  # type: ignore[arg-type]
            return left or to_boolean(self._eval(expr.right, runtime))  # type: ignore[arg-type]
        if isinstance(expr, S.SNot):
            return not to_boolean(self._eval(expr.operand, runtime))  # type: ignore[arg-type]
        if isinstance(expr, S.SFunc):
            args = [self._eval(arg, runtime) for arg in expr.args]
            return call_builtin(expr.name, args, runtime)
        if isinstance(expr, S.SDeref):
            return deref(self._eval(expr.operand, runtime), runtime)
        if isinstance(expr, S.STokenize):
            return _as_string(self._eval(expr.operand, runtime)).split()
        if isinstance(expr, S.SRoot):
            node = self._eval(expr.operand, runtime)
            if not isinstance(node, Node):
                raise ExecutionError("root() requires a node operand")
            return node.root()
        raise ExecutionError(f"cannot evaluate scalar {type(expr).__name__}")

    @staticmethod
    def _normalize_cmp(value: object) -> object:
        """Bare nodes in comparisons behave as singleton node-sets."""
        if isinstance(value, Node):
            return [value]
        return value


# ----------------------------------------------------------------------
# Builtin function table shared by the interpreter subscripts and the NVM
# ----------------------------------------------------------------------

def deref(value: object, runtime: "RuntimeState") -> Optional[Node]:
    """Dereference an ID string against the context document."""
    document = runtime.context.context_node.document
    if document is None:
        return None
    return document.get_element_by_id(_as_string(value))


def _node_arg(value: object) -> Optional[Node]:
    """Interpret a builtin argument as a node (first in doc order)."""
    if isinstance(value, Node):
        return value
    if isinstance(value, list):
        nodes = [v for v in value if isinstance(v, Node)]
        if not nodes:
            return None
        return min(nodes, key=lambda n: n.sort_key)
    return None


def call_builtin(name: str, args: List[object], runtime: "RuntimeState") -> object:
    """Invoke a context-free builtin by name.

    The translator has already eliminated ``position()``/``last()``
    (attribute reads) and the implicit-context forms (explicit ``cn``
    argument), so the builtins here are pure functions — with the node-
    specific variants the algebra needs (``name_of`` etc.).
    """
    if name == "pred_truth":
        # Spec 2.4 dispatch for dynamically typed predicate values: a
        # number is a position test, everything else converts to boolean.
        value, position = args
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value) == to_number(position)  # type: ignore[arg-type]
        if isinstance(value, Node):
            return True
        return to_boolean(value)  # type: ignore[arg-type]
    if name == "name_of":
        return _name_of(_node_arg(args[0]))
    if name == "local_name_of":
        node = _node_arg(args[0])
        return node.local_name if node is not None else ""
    if name == "namespace_uri_of":
        node = _node_arg(args[0])
        return node.namespace_uri() if node is not None else ""
    if name == "lang_of":
        node = _node_arg(args[0])
        return _lang_of(node, _as_string(args[1]))
    # The explicit-argument forms of the context-defaulting functions
    # (the translator always passes the argument explicitly).
    if name == "string-length":
        return float(len(_as_string(args[0])))
    if name == "normalize-space":
        return " ".join(_as_string(args[0]).split())
    # Library functions on basic types: convert Node arguments to their
    # string-values first (the translator passes nodes only where the
    # signature wants strings/numbers/objects).
    converted = [
        a.string_value() if isinstance(a, Node) else a for a in args
    ]
    return fnlib.call(name, None, converted)  # type: ignore[arg-type]


def _name_of(node: Optional[Node]) -> str:
    from repro.dom.node import NodeKind

    if node is None:
        return ""
    if node.kind in (NodeKind.ELEMENT, NodeKind.ATTRIBUTE,
                     NodeKind.PROCESSING_INSTRUCTION, NodeKind.NAMESPACE):
        return node.name or ""
    return ""


def _lang_of(node: Optional[Node], target: str) -> bool:
    if node is not None and not node.is_tree_node():
        node = node.parent
    while node is not None:
        for attr in node.attributes:
            if attr.name == "xml:lang":
                language = (attr.value or "").lower()
                wanted = target.lower()
                return language == wanted or language.startswith(wanted + "-")
        node = node.parent
    return False
