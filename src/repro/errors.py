"""Exception hierarchy shared by every subsystem of the reproduction.

The compiler distinguishes between errors in the *document* layer (parsing
and storage), the *query* layer (lexing, parsing, semantic analysis of XPath
expressions), and the *execution* layer (NVM and iterator runtime).  Keeping
a single rooted hierarchy lets callers catch ``ReproError`` when they do not
care which stage failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by this library."""


class XMLSyntaxError(ReproError):
    """Raised by the XML parser on malformed input.

    Carries the 1-based ``line`` and ``column`` of the offending position.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class StorageError(ReproError):
    """Raised by the paged document store on corrupt or invalid data."""


class IndexRegionMissing(StorageError):
    """The store file carries no index footer at all.

    Distinct from a *corrupt* index region (plain
    :class:`StorageError`): a missing region means the store was written
    without indexes, a corrupt one means indexes exist but cannot be
    trusted — the open path maps them to ``index_status`` ``"none"``
    vs. ``"stale"``.
    """


class XPathError(ReproError):
    """Base class for all errors concerning an XPath expression."""


class XPathSyntaxError(XPathError):
    """Raised when an XPath expression does not conform to the grammar."""

    def __init__(self, message: str, position: int = 0):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class XPathTypeError(XPathError):
    """Raised by semantic analysis on static type violations.

    Examples: calling a function with the wrong arity, using a location
    path where the grammar requires a node-set but the expression has a
    scalar type.
    """


class XPathNameError(XPathError):
    """Raised for references to unknown functions, variables or prefixes."""


class TranslationError(ReproError):
    """Raised when an AST cannot be translated into the algebra.

    A correct compiler never raises this for well-typed input; it guards
    against internal inconsistencies.
    """


class CodegenError(ReproError):
    """Raised during physical plan generation (phase 6 of the compiler)."""


class NVMError(ReproError):
    """Raised by the Natix Virtual Machine for invalid programs."""


class ExecutionError(ReproError):
    """Raised by the iterator engine for runtime failures.

    The only expected runtime failures are resource-exhaustion guards and
    unbound free variables in the execution context.
    """


class UnboundVariableError(ExecutionError):
    """Raised when evaluation references a variable the context lacks."""

    def __init__(self, name: str):
        super().__init__(f"unbound variable ${name}")
        self.name = name


class QueryGovernanceError(ExecutionError):
    """Base class of the resource-governance aborts.

    Raised cooperatively from inside the iterator engine when a query
    exceeds one of its :class:`~repro.engine.governor.ResourceGovernor`
    limits.  Governance aborts are all-or-nothing: the evaluation raises
    instead of returning, so a caller never sees a silently truncated
    result.
    """


class QueryTimeoutError(QueryGovernanceError):
    """Raised when a query runs past its deadline.

    ``timeout`` is the requested limit in seconds; ``elapsed`` the
    monotonic time actually spent when the abort fired.
    """

    def __init__(self, timeout: float, elapsed: float):
        super().__init__(
            f"query exceeded its {timeout:.3f}s timeout "
            f"(ran {elapsed:.3f}s)"
        )
        self.timeout = timeout
        self.elapsed = elapsed


class QueryBudgetError(QueryGovernanceError):
    """Raised when a query exceeds a tuple or materialization budget.

    ``resource`` is ``"tuples"`` or ``"bytes"``; ``limit`` the budget
    and ``used`` the consumption that tripped it.
    """

    def __init__(self, resource: str, limit: int, used: int):
        super().__init__(
            f"query exceeded its {resource} budget ({used} > {limit})"
        )
        self.resource = resource
        self.limit = limit
        self.used = used


class QueryCancelledError(QueryGovernanceError):
    """Raised when a query's external cancel token was triggered."""

    def __init__(self, reason: str = ""):
        super().__init__(
            f"query cancelled{f': {reason}' if reason else ''}"
        )
        self.reason = reason


class CollectionError(ReproError):
    """Raised by the collection layer for catalog and setup failures.

    Covers malformed or missing catalogs, fingerprint mismatches between
    a catalog and its shard files, and invalid sharding requests — the
    *static* failures of :mod:`repro.collection`.  Runtime failures of a
    scattered query raise :class:`ShardFailedError` instead.
    """


class ShardFailedError(ExecutionError):
    """Raised when a scattered collection query loses a shard.

    ``shard`` is the shard id that failed; ``reason`` a short
    classification (``"worker-died"``, ``"worker-error"``); ``cause``
    the reconstructed worker-side exception when one was reported (a
    worker killed mid-query has none).  The query as a whole fails —
    scatter-gather never returns a silently partial result — and the
    pool recycles its workers before the next query.
    """

    def __init__(self, shard: int, reason: str,
                 cause: "Exception | None" = None):
        detail = f": {cause}" if cause is not None else ""
        super().__init__(
            f"collection shard {shard} failed ({reason}){detail}"
        )
        self.shard = shard
        self.reason = reason
        self.cause = cause
