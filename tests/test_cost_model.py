"""Tests for the synopsis-driven cardinality estimator and cost gates.

The estimator (:mod:`repro.compiler.cost`) walks the DataGuide with a
per-entry distribution, so exact path cardinalities are checkable
against a hand-built synopsis; without a synopsis it falls back to the
model's default fanouts.  The cost optimizer mode is checked against
the heuristic gates through a fake ``DocumentIndexes`` stub, and the
session layer's estimation-error counters through a real store.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    EvalOptions,
    TranslationOptions,
    XPathEngine,
    compile_xpath,
    parse_document,
    store_document,
    open_store,
)
from repro.algebra import operators as ops
from repro.compiler.cost import (
    DEFAULT_MODEL,
    Dist,
    PlanEstimator,
    explain_with_costs,
    summarize_plan,
)
from repro.compiler.optimize import optimize_plan
from repro.index.synopsis import (
    KIND_ATTRIBUTE,
    KIND_ELEMENT,
    ROOT_ENTRY,
    PathSynopsis,
    SynopsisEntry,
)
from repro.xpath.axes import Axis, NodeTestKind

# A hand-built DataGuide:
#   /xdoc                    1
#   /xdoc/section            6
#   /xdoc/section/item      36   (6 per section)
#   /xdoc/section/item/entry 216 (6 per item)
#   /xdoc/section/item/@id  36
SYNOPSIS = PathSynopsis([
    SynopsisEntry(ROOT_ENTRY, KIND_ELEMENT, "xdoc", 1),
    SynopsisEntry(0, KIND_ELEMENT, "section", 6),
    SynopsisEntry(1, KIND_ELEMENT, "item", 36),
    SynopsisEntry(2, KIND_ELEMENT, "entry", 216),
    SynopsisEntry(2, KIND_ATTRIBUTE, "id", 36),
])


def estimate_rows(query, synopsis=SYNOPSIS):
    plan = compile_xpath(query).logical_plan
    return PlanEstimator(synopsis).estimate(plan).root_rows


class TestSynopsisCardinalities:
    """Exact expected estimates over the hand-built DataGuide."""

    @pytest.mark.parametrize(
        "query,expected",
        [
            ("/xdoc", 1.0),
            ("/xdoc/section", 6.0),
            ("/xdoc/section/item", 36.0),
            ("//item", 36.0),
            ("//entry", 216.0),
            ("/xdoc//entry", 216.0),
            ("//item/entry", 216.0),
            ("/xdoc/section/item/@id", 36.0),
            # `entry` exists globally (216 nodes) but never directly
            # below /xdoc — the frontier walk sees the level, a global
            # selectivity estimate cannot.
            ("/xdoc/entry", 0.0),
            ("//missing", 0.0),
            # parent:: folds back onto the section entry.
            ("/xdoc/section/item/..", 6.0),
        ],
    )
    def test_exact_path_counts(self, query, expected):
        assert estimate_rows(query) == expected

    def test_predicate_applies_default_selectivity(self):
        # σ halves the stream (select_selectivity = 0.5): 36 → 18.
        assert estimate_rows("/xdoc/section/item[@id]") == 18.0

    def test_empty_synopsis_estimates_like_none(self):
        empty = PathSynopsis([])
        assert estimate_rows("//item", empty) == estimate_rows(
            "//item", None
        )


class TestDefaultFallbacks:
    """No synopsis: the model's default fanouts drive the estimates."""

    def test_child_chain_uses_fanout_and_name_selectivity(self):
        # Each child::name step: ×4 fanout ×0.3 name selectivity.
        model = DEFAULT_MODEL
        step = model.fanout(Axis.CHILD) * model.name_test_selectivity
        assert estimate_rows("/a/b", None) == pytest.approx(step * step)

    def test_descendant_estimate_positive(self):
        assert estimate_rows("//c", None) > 0.0

    def test_every_operator_annotated(self):
        plan = compile_xpath("/a/b[@x]/c").logical_plan
        estimates = PlanEstimator(None).estimate(plan)
        for op in ops.plan_operators(plan):
            assert estimates.rows_of(op) is not None

    def test_explain_and_summary_render(self):
        plan = compile_xpath("//a[1]").logical_plan
        estimates = PlanEstimator(SYNOPSIS).estimate(plan)
        text = explain_with_costs(plan, estimates)
        assert "rows≈" in text and "pages≈" in text
        summary = summarize_plan(plan, estimates)
        assert summary["op"] and "rows" in summary
        assert set(summary["cost"]) == {
            "data_pages", "index_pages", "cpu",
        }


PATHS = st.sampled_from([
    "/xdoc/section", "/xdoc/section/item", "//item", "//entry",
    "/xdoc//entry", "//item/entry",
])
PREDICATES = st.lists(
    st.sampled_from(["[@id]", "[entry]", "[item][@id]"]),
    min_size=0, max_size=2,
)


class TestMonotonicity:
    """Adding predicates never increases the estimated cardinality."""

    @pytest.mark.hypothesis
    @settings(max_examples=60, deadline=None)
    @given(path=PATHS, preds=PREDICATES)
    def test_predicates_shrink_estimates(self, path, preds):
        base = estimate_rows(path)
        filtered = estimate_rows(path + "".join(preds))
        assert filtered <= base + 1e-9
        assert filtered >= 0.0

    @pytest.mark.hypothesis
    @settings(max_examples=60, deadline=None)
    @given(path=PATHS, preds=PREDICATES)
    def test_monotone_without_synopsis(self, path, preds):
        base = estimate_rows(path, None)
        filtered = estimate_rows(path + "".join(preds), None)
        assert filtered <= base + 1e-9
        assert not math.isnan(filtered)


class FakeIndexes:
    """The slice of ``DocumentIndexes`` the optimizer reads."""

    def __init__(self, synopsis, element_names=()):
        self.synopsis = synopsis
        self._names = frozenset(element_names)

    def has_element_index(self, name):
        return name in self._names


def route(query, optimizer, index_info, index_mode="auto"):
    plan = compile_xpath(query).logical_plan
    return optimize_plan(
        plan, index_info=index_info, index_mode=index_mode,
        optimizer=optimizer,
    )


INDEXES = FakeIndexes(SYNOPSIS, {"xdoc", "section", "item", "entry"})


class TestCostGate:
    """Cost-vs-heuristic routing decisions on the fake index stub."""

    def test_descendant_step_routed_by_both_modes(self):
        for mode in ("heuristic", "cost"):
            _, report = route("//item", mode, INDEXES)
            assert report.index_scans == 1, mode

    def test_cost_declines_level_missing_name(self):
        # `entry` is globally rare (216/259 is common actually at the
        # bottom level, but absent directly below /xdoc) — heuristic's
        # global child gate cannot see the level; the frontier walk can.
        _, heuristic = route("/xdoc/section", "heuristic", INDEXES)
        _, cost = route("/xdoc/section", "cost", INDEXES)
        # heuristic: 6/259 elements is far below the 10% child gate.
        assert heuristic.index_scans >= 1
        # cost: navigating 1 root record beats probing the posting list.
        assert cost.index_scans == 0
        assert cost.index_skips >= 1
        assert any(
            r["rule"] == "route-index-scan" and r["action"] == "declined"
            for r in cost.rules
        )

    def test_force_bypasses_cost_gate(self):
        _, report = route("/xdoc/section", "cost", INDEXES, "force")
        assert report.index_scans >= 1
        assert report.index_skips == 0

    def test_rule_trace_counts(self):
        _, report = route("//item", "cost", INDEXES)
        assert report.rules_fired + report.rules_declined == len(
            report.rules
        )
        assert report.mode == "cost"
        assert report.est_root_rows is not None
        assert set(report.est_cost) == {
            "data_pages", "index_pages", "cpu",
        }

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(ValueError, match="unknown optimizer"):
            route("//item", "greedy", INDEXES)


class TestEvidenceGate:
    """Missing evidence declines the rewrite in both modes."""

    @pytest.mark.parametrize("mode", ["heuristic", "cost"])
    def test_empty_synopsis_declines(self, mode):
        stale = FakeIndexes(PathSynopsis([]), {"item"})
        _, report = route("//item", mode, stale)
        assert report.index_scans == 0
        assert report.index_skips >= 1
        assert any("no index evidence" in note for note in report.notes)

    @pytest.mark.parametrize("mode", ["heuristic", "cost"])
    def test_name_without_count_or_posting_declines(self, mode):
        _, report = route("//missing", mode, INDEXES)
        assert report.index_scans == 0
        assert report.index_skips >= 1

    def test_posting_list_rescues_zero_count_name(self):
        # A name absent from the synopsis but with a posting list is
        # evidence enough (count=0 always passes the selectivity gate).
        rescued = FakeIndexes(SYNOPSIS, {"ghost"})
        _, report = route("//ghost", "heuristic", rescued)
        assert report.index_scans == 1

    def test_force_routes_without_evidence(self):
        stale = FakeIndexes(PathSynopsis([]), set())
        _, report = route("//item", "heuristic", stale, "force")
        assert report.index_scans == 1


class TestMemoPruning:
    """Cost mode drops 𝔐 memos whose producer is cheap to recompute."""

    def _memo_plan(self):
        # χ[c1 := root()] over □, memoized on no keys: trivially cheap.
        plan = compile_xpath("/xdoc").logical_plan
        return ops.MemoX(plan, ())

    def test_cheap_memo_dropped_in_cost_mode(self):
        _, report = optimize_plan(self._memo_plan(), optimizer="cost")
        assert report.removed_memos == 1
        assert any("prune-memo" == r["rule"] for r in report.rules)

    def test_memo_kept_in_heuristic_mode(self):
        plan, report = optimize_plan(
            self._memo_plan(), optimizer="heuristic"
        )
        assert report.removed_memos == 0
        assert isinstance(plan, ops.MemoX)

    def test_memo_answers_unchanged(self):
        doc = parse_document("<xdoc><a/><a/></xdoc>")
        compiled_plain = compile_xpath("//a")
        compiled_cost = compile_xpath(
            "//a", options=TranslationOptions(optimize=True)
        )
        assert len(compiled_plain.evaluate(doc.root)) == 2
        assert len(compiled_cost.evaluate(doc.root)) == 2


class TestCostHelpers:
    def test_navigation_vs_index_scores_finite(self):
        estimator = PlanEstimator(SYNOPSIS)
        dist = Dist(1.0, {0: 1.0})
        nav = estimator.navigation_cost(
            dist, Axis.CHILD, NodeTestKind.NAME, "section"
        )
        idx = estimator.index_scan_cost(dist, Axis.CHILD, "section")
        assert nav.score(DEFAULT_MODEL) > 0
        assert idx.score(DEFAULT_MODEL) > 0

    def test_cost_addition(self):
        estimator = PlanEstimator(SYNOPSIS)
        dist = Dist(1.0, {0: 1.0})
        one = estimator.navigation_cost(
            dist, Axis.CHILD, NodeTestKind.NAME, "section"
        )
        double = one + one
        assert double.cpu == pytest.approx(2 * one.cpu)
        assert double.data_pages == pytest.approx(2 * one.data_pages)


class TestSessionCounters:
    """The engine records estimation error for cost-mode plans."""

    DOC_XML = (
        "<xdoc>"
        + "".join(
            "<section>" + "<item/>" * 4 + "</section>" for _ in range(3)
        )
        + "</xdoc>"
    )

    def test_estimation_error_counters(self, tmp_path):
        document = parse_document(self.DOC_XML)
        path = tmp_path / "doc.natix"
        store_document(document, path, indexes=True)
        engine = XPathEngine(
            TranslationOptions.improved(), index="auto", optimizer="cost"
        )
        with open_store(path) as stored:
            result = engine.evaluate("//item", stored.root)
        assert len(result) == 12
        counters = engine.stats().runtime_counters
        assert counters["cost_estimates_recorded"] == 1
        assert counters["cost_actual_rows"] == 12
        assert counters["cost_estimated_rows"] == 12
        assert counters["cost_estimate_abs_error"] == 0
        assert counters["plans_cost_optimized"] >= 1

    def test_heuristic_engine_records_no_estimates(self, tmp_path):
        document = parse_document(self.DOC_XML)
        path = tmp_path / "doc.natix"
        store_document(document, path, indexes=True)
        engine = XPathEngine(TranslationOptions.improved(), index="auto")
        with open_store(path) as stored:
            engine.evaluate("//item", stored.root)
        counters = engine.stats().runtime_counters
        assert counters.get("cost_estimates_recorded", 0) == 0

    def test_per_call_optimizer_conflict_raises(self):
        engine = XPathEngine(
            TranslationOptions.improved(), optimizer="cost"
        )
        doc = parse_document("<a><b/></a>")
        with pytest.raises(ValueError, match="optimizer"):
            engine.evaluate(
                "//b", doc.root, EvalOptions(optimizer="heuristic")
            )

    def test_eval_options_optimizer_validated(self):
        with pytest.raises(ValueError):
            EvalOptions(optimizer="greedy")
